"""A small bit-vector / Boolean SMT engine.

This package stands in for Z3 in the Gauntlet reproduction.  It provides:

* :mod:`repro.smt.terms` -- an immutable, hash-consed term language for
  fixed-width bit vectors and Booleans (the only sorts P4 programs need).
* :mod:`repro.smt.simplify` -- a rewriting simplifier / constant folder.
* :mod:`repro.smt.evaluate` -- concrete evaluation of terms under a model.
* :mod:`repro.smt.bitblast` -- Tseitin bit-blasting of terms to CNF.
* :mod:`repro.smt.sat` -- a CDCL SAT solver with two-watched-literal
  propagation, first-UIP clause learning, VSIDS branching and restarts.
* :mod:`repro.smt.solver` -- the user-facing :class:`Solver` with
  ``add``/``check``/``model`` plus helpers for equivalence checking.

The public API deliberately mirrors the small subset of z3py that Gauntlet
uses, so the core Gauntlet modules read very much like the original tool.
"""

from repro.smt.terms import (
    BoolSort,
    BitVecSort,
    Term,
    BitVecVal,
    BitVecSym,
    BoolVal,
    BoolSym,
    Add,
    Sub,
    Mul,
    UDiv,
    URem,
    BvAnd,
    BvOr,
    BvXor,
    BvNot,
    Shl,
    LShr,
    Concat,
    Extract,
    ZeroExt,
    Eq,
    Ne,
    Ult,
    Ule,
    Ugt,
    Uge,
    And,
    Or,
    Not,
    Implies,
    Ite,
)
from repro.smt.terms import clear_term_caches, intern_table_size
from repro.smt.simplify import simplify, simplify_cache_size
from repro.smt.evaluate import evaluate
from repro.smt.solver import (
    STATS,
    CheckResult,
    Model,
    Solver,
    SolverStats,
    all_equivalent,
    clear_equivalence_cache,
    enumerate_models,
    equivalence_cache_size,
    equivalent,
    find_divergence,
)

__all__ = [
    "BoolSort",
    "BitVecSort",
    "Term",
    "BitVecVal",
    "BitVecSym",
    "BoolVal",
    "BoolSym",
    "Add",
    "Sub",
    "Mul",
    "UDiv",
    "URem",
    "BvAnd",
    "BvOr",
    "BvXor",
    "BvNot",
    "Shl",
    "LShr",
    "Concat",
    "Extract",
    "ZeroExt",
    "Eq",
    "Ne",
    "Ult",
    "Ule",
    "Ugt",
    "Uge",
    "And",
    "Or",
    "Not",
    "Implies",
    "Ite",
    "simplify",
    "evaluate",
    "Solver",
    "SolverStats",
    "STATS",
    "CheckResult",
    "Model",
    "equivalent",
    "find_divergence",
    "all_equivalent",
    "enumerate_models",
    "clear_equivalence_cache",
    "equivalence_cache_size",
    "clear_term_caches",
    "intern_table_size",
    "simplify_cache_size",
]
