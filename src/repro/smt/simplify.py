"""Rewriting simplifier and constant folder for SMT terms.

The simplifier is a bottom-up single pass over the term DAG with
*persistent* memoisation: because terms are hash-consed
(:mod:`repro.smt.terms`), the input -> simplified mapping is a pure
function of the term object, so results are kept in a module-level cache
that survives across calls.  Repeated sub-DAGs -- the common case across
per-pass snapshots of the same program -- simplify exactly once per
process.  It performs:

* full constant folding for every operator,
* identity/absorption rules (``x & 0 = 0``, ``x | 0 = x``, ``x ^ x = 0``...),
* if-then-else collapsing when the condition is a constant or both branches
  are identical,
* Boolean simplification (double negation, constant propagation in
  ``and``/``or``), and
* structural equality short cuts for ``eq``.

The simplifier must be *semantics preserving*; the hypothesis property tests
in ``tests/smt/test_simplify_properties.py`` check exactly that.
"""

from __future__ import annotations

from typing import Dict

from repro.smt import terms as t
from repro.smt.terms import Term


def _mask(width: int) -> int:
    return (1 << width) - 1


#: Persistent memo cache: interned term -> interned simplified term.  Sound
#: because terms are immutable and globally unique, and rewriting is pure.
_CACHE: Dict[Term, Term] = {}


def simplify(term: Term) -> Term:
    """Return a simplified term equivalent to ``term``."""

    cache = _CACHE

    def walk(node: Term) -> Term:
        cached = cache.get(node)
        if cached is not None:
            return cached
        original = node
        if node.children:
            children = tuple(walk(child) for child in node.children)
            if children != node.children:
                node = Term(node.op, node.sort, children, node.payload)
            node = _rewrite(node)
        # Map both the original node and its normal form to the result so a
        # second occurrence of either is a single dict hit, and simplify is
        # idempotent by construction (cache[result] is result).
        cache[original] = node
        cache[node] = node
        return node

    return walk(term)


def clear_simplify_cache() -> None:
    """Drop the persistent memo cache (see ``clear_term_caches``)."""

    _CACHE.clear()


def simplify_cache_size() -> int:
    """Number of memoised entries (for stats/benchmarks)."""

    return len(_CACHE)


def _all_const(node: Term) -> bool:
    return all(child.is_const() for child in node.children)


def _rewrite(node: Term) -> Term:
    op = node.op
    children = node.children

    if op in _ARITH_FOLDERS and _all_const(node):
        return _ARITH_FOLDERS[op](node)

    if op == "bvadd":
        left, right = children
        if right.is_const() and right.value == 0:
            return left
        if left.is_const() and left.value == 0:
            return right
        return node
    if op == "bvsub":
        left, right = children
        if right.is_const() and right.value == 0:
            return left
        if left == right:
            return t.BitVecVal(0, node.width)
        return node
    if op == "bvmul":
        left, right = children
        for constant, other in ((left, right), (right, left)):
            if constant.is_const():
                if constant.value == 0:
                    return t.BitVecVal(0, node.width)
                if constant.value == 1:
                    return other
        return node
    if op == "bvand":
        left, right = children
        if left == right:
            return left
        for constant, other in ((left, right), (right, left)):
            if constant.is_const():
                if constant.value == 0:
                    return t.BitVecVal(0, node.width)
                if constant.value == _mask(node.width):
                    return other
        return node
    if op == "bvor":
        left, right = children
        if left == right:
            return left
        for constant, other in ((left, right), (right, left)):
            if constant.is_const():
                if constant.value == 0:
                    return other
                if constant.value == _mask(node.width):
                    return t.BitVecVal(_mask(node.width), node.width)
        return node
    if op == "bvxor":
        left, right = children
        if left == right:
            return t.BitVecVal(0, node.width)
        for constant, other in ((left, right), (right, left)):
            if constant.is_const() and constant.value == 0:
                return other
        return node
    if op == "bvnot":
        (operand,) = children
        if operand.is_const():
            return t.BitVecVal(~operand.value, node.width)
        if operand.op == "bvnot":
            return operand.children[0]
        return node
    if op in ("bvshl", "bvlshr"):
        left, right = children
        if right.is_const():
            amount = right.value
            if amount == 0:
                return left
            if left.is_const():
                if amount >= node.width:
                    return t.BitVecVal(0, node.width)
                if op == "bvshl":
                    return t.BitVecVal(left.value << amount, node.width)
                return t.BitVecVal(left.value >> amount, node.width)
        if left.is_const() and left.value == 0:
            return t.BitVecVal(0, node.width)
        return node
    if op == "concat":
        if _all_const(node):
            value = 0
            for child in children:
                value = (value << child.width) | child.value
            return t.BitVecVal(value, node.width)
        return node
    if op == "extract":
        high, low = node.payload  # type: ignore[misc]
        (operand,) = children
        if operand.is_const():
            return t.BitVecVal(operand.value >> low, node.width)
        if low == 0 and high == operand.width - 1:
            return operand
        return node
    if op == "zero_ext":
        (operand,) = children
        if operand.is_const():
            return t.BitVecVal(operand.value, node.width)
        return node
    if op == "eq":
        left, right = children
        if left == right:
            return t.TRUE
        if left.is_const() and right.is_const():
            return t.BoolVal(left.value == right.value)
        return node
    if op == "bvult":
        left, right = children
        if left == right:
            return t.FALSE
        if left.is_const() and right.is_const():
            return t.BoolVal(left.value < right.value)
        if right.is_const() and right.value == 0:
            return t.FALSE
        return node
    if op == "bvule":
        left, right = children
        if left == right:
            return t.TRUE
        if left.is_const() and right.is_const():
            return t.BoolVal(left.value <= right.value)
        if left.is_const() and left.value == 0:
            return t.TRUE
        return node
    if op == "and":
        kept: list[Term] = []
        for child in children:
            if child.is_const():
                if not child.value:
                    return t.FALSE
                continue
            if child not in kept:
                kept.append(child)
        if not kept:
            return t.TRUE
        if len(kept) == 1:
            return kept[0]
        return Term("and", node.sort, tuple(kept))
    if op == "or":
        kept = []
        for child in children:
            if child.is_const():
                if child.value:
                    return t.TRUE
                continue
            if child not in kept:
                kept.append(child)
        if not kept:
            return t.FALSE
        if len(kept) == 1:
            return kept[0]
        return Term("or", node.sort, tuple(kept))
    if op == "not":
        (operand,) = children
        if operand.is_const():
            return t.BoolVal(not operand.value)
        if operand.op == "not":
            return operand.children[0]
        return node
    if op == "ite":
        cond, then, orelse = children
        if cond.is_const():
            return then if cond.value else orelse
        if then == orelse:
            return then
        if node.sort.is_bool():
            if then.is_const() and orelse.is_const():
                if then.value and not orelse.value:
                    return cond
                if not then.value and orelse.value:
                    return t.Not(cond)
        return node
    return node


def _fold_udiv(node: Term) -> Term:
    left, right = node.children
    if right.value == 0:
        return t.BitVecVal(_mask(node.width), node.width)
    return t.BitVecVal(left.value // right.value, node.width)


def _fold_urem(node: Term) -> Term:
    left, right = node.children
    if right.value == 0:
        return t.BitVecVal(left.value, node.width)
    return t.BitVecVal(left.value % right.value, node.width)


_ARITH_FOLDERS = {
    "bvadd": lambda n: t.BitVecVal(n.children[0].value + n.children[1].value, n.width),
    "bvsub": lambda n: t.BitVecVal(n.children[0].value - n.children[1].value, n.width),
    "bvmul": lambda n: t.BitVecVal(n.children[0].value * n.children[1].value, n.width),
    "bvudiv": _fold_udiv,
    "bvurem": _fold_urem,
    "bvand": lambda n: t.BitVecVal(n.children[0].value & n.children[1].value, n.width),
    "bvor": lambda n: t.BitVecVal(n.children[0].value | n.children[1].value, n.width),
    "bvxor": lambda n: t.BitVecVal(n.children[0].value ^ n.children[1].value, n.width),
}
