"""Rewriting simplifier and constant folder for SMT terms.

The simplifier is a bottom-up single pass over the term DAG with
*persistent* memoisation: because terms are hash-consed
(:mod:`repro.smt.terms`), the input -> simplified mapping is a pure
function of the term object, so results are kept in a module-level cache
that survives across calls.  Repeated sub-DAGs -- the common case across
per-pass snapshots of the same program -- simplify exactly once per
process.  It performs:

* full constant folding for every operator,
* identity/absorption rules (``x & 0 = 0``, ``x | 0 = x``, ``x ^ x = 0``...),
* if-then-else collapsing when the condition is a constant or both branches
  are identical,
* Boolean simplification (double negation, constant propagation in
  ``and``/``or``),
* structural equality short cuts for ``eq``, and
* **cross-pass canonicalisation**: rewrites that different compiler
  passes use interchangeably are normalised to one spelling, so the
  validator's syntactic fast path fires instead of the SAT solver.
  Concretely: ``ite(not c, a, b)`` becomes ``ite(c, b, a)`` (predication
  flips branch polarity), and the three spellings of "multiply by a
  power of two" — ``x * 2**k``, ``x << k`` and
  ``concat(extract(w-1-k, 0, x), 0_k)`` (strength reduction's slice
  form) — all normalise to the shift.

The simplifier must be *semantics preserving*; the hypothesis property tests
in ``tests/smt/test_simplify_properties.py`` check exactly that.
"""

from __future__ import annotations

from typing import Dict

from repro.smt import terms as t
from repro.smt.terms import Term


def _mask(width: int) -> int:
    return (1 << width) - 1


def _power_of_two(value: int) -> int | None:
    """The exponent k when ``value == 2**k`` (k >= 1), else None."""

    if value > 1 and value & (value - 1) == 0:
        return value.bit_length() - 1
    return None


#: Persistent memo cache: interned term -> interned simplified term.  Sound
#: because terms are immutable and globally unique, and rewriting is pure.
_CACHE: Dict[Term, Term] = {}

#: Guard-propagation memo: (branch, cond, polarity) -> propagated branch.
#: Caching the *result* under its own key makes propagation a declared
#: fixpoint, which both bounds the cost of the re-rewrite after a branch
#: changes and guarantees the ite rule terminates.
_ASSUME_CACHE: Dict[tuple, Term] = {}


def simplify(term: Term) -> Term:
    """Return a simplified term equivalent to ``term``."""

    cache = _CACHE

    def walk(node: Term) -> Term:
        cached = cache.get(node)
        if cached is not None:
            return cached
        original = node
        if node.children:
            children = tuple(walk(child) for child in node.children)
            if children != node.children:
                node = Term(node.op, node.sort, children, node.payload)
            node = _rewrite(node)
        # Map both the original node and its normal form to the result so a
        # second occurrence of either is a single dict hit, and simplify is
        # idempotent by construction (cache[result] is result).
        cache[original] = node
        cache[node] = node
        return node

    return walk(term)


def clear_simplify_cache() -> None:
    """Drop the persistent memo cache (see ``clear_term_caches``)."""

    _CACHE.clear()
    _ASSUME_CACHE.clear()


def simplify_cache_size() -> int:
    """Number of memoised entries (for stats/benchmarks)."""

    return len(_CACHE)


def _all_const(node: Term) -> bool:
    return all(child.is_const() for child in node.children)


def _assume(branch: Term, facts: Dict[Term, Term]) -> Term:
    """Rewrite ``branch`` under known truth values for some Boolean terms.

    ``facts`` maps hash-consed Boolean terms to ``t.TRUE``/``t.FALSE``.
    Every occurrence is replaced and the surrounding structure re-rewritten
    bottom-up, which collapses guard-redundant reads like an inner
    ``ite(h.$valid, ...)`` sitting under an outer branch on ``h.$valid``.
    """

    memo: Dict[Term, Term] = {}

    def walk(node: Term) -> Term:
        hit = facts.get(node)
        if hit is not None:
            return hit
        if not node.children:
            return node
        cached = memo.get(node)
        if cached is not None:
            return cached
        children = tuple(walk(child) for child in node.children)
        if children == node.children:
            result = node
        else:
            result = _rewrite(Term(node.op, node.sort, children, node.payload))
        memo[node] = result
        return result

    return walk(branch)


def _propagate_guard(branch: Term, cond: Term, polarity: bool) -> Term:
    """Memoised :func:`_assume` for one branch of ``ite(cond, ...)``."""

    key = (branch, cond, polarity)
    cached = _ASSUME_CACHE.get(key)
    if cached is not None:
        return cached
    value = t.TRUE if polarity else t.FALSE
    facts: Dict[Term, Term] = {cond: value}
    # A conjunction that holds pins every conjunct; a disjunction that
    # fails pins every disjunct.  Negated literals pin their operand to
    # the opposite value.
    subs = ()
    if polarity and cond.op == "and":
        subs = cond.children
    elif not polarity and cond.op == "or":
        subs = cond.children
    for sub in subs:
        facts[sub] = value
        if sub.op == "not":
            facts[sub.children[0]] = t.FALSE if polarity else t.TRUE
    result = _assume(branch, facts)
    _ASSUME_CACHE[key] = result
    # Declare the result a fixpoint so the re-rewrite of the rebuilt ite
    # terminates immediately instead of re-walking the branch.
    _ASSUME_CACHE[(result, cond, polarity)] = result
    return result


def _rewrite(node: Term) -> Term:
    op = node.op
    children = node.children

    if op in _ARITH_FOLDERS and _all_const(node):
        return _ARITH_FOLDERS[op](node)

    if op == "bvadd":
        left, right = children
        if right.is_const() and right.value == 0:
            return left
        if left.is_const() and left.value == 0:
            return right
        return node
    if op == "bvsub":
        left, right = children
        if right.is_const() and right.value == 0:
            return left
        if left == right:
            return t.BitVecVal(0, node.width)
        return node
    if op == "bvmul":
        left, right = children
        for constant, other in ((left, right), (right, left)):
            if constant.is_const():
                if constant.value == 0:
                    return t.BitVecVal(0, node.width)
                if constant.value == 1:
                    return other
                shift = _power_of_two(constant.value)
                if shift is not None:
                    # Canonical power-of-two multiply: the shift spelling
                    # (strength reduction emits it, so pre-pass snapshots
                    # must normalise to it too).
                    return _rewrite(
                        Term(
                            "bvshl",
                            node.sort,
                            (other, t.BitVecVal(shift, node.width)),
                        )
                    )
        return node
    if op == "bvand":
        left, right = children
        if left == right:
            return left
        for constant, other in ((left, right), (right, left)):
            if constant.is_const():
                if constant.value == 0:
                    return t.BitVecVal(0, node.width)
                if constant.value == _mask(node.width):
                    return other
        return node
    if op == "bvor":
        left, right = children
        if left == right:
            return left
        for constant, other in ((left, right), (right, left)):
            if constant.is_const():
                if constant.value == 0:
                    return other
                if constant.value == _mask(node.width):
                    return t.BitVecVal(_mask(node.width), node.width)
        return node
    if op == "bvxor":
        left, right = children
        if left == right:
            return t.BitVecVal(0, node.width)
        for constant, other in ((left, right), (right, left)):
            if constant.is_const() and constant.value == 0:
                return other
        return node
    if op == "bvnot":
        (operand,) = children
        if operand.is_const():
            return t.BitVecVal(~operand.value, node.width)
        if operand.op == "bvnot":
            return operand.children[0]
        return node
    if op in ("bvshl", "bvlshr"):
        left, right = children
        if right.is_const():
            amount = right.value
            if amount == 0:
                return left
            if left.is_const():
                if amount >= node.width:
                    return t.BitVecVal(0, node.width)
                if op == "bvshl":
                    return t.BitVecVal(left.value << amount, node.width)
                return t.BitVecVal(left.value >> amount, node.width)
        if left.is_const() and left.value == 0:
            return t.BitVecVal(0, node.width)
        return node
    if op == "concat":
        if _all_const(node):
            value = 0
            for child in children:
                value = (value << child.width) | child.value
            return t.BitVecVal(value, node.width)
        if len(children) == 2:
            head, tail = children
            if (
                tail.is_const()
                and tail.value == 0
                and head.op == "extract"
                and head.payload is not None
                and head.payload[1] == 0
                and head.children[0].width == node.width
                and head.payload[0] == node.width - tail.width - 1
            ):
                # concat(extract(w-1-k, 0, x), 0_k) is "x << k" in slice
                # spelling; normalise to the shift so it meets the
                # strength-reduced form syntactically.
                return _rewrite(
                    Term(
                        "bvshl",
                        node.sort,
                        (
                            head.children[0],
                            t.BitVecVal(tail.width, node.width),
                        ),
                    )
                )
        return node
    if op == "extract":
        high, low = node.payload  # type: ignore[misc]
        (operand,) = children
        if operand.is_const():
            return t.BitVecVal(operand.value >> low, node.width)
        if low == 0 and high == operand.width - 1:
            return operand
        return node
    if op == "zero_ext":
        (operand,) = children
        if operand.is_const():
            return t.BitVecVal(operand.value, node.width)
        return node
    if op == "eq":
        left, right = children
        if left == right:
            return t.TRUE
        if left.is_const() and right.is_const():
            return t.BoolVal(left.value == right.value)
        return node
    if op == "bvult":
        left, right = children
        if left == right:
            return t.FALSE
        if left.is_const() and right.is_const():
            return t.BoolVal(left.value < right.value)
        if right.is_const() and right.value == 0:
            return t.FALSE
        return node
    if op == "bvule":
        left, right = children
        if left == right:
            return t.TRUE
        if left.is_const() and right.is_const():
            return t.BoolVal(left.value <= right.value)
        if left.is_const() and left.value == 0:
            return t.TRUE
        return node
    if op == "and":
        kept: list[Term] = []
        for child in children:
            if child.is_const():
                if not child.value:
                    return t.FALSE
                continue
            # Flatten nested conjunctions so the two associations a pass
            # rewrite can produce -- and(and(a, b), c) vs and(a, and(b, c))
            # -- meet in one n-ary spelling.
            grand = child.children if child.op == "and" else (child,)
            for sub in grand:
                if sub not in kept:
                    kept.append(sub)
        if not kept:
            return t.TRUE
        if len(kept) == 1:
            return kept[0]
        return Term("and", node.sort, tuple(kept))
    if op == "or":
        kept = []
        for child in children:
            if child.is_const():
                if child.value:
                    return t.TRUE
                continue
            grand = child.children if child.op == "or" else (child,)
            for sub in grand:
                if sub not in kept:
                    kept.append(sub)
        if not kept:
            return t.FALSE
        if len(kept) == 1:
            return kept[0]
        return Term("or", node.sort, tuple(kept))
    if op == "not":
        (operand,) = children
        if operand.is_const():
            return t.BoolVal(not operand.value)
        if operand.op == "not":
            return operand.children[0]
        return node
    if op == "ite":
        cond, then, orelse = children
        if cond.is_const():
            return then if cond.value else orelse
        if then == orelse:
            return then
        if cond.op == "not":
            # Canonical branch polarity: predication spells "if (!c)" as a
            # negated guard where the pre-pass snapshot swapped the arms.
            return _rewrite(
                Term("ite", node.sort, (cond.children[0], orelse, then))
            )
        # Contextual guard propagation: inside the then arm the condition
        # is known true (and inside the else arm known false), so any
        # occurrence of it -- e.g. a field read's own validity guard under
        # an outer validity branch -- collapses.  This is the rewrite that
        # makes interpreter snapshots from before and after predication
        # meet syntactically instead of going to the SAT solver.
        then_p = _propagate_guard(then, cond, True)
        orelse_p = _propagate_guard(orelse, cond, False)
        if then_p is not then or orelse_p is not orelse:
            return _rewrite(Term("ite", node.sort, (cond, then_p, orelse_p)))
        # Common-guard hoisting: when both arms branch on the same inner
        # condition and agree on one arm, the inner guard moves out --
        # ``ite(c, ite(v, a, x), ite(v, b, x))`` is ``ite(v, ite(c, a, b), x)``.
        # Predication hoists the header-validity guard of every assignment
        # this way, so pre- and post-pass snapshots only meet syntactically
        # once the validator's side does the same.
        if (
            then.op == "ite"
            and orelse.op == "ite"
            and then.children[0] == orelse.children[0]
        ):
            inner = then.children[0]
            if then.children[2] == orelse.children[2]:
                return _rewrite(
                    Term(
                        "ite",
                        node.sort,
                        (
                            inner,
                            _rewrite(
                                Term(
                                    "ite",
                                    node.sort,
                                    (cond, then.children[1], orelse.children[1]),
                                )
                            ),
                            then.children[2],
                        ),
                    )
                )
            if then.children[1] == orelse.children[1]:
                return _rewrite(
                    Term(
                        "ite",
                        node.sort,
                        (
                            inner,
                            then.children[1],
                            _rewrite(
                                Term(
                                    "ite",
                                    node.sort,
                                    (cond, then.children[2], orelse.children[2]),
                                )
                            ),
                        ),
                    )
                )
        # Guard fusion: a nested branch whose else arm rejoins the outer
        # else arm is one branch under a conjunction -- exactly the shape
        # predication flattens ``if (c1) { if (c2) ... }`` into.  The dual
        # absorbs a rejoining then arm into a disjunction.
        if then.op == "ite" and then.children[2] == orelse:
            return _rewrite(
                Term(
                    "ite",
                    node.sort,
                    (
                        _rewrite(t.And(cond, then.children[0])),
                        then.children[1],
                        orelse,
                    ),
                )
            )
        if orelse.op == "ite" and orelse.children[1] == then:
            return _rewrite(
                Term(
                    "ite",
                    node.sort,
                    (
                        _rewrite(t.Or(cond, orelse.children[0])),
                        then,
                        orelse.children[2],
                    ),
                )
            )
        if node.sort.is_bool():
            # Normalise Boolean selections to and/or so they can flatten
            # into the conjunction chains predicated code produces.
            if then is t.TRUE:
                return _rewrite(t.Or(cond, orelse))
            if then is t.FALSE:
                return _rewrite(t.And(t.Not(cond), orelse))
            if orelse is t.TRUE:
                return _rewrite(t.Or(t.Not(cond), then))
            if orelse is t.FALSE:
                return _rewrite(t.And(cond, then))
        return node
    return node


def _fold_udiv(node: Term) -> Term:
    left, right = node.children
    if right.value == 0:
        return t.BitVecVal(_mask(node.width), node.width)
    return t.BitVecVal(left.value // right.value, node.width)


def _fold_urem(node: Term) -> Term:
    left, right = node.children
    if right.value == 0:
        return t.BitVecVal(left.value, node.width)
    return t.BitVecVal(left.value % right.value, node.width)


_ARITH_FOLDERS = {
    "bvadd": lambda n: t.BitVecVal(n.children[0].value + n.children[1].value, n.width),
    "bvsub": lambda n: t.BitVecVal(n.children[0].value - n.children[1].value, n.width),
    "bvmul": lambda n: t.BitVecVal(n.children[0].value * n.children[1].value, n.width),
    "bvudiv": _fold_udiv,
    "bvurem": _fold_urem,
    "bvand": lambda n: t.BitVecVal(n.children[0].value & n.children[1].value, n.width),
    "bvor": lambda n: t.BitVecVal(n.children[0].value | n.children[1].value, n.width),
    "bvxor": lambda n: t.BitVecVal(n.children[0].value ^ n.children[1].value, n.width),
}
