"""Concrete evaluation of terms under an assignment of symbols to values.

Evaluation serves three purposes in the Gauntlet reproduction:

* checking models returned by the SAT-based solver against the original
  (pre-bit-blasting) formula,
* computing expected output packets for symbolic-execution test cases, and
* property-based testing of the simplifier (a rewrite must preserve the
  value of a term under every assignment).
"""

from __future__ import annotations

from typing import Dict, Mapping, Union

from repro.smt.terms import Term

Value = Union[int, bool]


class EvaluationError(Exception):
    """Raised when a term cannot be evaluated (e.g. unbound symbol)."""


def _mask(width: int) -> int:
    return (1 << width) - 1


def evaluate(term: Term, assignment: Mapping[str, Value], default: Value | None = 0) -> Value:
    """Evaluate ``term`` under ``assignment`` (symbol name -> value).

    ``default`` is used for unbound symbols; pass ``None`` to raise
    :class:`EvaluationError` instead, which is useful when a model is
    expected to be total.
    """

    cache: Dict[int, Value] = {}

    def walk(node: Term) -> Value:
        key = id(node)
        if key in cache:
            return cache[key]
        value = _evaluate_node(node, walk, assignment, default)
        cache[key] = value
        return value

    return walk(term)


def _evaluate_node(
    node: Term,
    walk,
    assignment: Mapping[str, Value],
    default: Value | None,
) -> Value:
    op = node.op
    if op == "bvconst":
        return node.value
    if op == "boolconst":
        return bool(node.value)
    if op in ("bvsym", "boolsym"):
        if node.name in assignment:
            raw = assignment[node.name]
        elif default is not None:
            raw = default
        else:
            raise EvaluationError(f"unbound symbol {node.name!r}")
        if op == "boolsym":
            return bool(raw)
        return int(raw) & _mask(node.width)

    children = node.children
    if op == "bvadd":
        return (walk(children[0]) + walk(children[1])) & _mask(node.width)
    if op == "bvsub":
        return (walk(children[0]) - walk(children[1])) & _mask(node.width)
    if op == "bvmul":
        return (walk(children[0]) * walk(children[1])) & _mask(node.width)
    if op == "bvudiv":
        divisor = walk(children[1])
        if divisor == 0:
            return _mask(node.width)
        return walk(children[0]) // divisor
    if op == "bvurem":
        divisor = walk(children[1])
        if divisor == 0:
            return walk(children[0])
        return walk(children[0]) % divisor
    if op == "bvand":
        return walk(children[0]) & walk(children[1])
    if op == "bvor":
        return walk(children[0]) | walk(children[1])
    if op == "bvxor":
        return walk(children[0]) ^ walk(children[1])
    if op == "bvnot":
        return (~walk(children[0])) & _mask(node.width)
    if op == "bvshl":
        amount = walk(children[1])
        if amount >= node.width:
            return 0
        return (walk(children[0]) << amount) & _mask(node.width)
    if op == "bvlshr":
        amount = walk(children[1])
        if amount >= node.width:
            return 0
        return walk(children[0]) >> amount
    if op == "concat":
        value = 0
        for child in children:
            value = (value << child.width) | walk(child)
        return value
    if op == "extract":
        high, low = node.payload  # type: ignore[misc]
        return (walk(children[0]) >> low) & _mask(high - low + 1)
    if op == "zero_ext":
        return walk(children[0])
    if op == "eq":
        return walk(children[0]) == walk(children[1])
    if op == "bvult":
        return walk(children[0]) < walk(children[1])
    if op == "bvule":
        return walk(children[0]) <= walk(children[1])
    if op == "and":
        return all(walk(child) for child in children)
    if op == "or":
        return any(walk(child) for child in children)
    if op == "not":
        return not walk(children[0])
    if op == "ite":
        return walk(children[1]) if walk(children[0]) else walk(children[2])
    raise EvaluationError(f"unknown operator {op!r}")
