"""Immutable term language for fixed-width bit vectors and Booleans.

Terms form a DAG: every node is an immutable :class:`Term` with an operator
name, a sort, children and (for leaves) a payload.  Construction goes through
small factory functions (``Add``, ``Eq``, ``Ite``...) which validate sorts and
perform *light* canonicalisation (constant folding is left to
:mod:`repro.smt.simplify`).

Two sorts exist:

* ``BoolSort()`` -- the Booleans.
* ``BitVecSort(width)`` -- unsigned bit vectors of a fixed ``width``.

The design intentionally mirrors the z3py subset Gauntlet relies on so the
symbolic interpreter reads like the original tool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple, Union


# ---------------------------------------------------------------------------
# Sorts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Sort:
    """Base class for term sorts."""

    def is_bool(self) -> bool:
        return isinstance(self, _BoolSort)

    def is_bv(self) -> bool:
        return isinstance(self, _BitVecSort)


@dataclass(frozen=True)
class _BoolSort(Sort):
    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "Bool"


@dataclass(frozen=True)
class _BitVecSort(Sort):
    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"bit-vector width must be positive, got {self.width}")

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"BitVec({self.width})"


_BOOL_SORT = _BoolSort()
_BV_SORT_CACHE: dict[int, _BitVecSort] = {}


def BoolSort() -> _BoolSort:
    """Return the Boolean sort."""

    return _BOOL_SORT


def BitVecSort(width: int) -> _BitVecSort:
    """Return the bit-vector sort of ``width`` bits (cached)."""

    sort = _BV_SORT_CACHE.get(width)
    if sort is None:
        sort = _BitVecSort(width)
        _BV_SORT_CACHE[width] = sort
    return sort


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


class Term:
    """A node in the term DAG.

    Terms are immutable, hashable and *hash-consed*: constructing a term
    that is structurally equal to an existing one returns the existing
    object, so structural equality coincides with pointer identity.  Every
    memo table downstream (the simplifier, the bit-blaster, solver caches)
    can therefore key on the term object itself and rely on ``is`` hits.
    """

    __slots__ = ("op", "sort", "children", "payload", "_hash")

    #: The global hash-cons table: (op, sort, children, payload) -> Term.
    _intern_table: dict = {}

    def __new__(
        cls,
        op: str,
        sort: Sort,
        children: Tuple["Term", ...] = (),
        payload: Optional[object] = None,
    ) -> "Term":
        key = (op, sort, children, payload)
        term = cls._intern_table.get(key)
        if term is None:
            term = super().__new__(cls)
            term.op = op
            term.sort = sort
            term.children = children
            term.payload = payload
            term._hash = hash(key)
            cls._intern_table[key] = term
        return term

    def __init__(self, *args: object, **kwargs: object) -> None:
        # All construction happens in __new__ (interned instances must not
        # be re-initialised when the table returns an existing object).
        pass

    # -- dunder plumbing ---------------------------------------------------

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        # Interning makes identity the common case; the structural fallback
        # only matters for hash-bucket collisions inside dict lookups.
        if self is other:
            return True
        if not isinstance(other, Term):
            return NotImplemented
        return (
            self._hash == other._hash
            and self.op == other.op
            and self.sort == other.sort
            and self.payload == other.payload
            and self.children == other.children
        )

    def __copy__(self) -> "Term":
        return self

    def __deepcopy__(self, memo: dict) -> "Term":
        return self

    def __reduce__(self):
        # Re-intern on unpickle so identity-based equality keeps holding.
        return (Term, (self.op, self.sort, self.children, self.payload))

    def __repr__(self) -> str:
        return self.to_sexpr()

    # -- convenience accessors ----------------------------------------------

    @property
    def width(self) -> int:
        """Width of a bit-vector term (raises for Booleans)."""

        if not isinstance(self.sort, _BitVecSort):
            raise TypeError(f"term {self.op} is not a bit vector")
        return self.sort.width

    def is_const(self) -> bool:
        """True when the term is a literal constant (bit vector or Boolean)."""

        return self.op in ("bvconst", "boolconst")

    def is_symbol(self) -> bool:
        """True when the term is a free variable."""

        return self.op in ("bvsym", "boolsym")

    @property
    def value(self) -> int:
        """Constant value of a literal term."""

        if not self.is_const():
            raise TypeError(f"term {self.op} is not a constant")
        return self.payload  # type: ignore[return-value]

    @property
    def name(self) -> str:
        """Name of a symbol term."""

        if not self.is_symbol():
            raise TypeError(f"term {self.op} is not a symbol")
        return self.payload  # type: ignore[return-value]

    def symbols(self) -> set["Term"]:
        """Return the set of free symbols appearing in the term."""

        seen: set[int] = set()
        out: set[Term] = set()
        stack = [self]
        while stack:
            term = stack.pop()
            if id(term) in seen:
                continue
            seen.add(id(term))
            if term.is_symbol():
                out.add(term)
            stack.extend(term.children)
        return out

    def to_sexpr(self) -> str:
        """Render the term as an s-expression (for debugging and reports)."""

        if self.op == "bvconst":
            return f"#x{self.payload:0{(self.width + 3) // 4}x}"
        if self.op == "boolconst":
            return "true" if self.payload else "false"
        if self.is_symbol():
            return str(self.payload)
        if self.op == "extract":
            high, low = self.payload  # type: ignore[misc]
            return f"((_ extract {high} {low}) {self.children[0].to_sexpr()})"
        if self.op == "zero_ext":
            return f"((_ zero_extend {self.payload}) {self.children[0].to_sexpr()})"
        parts = " ".join(child.to_sexpr() for child in self.children)
        return f"({self.op} {parts})"


# ---------------------------------------------------------------------------
# Construction helpers
# ---------------------------------------------------------------------------


def _mask(width: int) -> int:
    return (1 << width) - 1


def BitVecVal(value: int, width: int) -> Term:
    """A bit-vector literal of ``width`` bits (value is reduced modulo 2^width)."""

    return Term("bvconst", BitVecSort(width), payload=value & _mask(width))


def BitVecSym(name: str, width: int) -> Term:
    """A free bit-vector variable."""

    return Term("bvsym", BitVecSort(width), payload=name)


def BoolVal(value: bool) -> Term:
    """A Boolean literal."""

    return Term("boolconst", BoolSort(), payload=bool(value))


def BoolSym(name: str) -> Term:
    """A free Boolean variable."""

    return Term("boolsym", BoolSort(), payload=name)


TRUE = BoolVal(True)
FALSE = BoolVal(False)


def _require_bv(term: Term, context: str) -> None:
    if not term.sort.is_bv():
        raise TypeError(f"{context}: expected bit-vector operand, got {term.sort!r}")


def _require_bool(term: Term, context: str) -> None:
    if not term.sort.is_bool():
        raise TypeError(f"{context}: expected Boolean operand, got {term.sort!r}")


def _require_same_width(left: Term, right: Term, context: str) -> None:
    _require_bv(left, context)
    _require_bv(right, context)
    if left.width != right.width:
        raise TypeError(
            f"{context}: width mismatch {left.width} vs {right.width}"
        )


def _binary_bv(op: str, left: Term, right: Term) -> Term:
    _require_same_width(left, right, op)
    return Term(op, left.sort, (left, right))


def Add(left: Term, right: Term) -> Term:
    """Modular addition."""

    return _binary_bv("bvadd", left, right)


def Sub(left: Term, right: Term) -> Term:
    """Modular subtraction."""

    return _binary_bv("bvsub", left, right)


def Mul(left: Term, right: Term) -> Term:
    """Modular multiplication."""

    return _binary_bv("bvmul", left, right)


def UDiv(left: Term, right: Term) -> Term:
    """Unsigned division; division by zero yields the all-ones vector."""

    return _binary_bv("bvudiv", left, right)


def URem(left: Term, right: Term) -> Term:
    """Unsigned remainder; remainder by zero yields the dividend."""

    return _binary_bv("bvurem", left, right)


def BvAnd(left: Term, right: Term) -> Term:
    """Bitwise and."""

    return _binary_bv("bvand", left, right)


def BvOr(left: Term, right: Term) -> Term:
    """Bitwise or."""

    return _binary_bv("bvor", left, right)


def BvXor(left: Term, right: Term) -> Term:
    """Bitwise xor."""

    return _binary_bv("bvxor", left, right)


def BvNot(operand: Term) -> Term:
    """Bitwise complement."""

    _require_bv(operand, "bvnot")
    return Term("bvnot", operand.sort, (operand,))


def Shl(left: Term, right: Term) -> Term:
    """Logical shift left (shift amount is an unsigned bit vector)."""

    return _binary_bv("bvshl", left, right)


def LShr(left: Term, right: Term) -> Term:
    """Logical shift right."""

    return _binary_bv("bvlshr", left, right)


def Concat(*operands: Term) -> Term:
    """Concatenate bit vectors, first operand becomes the most significant bits."""

    if len(operands) < 2:
        raise ValueError("concat needs at least two operands")
    for operand in operands:
        _require_bv(operand, "concat")
    total = sum(operand.width for operand in operands)
    return Term("concat", BitVecSort(total), tuple(operands))


def Extract(high: int, low: int, operand: Term) -> Term:
    """Extract bits ``high`` down to ``low`` (both inclusive)."""

    _require_bv(operand, "extract")
    if not (0 <= low <= high < operand.width):
        raise ValueError(
            f"extract bounds [{high}:{low}] invalid for width {operand.width}"
        )
    return Term("extract", BitVecSort(high - low + 1), (operand,), payload=(high, low))


def ZeroExt(extra: int, operand: Term) -> Term:
    """Zero-extend a bit vector by ``extra`` bits."""

    _require_bv(operand, "zero_ext")
    if extra < 0:
        raise ValueError("zero_ext amount must be non-negative")
    if extra == 0:
        return operand
    return Term("zero_ext", BitVecSort(operand.width + extra), (operand,), payload=extra)


def Eq(left: Term, right: Term) -> Term:
    """Equality over bit vectors or Booleans."""

    if left.sort != right.sort:
        raise TypeError(f"eq: sort mismatch {left.sort!r} vs {right.sort!r}")
    return Term("eq", BoolSort(), (left, right))


def Ne(left: Term, right: Term) -> Term:
    """Disequality."""

    return Not(Eq(left, right))


def _comparison(op: str, left: Term, right: Term) -> Term:
    _require_same_width(left, right, op)
    return Term(op, BoolSort(), (left, right))


def Ult(left: Term, right: Term) -> Term:
    """Unsigned less-than."""

    return _comparison("bvult", left, right)


def Ule(left: Term, right: Term) -> Term:
    """Unsigned less-or-equal."""

    return _comparison("bvule", left, right)


def Ugt(left: Term, right: Term) -> Term:
    """Unsigned greater-than."""

    return _comparison("bvult", right, left)


def Uge(left: Term, right: Term) -> Term:
    """Unsigned greater-or-equal."""

    return _comparison("bvule", right, left)


def _flatten(op: str, operands: Iterable[Term]) -> Tuple[Term, ...]:
    out: list[Term] = []
    for operand in operands:
        if operand.op == op:
            out.extend(operand.children)
        else:
            out.append(operand)
    return tuple(out)


def And(*operands: Term) -> Term:
    """Boolean conjunction (n-ary, flattened)."""

    if not operands:
        return TRUE
    for operand in operands:
        _require_bool(operand, "and")
    flat = _flatten("and", operands)
    if len(flat) == 1:
        return flat[0]
    return Term("and", BoolSort(), flat)


def Or(*operands: Term) -> Term:
    """Boolean disjunction (n-ary, flattened)."""

    if not operands:
        return FALSE
    for operand in operands:
        _require_bool(operand, "or")
    flat = _flatten("or", operands)
    if len(flat) == 1:
        return flat[0]
    return Term("or", BoolSort(), flat)


def Not(operand: Term) -> Term:
    """Boolean negation."""

    _require_bool(operand, "not")
    if operand.op == "not":
        return operand.children[0]
    return Term("not", BoolSort(), (operand,))


def Implies(antecedent: Term, consequent: Term) -> Term:
    """Boolean implication."""

    return Or(Not(antecedent), consequent)


def Ite(cond: Term, then: Term, orelse: Term) -> Term:
    """If-then-else over bit vectors or Booleans."""

    _require_bool(cond, "ite")
    if then.sort != orelse.sort:
        raise TypeError(
            f"ite: branch sort mismatch {then.sort!r} vs {orelse.sort!r}"
        )
    return Term("ite", then.sort, (cond, then, orelse))


BoolOrInt = Union[bool, int]


# ---------------------------------------------------------------------------
# Hash-cons table maintenance
# ---------------------------------------------------------------------------


def intern_table_size() -> int:
    """Number of distinct terms currently interned (for stats/benchmarks)."""

    return len(Term._intern_table)


def clear_term_caches() -> None:
    """Drop the hash-cons table (and dependent caches).

    Long-running services can call this between campaigns to bound memory.
    Structural ``__eq__``/``__hash__`` remain correct for terms that survive
    a clear, but the ``is``-identity fast paths only apply among terms
    constructed under the same table generation, so dependent memo caches
    (the simplifier cache in :mod:`repro.smt.simplify`) are cleared too.
    """

    # The package re-exports the ``simplify`` *function*, shadowing the
    # module attribute, so import the helper from the module path directly.
    from repro.smt.simplify import clear_simplify_cache

    Term._intern_table.clear()
    clear_simplify_cache()
    # Re-intern the module-level singletons so they stay canonical.
    Term._intern_table[("boolconst", _BOOL_SORT, (), True)] = TRUE
    Term._intern_table[("boolconst", _BOOL_SORT, (), False)] = FALSE
