"""User-facing SMT solver facade.

:class:`Solver` collects Boolean constraints over bit-vector/Boolean terms,
simplifies them, bit-blasts to CNF and runs the CDCL SAT solver.  Models are
reconstructed at the term level (symbol name -> integer / bool) and
double-checked against the original constraints by concrete evaluation,
which guards against bit-blasting bugs.

The module also provides the two operations Gauntlet actually needs:

* :func:`equivalent` / :func:`find_divergence` -- check whether two formulas
  agree for every assignment, and if not produce a witness assignment.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Union

from repro.smt import terms as t
from repro.smt.bitblast import BitBlaster
from repro.smt.evaluate import evaluate
from repro.smt.sat import SatSolver
from repro.smt.simplify import simplify
from repro.smt.terms import Term

Value = Union[int, bool]


class CheckResult(Enum):
    """Outcome of a satisfiability check."""

    SAT = "sat"
    UNSAT = "unsat"


@dataclass
class Model:
    """A satisfying assignment: symbol name -> concrete value."""

    values: Dict[str, Value] = field(default_factory=dict)

    def __getitem__(self, name: str) -> Value:
        return self.values.get(name, 0)

    def get(self, name: str, default: Value = 0) -> Value:
        return self.values.get(name, default)

    def __contains__(self, name: str) -> bool:  # pragma: no cover - trivial
        return name in self.values

    def __iter__(self):  # pragma: no cover - trivial
        return iter(self.values)

    def items(self):  # pragma: no cover - trivial
        return self.values.items()


class Solver:
    """Accumulate constraints and decide satisfiability."""

    def __init__(self) -> None:
        self._constraints: List[Term] = []
        self._model: Optional[Model] = None

    # -- constraint management ------------------------------------------------

    def add(self, *constraints: Term) -> None:
        """Add Boolean constraints to the solver."""

        for constraint in constraints:
            if not constraint.sort.is_bool():
                raise TypeError("solver constraints must be Boolean terms")
            self._constraints.append(constraint)

    def reset(self) -> None:
        """Drop all constraints and any cached model."""

        self._constraints.clear()
        self._model = None

    @property
    def constraints(self) -> List[Term]:
        return list(self._constraints)

    # -- solving ---------------------------------------------------------------

    def check(self, *extra: Term) -> CheckResult:
        """Check satisfiability of the conjunction of all constraints."""

        goal = simplify(t.And(*(self._constraints + list(extra)))) if (
            self._constraints or extra
        ) else t.TRUE
        if goal.is_const():
            if goal.value:
                self._model = Model({})
                return CheckResult.SAT
            self._model = None
            return CheckResult.UNSAT

        blaster = BitBlaster()
        blaster.assert_term(goal)
        cnf = blaster.builder.cnf
        result = SatSolver(cnf.num_vars, cnf.clauses).solve()
        if not result.satisfiable:
            self._model = None
            return CheckResult.UNSAT

        values: Dict[str, Value] = {}
        for name, bits in blaster.symbol_bits().items():
            value = 0
            for index, literal in enumerate(bits):
                if result.assignment.get(abs(literal), False) == (literal > 0):
                    value |= 1 << index
            values[name] = value
        for name, literal in blaster.bool_symbol_vars().items():
            values[name] = result.assignment.get(abs(literal), False) == (literal > 0)

        model = Model(values)
        # Sanity check the model against the original (unsimplified) goal.
        if not evaluate(goal, model.values, default=0):
            raise RuntimeError(
                "internal SMT error: SAT model does not satisfy the formula"
            )
        self._model = model
        return CheckResult.SAT

    def model(self) -> Model:
        """Return the model from the last successful :meth:`check`."""

        if self._model is None:
            raise RuntimeError("no model available: last check was unsat or not run")
        return self._model


# ---------------------------------------------------------------------------
# Equivalence checking helpers (the core of translation validation)
# ---------------------------------------------------------------------------


def find_divergence(
    left: Term,
    right: Term,
    extra_constraints: Iterable[Term] = (),
    prefer_nonzero: Iterable[Term] = (),
) -> Optional[Model]:
    """Search for an assignment under which ``left`` and ``right`` differ.

    Returns ``None`` when the terms are semantically equivalent (under the
    optional ``extra_constraints``); otherwise returns a witness model.

    ``prefer_nonzero`` lists symbols the caller would like to be non-zero in
    the witness (Gauntlet asks Z3 for non-zero packets so that targets that
    zero-initialise undefined values do not mask bugs); the preference is
    best-effort and dropped if it would make the query unsatisfiable.
    """

    if left.sort != right.sort:
        raise TypeError("cannot compare terms of different sorts")
    difference = t.Ne(left, right)
    solver = Solver()
    solver.add(difference, *extra_constraints)

    nonzero_terms = [
        t.Ne(symbol, t.BitVecVal(0, symbol.width))
        for symbol in prefer_nonzero
        if symbol.sort.is_bv()
    ]
    if nonzero_terms:
        if solver.check(*nonzero_terms) == CheckResult.SAT:
            return solver.model()
    if solver.check() == CheckResult.SAT:
        return solver.model()
    return None


def equivalent(
    left: Term, right: Term, extra_constraints: Iterable[Term] = ()
) -> bool:
    """True when ``left`` and ``right`` agree under every assignment."""

    return find_divergence(left, right, extra_constraints) is None


def enumerate_models(
    constraint: Term,
    over: List[Term],
    limit: int = 16,
) -> List[Model]:
    """Enumerate up to ``limit`` distinct models of ``constraint``.

    Distinctness is with respect to the symbols in ``over``; each found model
    is blocked before the next query.  Used by the symbolic-execution test
    generator to obtain several packets per program path.
    """

    models: List[Model] = []
    blocking: List[Term] = []
    solver = Solver()
    solver.add(constraint)
    for _ in itertools.repeat(None, limit):
        if solver.check(*blocking) != CheckResult.SAT:
            break
        model = solver.model()
        models.append(model)
        disequalities = []
        for symbol in over:
            if symbol.sort.is_bv():
                disequalities.append(
                    t.Ne(symbol, t.BitVecVal(int(model.get(symbol.name, 0)), symbol.width))
                )
            else:
                disequalities.append(
                    t.Ne(symbol, t.BoolVal(bool(model.get(symbol.name, False))))
                )
        if not disequalities:
            break
        blocking.append(t.Or(*disequalities))
    return models
