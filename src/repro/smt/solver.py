"""User-facing SMT solver facade.

:class:`Solver` collects Boolean constraints over bit-vector/Boolean terms,
simplifies them, bit-blasts to CNF and runs the CDCL SAT solver.  Models are
reconstructed at the term level (symbol name -> integer / bool) and
double-checked against the original constraints by concrete evaluation,
which guards against bit-blasting bugs.

The facade is *incremental*: each :class:`Solver` owns one persistent
:class:`~repro.smt.bitblast.BitBlaster` and one persistent
:class:`~repro.smt.sat.SatSolver`.  Constraints are blasted exactly once
when first checked; ``check(*extra)`` encodes the extra constraints as
assumption literals instead of rebuilding the CNF, so the SAT solver's
learned-clause database, watch lists, activities and saved phases are
reused across every check on the same solver.  This is what makes
blocking-clause model enumeration (:func:`enumerate_models`) and the
preference retry in :func:`find_divergence` cheap.

The module also provides the two operations Gauntlet actually needs:

* :func:`equivalent` / :func:`find_divergence` -- check whether two formulas
  agree for every assignment, and if not produce a witness assignment.
  Because terms are hash-consed, structurally identical sides are the same
  object and short-circuit to "equivalent" without any SAT query (see
  :data:`STATS`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Union

from repro.smt import terms as t
from repro.smt.bitblast import BitBlaster
from repro.smt.evaluate import evaluate
from repro.smt.sat import SatSolver
from repro.smt.simplify import simplify
from repro.smt.terms import Term

Value = Union[int, bool]


@dataclass
class SolverStats:
    """Process-wide counters for the validation hot path.

    ``sat_invocations`` counts actual CDCL ``solve`` calls; the syntactic
    fast paths in :func:`find_divergence` must keep it at zero for
    structurally identical terms (asserted by the unit tests).
    """

    checks: int = 0
    sat_invocations: int = 0
    syntactic_equivalences: int = 0
    constant_verdicts: int = 0

    def reset(self) -> None:
        self.checks = 0
        self.sat_invocations = 0
        self.syntactic_equivalences = 0
        self.constant_verdicts = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "checks": self.checks,
            "sat_invocations": self.sat_invocations,
            "syntactic_equivalences": self.syntactic_equivalences,
            "constant_verdicts": self.constant_verdicts,
        }


#: Global instrumentation shared by every :class:`Solver` instance.
STATS = SolverStats()


class CheckResult(Enum):
    """Outcome of a satisfiability check."""

    SAT = "sat"
    UNSAT = "unsat"


@dataclass
class Model:
    """A satisfying assignment: symbol name -> concrete value."""

    values: Dict[str, Value] = field(default_factory=dict)

    def __getitem__(self, name: str) -> Value:
        return self.values.get(name, 0)

    def get(self, name: str, default: Value = 0) -> Value:
        return self.values.get(name, default)

    def __contains__(self, name: str) -> bool:  # pragma: no cover - trivial
        return name in self.values

    def __iter__(self):  # pragma: no cover - trivial
        return iter(self.values)

    def items(self):  # pragma: no cover - trivial
        return self.values.items()


class Solver:
    """Accumulate constraints and decide satisfiability incrementally."""

    def __init__(self) -> None:
        self._constraints: List[Term] = []
        self._model: Optional[Model] = None
        # Incremental state: one blaster + SAT solver per Solver lifetime.
        self._blaster: Optional[BitBlaster] = None
        self._sat: Optional[SatSolver] = None
        #: Simplified forms of the constraints asserted into the CNF so far.
        self._asserted: List[Term] = []
        #: How many of ``self._constraints`` have been processed.
        self._processed = 0
        #: Index into the builder's clause list already fed to the SAT solver.
        self._clauses_fed = 0
        #: Set when an added constraint simplifies to FALSE.
        self._trivially_unsat = False

    # -- constraint management ------------------------------------------------

    def add(self, *constraints: Term) -> None:
        """Add Boolean constraints to the solver."""

        for constraint in constraints:
            if not constraint.sort.is_bool():
                raise TypeError("solver constraints must be Boolean terms")
            self._constraints.append(constraint)

    def reset(self) -> None:
        """Drop all constraints, incremental state and any cached model."""

        self._constraints.clear()
        self._model = None
        self._blaster = None
        self._sat = None
        self._asserted = []
        self._processed = 0
        self._clauses_fed = 0
        self._trivially_unsat = False

    @property
    def constraints(self) -> List[Term]:
        return list(self._constraints)

    # -- solving ---------------------------------------------------------------

    def _ensure_engine(self) -> None:
        if self._blaster is None:
            self._blaster = BitBlaster()
            self._sat = SatSolver()

    def _sync_clauses(self) -> None:
        """Feed CNF clauses produced since the last sync to the SAT solver."""

        assert self._blaster is not None and self._sat is not None
        cnf = self._blaster.builder.cnf
        self._sat.ensure_num_vars(cnf.num_vars)
        if self._clauses_fed < len(cnf.clauses):
            self._sat.add_clauses(cnf.clauses[self._clauses_fed:])
            self._clauses_fed = len(cnf.clauses)

    def _assert_pending(self) -> None:
        """Simplify and bit-blast constraints added since the last check."""

        while self._processed < len(self._constraints):
            constraint = self._constraints[self._processed]
            self._processed += 1
            reduced = simplify(constraint)
            if reduced is t.TRUE:
                continue
            if reduced is t.FALSE:
                self._trivially_unsat = True
                continue
            self._ensure_engine()
            self._blaster.assert_term(reduced)
            self._asserted.append(reduced)

    def check(self, *extra: Term) -> CheckResult:
        """Check satisfiability of the conjunction of all constraints.

        ``extra`` constraints hold for this check only; they are encoded as
        assumption literals so they never pollute the persistent CNF.
        """

        STATS.checks += 1
        self._assert_pending()
        if self._trivially_unsat:
            self._model = None
            return CheckResult.UNSAT

        assumptions: List[int] = []
        extra_reduced: List[Term] = []
        for term in extra:
            if not term.sort.is_bool():
                raise TypeError("solver constraints must be Boolean terms")
            reduced = simplify(term)
            if reduced is t.TRUE:
                continue
            if reduced is t.FALSE:
                self._model = None
                STATS.constant_verdicts += 1
                return CheckResult.UNSAT
            extra_reduced.append(reduced)

        if self._sat is None and not extra_reduced:
            # Nothing was ever asserted: trivially satisfiable.
            self._model = Model({})
            STATS.constant_verdicts += 1
            return CheckResult.SAT

        self._ensure_engine()
        # Tseitin definitions are biconditional, so defining an assumption
        # literal adds no top-level assertion -- it only names the formula.
        for reduced in extra_reduced:
            assumptions.append(self._blaster.bool_literal(reduced))
        self._sync_clauses()

        STATS.sat_invocations += 1
        result = self._sat.solve(assumptions=assumptions)
        if not result.satisfiable:
            self._model = None
            return CheckResult.UNSAT

        values: Dict[str, Value] = {}
        for name, bits in self._blaster.symbol_bits().items():
            value = 0
            for index, literal in enumerate(bits):
                if result.assignment.get(abs(literal), False) == (literal > 0):
                    value |= 1 << index
            values[name] = value
        for name, literal in self._blaster.bool_symbol_vars().items():
            values[name] = result.assignment.get(abs(literal), False) == (literal > 0)

        model = Model(values)
        # Sanity check the model against the *original* (unsimplified)
        # constraints: this guards against bit-blasting bugs and against
        # unsound rewrites in the persistent simplifier cache alike.
        for constraint in itertools.chain(self._constraints[: self._processed], extra):
            if not evaluate(constraint, model.values, default=0):
                raise RuntimeError(
                    "internal SMT error: SAT model does not satisfy the formula"
                )
        self._model = model
        return CheckResult.SAT

    def model(self) -> Model:
        """Return the model from the last successful :meth:`check`."""

        if self._model is None:
            raise RuntimeError("no model available: last check was unsat or not run")
        return self._model


# ---------------------------------------------------------------------------
# Equivalence checking helpers (the core of translation validation)
# ---------------------------------------------------------------------------


def find_divergence(
    left: Term,
    right: Term,
    extra_constraints: Iterable[Term] = (),
    prefer_nonzero: Iterable[Term] = (),
) -> Optional[Model]:
    """Search for an assignment under which ``left`` and ``right`` differ.

    Returns ``None`` when the terms are semantically equivalent (under the
    optional ``extra_constraints``); otherwise returns a witness model.

    Hash-consing gives a syntactic fast path: structurally identical terms
    are the same object, and identical terms never diverge, so ``left is
    right`` (before or after simplification) answers without touching the
    SAT solver.

    ``prefer_nonzero`` lists symbols the caller would like to be non-zero in
    the witness (Gauntlet asks Z3 for non-zero packets so that targets that
    zero-initialise undefined values do not mask bugs); the preference is
    best-effort and dropped if it would make the query unsatisfiable.
    """

    if left.sort != right.sort:
        raise TypeError("cannot compare terms of different sorts")
    if left is right:
        STATS.syntactic_equivalences += 1
        return None
    # Simplification is memoised process-wide, so this is cheap for terms
    # the validator has seen before; identical normal forms are equivalent.
    if simplify(left) is simplify(right):
        STATS.syntactic_equivalences += 1
        return None
    difference = t.Ne(left, right)
    solver = Solver()
    solver.add(difference, *extra_constraints)

    nonzero_terms = [
        t.Ne(symbol, t.BitVecVal(0, symbol.width))
        for symbol in prefer_nonzero
        if symbol.sort.is_bv()
    ]
    if nonzero_terms:
        if solver.check(*nonzero_terms) == CheckResult.SAT:
            return solver.model()
    if solver.check() == CheckResult.SAT:
        return solver.model()
    return None


def equivalent(
    left: Term, right: Term, extra_constraints: Iterable[Term] = ()
) -> bool:
    """True when ``left`` and ``right`` agree under every assignment."""

    return find_divergence(left, right, extra_constraints) is None


def enumerate_models(
    constraint: Term,
    over: List[Term],
    limit: int = 16,
) -> List[Model]:
    """Enumerate up to ``limit`` distinct models of ``constraint``.

    Distinctness is with respect to the symbols in ``over``; each found
    model is blocked before the next query.  The blocking clauses are added
    to one incremental :class:`Solver`, so the CNF, watch lists and
    learned-clause database are reused across iterations instead of
    rebuilding the SAT solver from scratch for every model.  Used by the
    symbolic-execution test generator to obtain several packets per program
    path.
    """

    models: List[Model] = []
    solver = Solver()
    solver.add(constraint)
    for _ in itertools.repeat(None, limit):
        if solver.check() != CheckResult.SAT:
            break
        model = solver.model()
        models.append(model)
        disequalities = []
        for symbol in over:
            if symbol.sort.is_bv():
                disequalities.append(
                    t.Ne(symbol, t.BitVecVal(int(model.get(symbol.name, 0)), symbol.width))
                )
            else:
                disequalities.append(
                    t.Ne(symbol, t.BoolVal(bool(model.get(symbol.name, False))))
                )
        if not disequalities:
            break
        solver.add(t.Or(*disequalities))
    return models
