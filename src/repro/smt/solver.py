"""User-facing SMT solver facade.

:class:`Solver` collects Boolean constraints over bit-vector/Boolean terms,
simplifies them, bit-blasts to CNF and runs the CDCL SAT solver.  Models are
reconstructed at the term level (symbol name -> integer / bool) and
double-checked against the original constraints by concrete evaluation,
which guards against bit-blasting bugs.

The facade is *incremental*: each :class:`Solver` owns one persistent
:class:`~repro.smt.bitblast.BitBlaster` and one persistent
:class:`~repro.smt.sat.SatSolver`.  Constraints are blasted exactly once
when first checked; ``check(*extra)`` encodes the extra constraints as
assumption literals instead of rebuilding the CNF, so the SAT solver's
learned-clause database, watch lists, activities and saved phases are
reused across every check on the same solver.  This is what makes
blocking-clause model enumeration (:func:`enumerate_models`) and the
preference retry in :func:`find_divergence` cheap.

The module also provides the two operations Gauntlet actually needs:

* :func:`equivalent` / :func:`find_divergence` -- check whether two formulas
  agree for every assignment, and if not produce a witness assignment.
  Because terms are hash-consed, structurally identical sides are the same
  object and short-circuit to "equivalent" without any SAT query (see
  :data:`STATS`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.smt import terms as t
from repro.smt.bitblast import BLAST_STATS, BitBlaster, reset_blast_stats
from repro.smt.evaluate import evaluate
from repro.smt.sat import SatResult, SatSolver
from repro.smt.simplify import simplify
from repro.smt.terms import Term

Value = Union[int, bool]


@dataclass
class SolverStats:
    """Process-wide counters for the validation hot path.

    ``sat_invocations`` counts actual CDCL ``solve`` calls; the syntactic
    fast paths in :func:`find_divergence` must keep it at zero for
    structurally identical terms (asserted by the unit tests).
    """

    checks: int = 0
    sat_invocations: int = 0
    syntactic_equivalences: int = 0
    constant_verdicts: int = 0
    #: Batched :func:`all_equivalent` calls that reached the solver.
    batched_checks: int = 0
    #: Pairs answered by the process-wide equivalence-verdict memo.
    equivalence_cache_hits: int = 0
    #: Queries cut short by a ``max_conflicts`` budget (verdict UNKNOWN).
    budget_exhausted: int = 0

    def reset(self) -> None:
        self.checks = 0
        self.sat_invocations = 0
        self.syntactic_equivalences = 0
        self.constant_verdicts = 0
        self.batched_checks = 0
        self.equivalence_cache_hits = 0
        self.budget_exhausted = 0
        reset_blast_stats()

    def snapshot(self) -> Dict[str, int]:
        # The bit-blast encoding-cache counters live in the bitblast module
        # (it cannot import this one) but are reported as solver stats: they
        # are part of the same hot path and ride the same per-unit deltas.
        return {
            "checks": self.checks,
            "sat_invocations": self.sat_invocations,
            "syntactic_equivalences": self.syntactic_equivalences,
            "constant_verdicts": self.constant_verdicts,
            "batched_checks": self.batched_checks,
            "equivalence_cache_hits": self.equivalence_cache_hits,
            "budget_exhausted": self.budget_exhausted,
            "bitblast_hits": BLAST_STATS["bitblast_hits"],
            "bitblast_misses": BLAST_STATS["bitblast_misses"],
        }


#: Global instrumentation shared by every :class:`Solver` instance.
STATS = SolverStats()


class CheckResult(Enum):
    """Outcome of a satisfiability check.

    ``UNKNOWN`` means a ``max_conflicts`` budget cut the search short: the
    query is neither proven satisfiable nor unsatisfiable.  It is never
    returned by an unbudgeted check.
    """

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class Model:
    """A satisfying assignment: symbol name -> concrete value."""

    values: Dict[str, Value] = field(default_factory=dict)

    def __getitem__(self, name: str) -> Value:
        return self.values.get(name, 0)

    def get(self, name: str, default: Value = 0) -> Value:
        return self.values.get(name, default)

    def __contains__(self, name: str) -> bool:  # pragma: no cover - trivial
        return name in self.values

    def __iter__(self):  # pragma: no cover - trivial
        return iter(self.values)

    def items(self):  # pragma: no cover - trivial
        return self.values.items()


class Solver:
    """Accumulate constraints and decide satisfiability incrementally."""

    def __init__(self) -> None:
        self._constraints: List[Term] = []
        self._model: Optional[Model] = None
        # Incremental state: one blaster + SAT solver per Solver lifetime.
        self._blaster: Optional[BitBlaster] = None
        self._sat: Optional[SatSolver] = None
        #: Simplified forms of the constraints asserted into the CNF so far.
        self._asserted: List[Term] = []
        #: How many of ``self._constraints`` have been processed.
        self._processed = 0
        #: Index into the builder's clause list already fed to the SAT solver.
        self._clauses_fed = 0
        #: Set when an added constraint simplifies to FALSE.
        self._trivially_unsat = False

    # -- constraint management ------------------------------------------------

    def add(self, *constraints: Term) -> None:
        """Add Boolean constraints to the solver."""

        for constraint in constraints:
            if not constraint.sort.is_bool():
                raise TypeError("solver constraints must be Boolean terms")
            self._constraints.append(constraint)

    def reset(self) -> None:
        """Drop all constraints, incremental state and any cached model."""

        self._constraints.clear()
        self._model = None
        self._blaster = None
        self._sat = None
        self._asserted = []
        self._processed = 0
        self._clauses_fed = 0
        self._trivially_unsat = False

    @property
    def constraints(self) -> List[Term]:
        return list(self._constraints)

    # -- solving ---------------------------------------------------------------

    def _ensure_engine(self) -> None:
        if self._blaster is None:
            self._blaster = BitBlaster()
            self._sat = SatSolver()

    def _sync_clauses(self) -> None:
        """Feed CNF clauses produced since the last sync to the SAT solver."""

        assert self._blaster is not None and self._sat is not None
        cnf = self._blaster.builder.cnf
        self._sat.ensure_num_vars(cnf.num_vars)
        if self._clauses_fed < len(cnf.clauses):
            self._sat.add_clauses(cnf.clauses[self._clauses_fed:])
            self._clauses_fed = len(cnf.clauses)

    def _assert_pending(self) -> None:
        """Simplify and bit-blast constraints added since the last check."""

        while self._processed < len(self._constraints):
            constraint = self._constraints[self._processed]
            self._processed += 1
            reduced = simplify(constraint)
            if reduced is t.TRUE:
                continue
            if reduced is t.FALSE:
                self._trivially_unsat = True
                continue
            self._ensure_engine()
            self._blaster.assert_term(reduced)
            self._asserted.append(reduced)

    def check(
        self, *extra: Term, max_conflicts: Optional[int] = None
    ) -> CheckResult:
        """Check satisfiability of the conjunction of all constraints.

        ``extra`` constraints hold for this check only; they are encoded as
        assumption literals so they never pollute the persistent CNF.
        ``max_conflicts`` bounds the CDCL search; an exhausted budget
        yields :data:`CheckResult.UNKNOWN` instead of an answer.
        """

        return self._check(extra, build_model=True, max_conflicts=max_conflicts)

    def decide(
        self, *extra: Term, max_conflicts: Optional[int] = None
    ) -> CheckResult:
        """Satisfiability verdict only: no model is reconstructed.

        Verdicts are semantic facts (independent of solver history), so a
        long-lived solver can answer them for many callers; *models* are
        history-dependent, which is why :func:`all_equivalent` uses this
        and leaves witness construction to a fresh solver.  After a
        ``decide``, :meth:`model` raises.
        """

        return self._check(extra, build_model=False, max_conflicts=max_conflicts)

    def _check(
        self,
        extra: Tuple[Term, ...],
        build_model: bool,
        max_conflicts: Optional[int] = None,
    ) -> CheckResult:
        STATS.checks += 1
        self._assert_pending()
        if self._trivially_unsat:
            self._model = None
            return CheckResult.UNSAT

        assumptions: List[int] = []
        extra_reduced: List[Term] = []
        for term in extra:
            if not term.sort.is_bool():
                raise TypeError("solver constraints must be Boolean terms")
            reduced = simplify(term)
            if reduced is t.TRUE:
                continue
            if reduced is t.FALSE:
                self._model = None
                STATS.constant_verdicts += 1
                return CheckResult.UNSAT
            extra_reduced.append(reduced)

        if self._sat is None and not extra_reduced:
            # Nothing was ever asserted: trivially satisfiable.
            self._model = Model({}) if build_model else None
            STATS.constant_verdicts += 1
            return CheckResult.SAT

        self._ensure_engine()
        # Tseitin definitions are biconditional, so defining an assumption
        # literal adds no top-level assertion -- it only names the formula.
        for reduced in extra_reduced:
            assumptions.append(self._blaster.bool_literal(reduced))

        STATS.sat_invocations += 1
        if build_model:
            self._sync_clauses()
            result = self._sat.solve(
                assumptions=assumptions, max_conflicts=max_conflicts
            )
        else:
            # Verdict-only checks solve just the cone of the query: on a
            # long-lived solver (the validator's chain-scoped batches) the
            # accumulated CNF covers every pair seen so far, but this CDCL
            # assigns every variable it knows, so solving the full formula
            # makes each verdict pay for all of them.  The blaster memo
            # still amortises the Tseitin encoding chain-wide; only the
            # SAT instance is per-query.  Models must come from the full
            # formula (symbol bits outside the cone would be unassigned),
            # which is why this path never builds one.
            result = self._cone_solve(assumptions, max_conflicts)
        if not result.satisfiable:
            self._model = None
            if not result.complete:
                STATS.budget_exhausted += 1
                return CheckResult.UNKNOWN
            return CheckResult.UNSAT
        if not build_model:
            self._model = None
            return CheckResult.SAT

        values: Dict[str, Value] = {}
        for name, bits in self._blaster.symbol_bits().items():
            value = 0
            for index, literal in enumerate(bits):
                if result.assignment.get(abs(literal), False) == (literal > 0):
                    value |= 1 << index
            values[name] = value
        for name, literal in self._blaster.bool_symbol_vars().items():
            values[name] = result.assignment.get(abs(literal), False) == (literal > 0)

        model = Model(values)
        # Sanity check the model against the *original* (unsimplified)
        # constraints: this guards against bit-blasting bugs and against
        # unsound rewrites in the persistent simplifier cache alike.
        for constraint in itertools.chain(self._constraints[: self._processed], extra):
            if not evaluate(constraint, model.values, default=0):
                raise RuntimeError(
                    "internal SMT error: SAT model does not satisfy the formula"
                )
        self._model = model
        return CheckResult.SAT

    def _cone_solve(
        self, assumptions: List[int], max_conflicts: Optional[int]
    ) -> SatResult:
        """Solve only the clauses the assumptions transitively depend on.

        Variables are renumbered compactly (sorted order, so the instance
        is deterministic), and a throwaway SAT solver decides the cone.
        Soundness: every clause outside the cone is a biconditional gate
        definition of an unrelated formula, satisfiable by evaluating the
        gate bottom-up, so cone-SAT extends to full-SAT and cone-UNSAT
        implies full-UNSAT (the cone is a subset of the clauses).
        """

        assert self._blaster is not None
        builder = self._blaster.builder
        indices, cone_vars = builder.cone(abs(lit) for lit in assumptions)
        order = sorted(cone_vars)
        remap = {var: new for new, var in enumerate(order, start=1)}
        clauses = builder.cnf.clauses

        def translate(literal: int) -> int:
            mapped = remap[abs(literal)]
            return mapped if literal > 0 else -mapped

        sub = SatSolver()
        sub.ensure_num_vars(len(order))
        sub.add_clauses(
            [[translate(lit) for lit in clauses[i]] for i in indices]
        )
        return sub.solve(
            assumptions=[translate(lit) for lit in assumptions],
            max_conflicts=max_conflicts,
        )

    def model(self) -> Model:
        """Return the model from the last successful :meth:`check`."""

        if self._model is None:
            raise RuntimeError("no model available: last check was unsat or not run")
        return self._model


# ---------------------------------------------------------------------------
# Equivalence checking helpers (the core of translation validation)
# ---------------------------------------------------------------------------

#: Conflict budget for equivalence queries (:func:`all_equivalent` and
#: :func:`find_divergence`).  Every legitimate query in the seeded
#: campaigns settles in well under a hundred conflicts; a rare snapshot
#: pair produces a genuinely hard instance (tens of thousands of
#: conflicts, minutes of wall clock) out of which no witness ever comes.
#: Exhausting the budget yields UNKNOWN, which the equivalence layer
#: treats as "no divergence found": the oracle trades a theoretical
#: missed bug for never producing a false alarm and never hanging a
#: campaign — the same trade Gauntlet makes by running Z3 under a
#: timeout.  The budget is a deterministic conflict *count*, not wall
#: clock, so ``jobs=1`` and ``jobs=N`` still agree on every verdict.
EQUIVALENCE_CONFLICT_BUDGET = 512

#: Memo value for pairs whose query exhausted the conflict budget.
_HARD = "hard"

#: Process-wide equivalence-verdict memo: ``(left, right) -> True`` for
#: pairs proven *unconditionally* equivalent (no extra constraints), or
#: :data:`_HARD` for pairs whose query exhausted the conflict budget (a
#: pathological pair is paid for at most once per process).  Equivalence
#: is a semantic fact about the interned term pair, so the memo is safe
#: campaign-lifetime; divergence verdicts are not stored because their
#: value is the witness, which must be re-derived on a fresh solver to
#: stay scheduler-independent.
_EQUIV_CACHE: Dict[Tuple[Term, Term], object] = {}
_EQUIV_CACHE_LIMIT = 200_000

def _remember_equivalent(left: Term, right: Term, value: object = True) -> None:
    if len(_EQUIV_CACHE) >= _EQUIV_CACHE_LIMIT:
        _EQUIV_CACHE.clear()
    _EQUIV_CACHE[(left, right)] = value


def clear_equivalence_cache() -> None:
    """Drop the process-wide equivalence-verdict memo."""

    _EQUIV_CACHE.clear()


def equivalence_cache_size() -> int:
    return len(_EQUIV_CACHE)


def all_equivalent(
    pairs: Iterable[Tuple[Term, Term]], solver: Optional[Solver] = None
) -> bool:
    """Decide whether *every* ``(left, right)`` pair is equivalent.

    This is the batched common case of translation validation: almost all
    output fields of a clean snapshot pair are equivalent, and this
    entry point proves them together on **one** incremental solver.  Each
    pair first runs the syntactic fast paths and the campaign-lifetime
    equivalence memo; each survivor is then `decide()`d as its own
    assumption-literal query (``Ne(l, r)``) on the batch solver, and each
    ``UNSAT`` verdict feeds the memo immediately — so pairs proven before
    a later divergence stay proven.

    The queries are deliberately *not* ganged into one
    ``Or(Ne(l, r), ...)`` disjunction: refuting a disjunction forces the
    CDCL search to interleave every field's refutation under one VSIDS
    heap, which is sometimes catastrophically slower than the focused
    per-field proofs (minutes instead of milliseconds on wide snapshot
    pairs).  The batching win lives in the *solver*, not the query shape:
    survivors share most of their term DAG, so each query after the first
    reuses the previous queries' Tseitin encoding and learned clauses.

    ``solver`` widens that reuse across a *sequence* of related batches —
    the validator threads one chain-scoped solver through all snapshot
    pairs of one compilation, where consecutive pairs share a snapshot.
    The scope should be no wider than the term population it serves:
    nothing is ever asserted, but this CDCL has no variable relevancy
    filtering, so a solver accumulating CNF across unrelated programs
    makes every later query pay for the whole variable space.  Without
    ``solver`` each call uses a fresh one.

    Returns ``False`` as soon as *some* pair diverges, without saying
    which: callers needing the diverging pair and a witness fall back to
    the sequential :func:`find_divergence` walk, whose fresh-solver models
    are deterministic and identical to the unbatched pipeline's.
    """

    survivors: List[Tuple[Term, Term]] = []
    for left, right in pairs:
        if left.sort != right.sort:
            raise TypeError("cannot compare terms of different sorts")
        if left is right or simplify(left) is simplify(right):
            STATS.syntactic_equivalences += 1
            continue
        if _EQUIV_CACHE.get((left, right)):
            STATS.equivalence_cache_hits += 1
            continue
        survivors.append((left, right))
    if not survivors:
        return True
    STATS.batched_checks += 1
    batch_solver = solver or Solver()
    for left, right in survivors:
        verdict = batch_solver.decide(
            t.Ne(left, right), max_conflicts=EQUIVALENCE_CONFLICT_BUDGET
        )
        if verdict == CheckResult.SAT:
            return False
        if verdict == CheckResult.UNKNOWN:
            # Budget exhausted: not proven, but no divergence found either.
            # Record the pair as hard so no later walk re-pays the search;
            # the oracle's bias is "no false alarms" (see the budget note).
            _remember_equivalent(left, right, value=_HARD)
            continue
        _remember_equivalent(left, right)
    return True


def find_divergence(
    left: Term,
    right: Term,
    extra_constraints: Iterable[Term] = (),
    prefer_nonzero: Iterable[Term] = (),
) -> Optional[Model]:
    """Search for an assignment under which ``left`` and ``right`` differ.

    Returns ``None`` when the terms are semantically equivalent (under the
    optional ``extra_constraints``); otherwise returns a witness model.

    Hash-consing gives a syntactic fast path: structurally identical terms
    are the same object, and identical terms never diverge, so ``left is
    right`` (before or after simplification) answers without touching the
    SAT solver.

    ``prefer_nonzero`` lists symbols the caller would like to be non-zero in
    the witness (Gauntlet asks Z3 for non-zero packets so that targets that
    zero-initialise undefined values do not mask bugs); the preference is
    best-effort and dropped if it would make the query unsatisfiable.
    """

    if left.sort != right.sort:
        raise TypeError("cannot compare terms of different sorts")
    if left is right:
        STATS.syntactic_equivalences += 1
        return None
    # Simplification is memoised process-wide, so this is cheap for terms
    # the validator has seen before; identical normal forms are equivalent.
    if simplify(left) is simplify(right):
        STATS.syntactic_equivalences += 1
        return None
    extras = list(extra_constraints)
    # The memo only records *unconditional* equivalences, so it may only
    # answer (and only learn) when no extra constraints narrow the query.
    if not extras and _EQUIV_CACHE.get((left, right)):
        STATS.equivalence_cache_hits += 1
        return None
    difference = t.Ne(left, right)
    solver = Solver()
    solver.add(difference, *extras)

    nonzero_terms = [
        t.Ne(symbol, t.BitVecVal(0, symbol.width))
        for symbol in prefer_nonzero
        if symbol.sort.is_bv()
    ]
    if nonzero_terms:
        if (
            solver.check(*nonzero_terms, max_conflicts=EQUIVALENCE_CONFLICT_BUDGET)
            == CheckResult.SAT
        ):
            return solver.model()
    verdict = solver.check(max_conflicts=EQUIVALENCE_CONFLICT_BUDGET)
    if verdict == CheckResult.SAT:
        return solver.model()
    if not extras:
        # UNSAT proves equivalence; UNKNOWN marks the pair hard so no
        # later walk re-pays the exhausted search (either way, there is no
        # witness to report — the oracle's bias is "no false alarms").
        _remember_equivalent(
            left, right, value=True if verdict == CheckResult.UNSAT else _HARD
        )
    return None


def equivalent(
    left: Term, right: Term, extra_constraints: Iterable[Term] = ()
) -> bool:
    """True when ``left`` and ``right`` agree under every assignment."""

    return find_divergence(left, right, extra_constraints) is None


def enumerate_models(
    constraint: Term,
    over: List[Term],
    limit: int = 16,
) -> List[Model]:
    """Enumerate up to ``limit`` distinct models of ``constraint``.

    Distinctness is with respect to the symbols in ``over``; each found
    model is blocked before the next query.  The blocking clauses are added
    to one incremental :class:`Solver`, so the CNF, watch lists and
    learned-clause database are reused across iterations instead of
    rebuilding the SAT solver from scratch for every model.  Used by the
    symbolic-execution test generator to obtain several packets per program
    path.
    """

    models: List[Model] = []
    solver = Solver()
    solver.add(constraint)
    for _ in itertools.repeat(None, limit):
        if solver.check() != CheckResult.SAT:
            break
        model = solver.model()
        models.append(model)
        disequalities = []
        for symbol in over:
            if symbol.sort.is_bv():
                disequalities.append(
                    t.Ne(symbol, t.BitVecVal(int(model.get(symbol.name, 0)), symbol.width))
                )
            else:
                disequalities.append(
                    t.Ne(symbol, t.BoolVal(bool(model.get(symbol.name, False))))
                )
        if not disequalities:
            break
        solver.add(t.Or(*disequalities))
    return models
