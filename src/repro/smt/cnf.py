"""Conjunctive normal form container used between bit-blasting and SAT.

Variables are positive integers; literals are non-zero integers where a
negative literal denotes the negation of the corresponding variable
(DIMACS convention).  :class:`CnfBuilder` hands out fresh variables and
accumulates clauses, and offers the handful of gate encodings (Tseitin)
the bit-blaster needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple


@dataclass
class Cnf:
    """A CNF formula: a clause list over ``num_vars`` variables."""

    num_vars: int = 0
    clauses: List[List[int]] = field(default_factory=list)

    def add_clause(self, literals: Sequence[int]) -> None:
        clause = list(literals)
        if not clause:
            # An empty clause makes the formula trivially unsatisfiable; keep
            # it so the SAT solver reports UNSAT rather than silently dropping
            # the contradiction.
            self.clauses.append(clause)
            return
        for literal in clause:
            if literal == 0:
                raise ValueError("literal 0 is not allowed")
            self.num_vars = max(self.num_vars, abs(literal))
        self.clauses.append(clause)


class CnfBuilder:
    """Fresh-variable factory plus Tseitin gate encodings.

    Besides accumulating clauses, the builder records *provenance*: every
    gate encoding registers its clauses as the definition of the gate's
    output variable (``var_defs``), and top-level assertions are kept in
    ``root_clauses``.  That split is what makes :meth:`cone` possible --
    extracting just the clauses a query literal transitively depends on,
    so a verdict-only check never pays for the rest of a long-lived
    builder's variable space.
    """

    def __init__(self) -> None:
        self.cnf = Cnf()
        self._next_var = 1
        #: gate output variable -> indices of the clauses defining it.
        self.var_defs: Dict[int, List[int]] = {}
        #: indices of top-level (always-asserted) clauses.
        self.root_clauses: List[int] = []
        # A dedicated constant-true variable keeps gate encodings uniform.
        self.true_var = self.new_var()
        self.cnf.add_clause([self.true_var])
        self.root_clauses.append(0)

    # -- variables -----------------------------------------------------------

    def new_var(self) -> int:
        var = self._next_var
        self._next_var += 1
        self.cnf.num_vars = max(self.cnf.num_vars, var)
        return var

    def new_vars(self, count: int) -> List[int]:
        return [self.new_var() for _ in range(count)]

    def const(self, value: bool) -> int:
        return self.true_var if value else -self.true_var

    # -- clauses --------------------------------------------------------------

    def add_clause(self, literals: Iterable[int]) -> None:
        self.cnf.add_clause(list(literals))

    def add_anchored_clause(
        self, anchors: Sequence[int], literals: Iterable[int]
    ) -> None:
        """Add a relational clause reachable through any of ``anchors``.

        For constraints that are not biconditional gate definitions (the
        div/rem relation), the clause must enter a query's cone whenever
        one of the anchor variables does.
        """

        index = len(self.cnf.clauses)
        self.cnf.add_clause(list(literals))
        for var in anchors:
            self.var_defs.setdefault(var, []).append(index)

    def _define(self, var: int, start: int) -> None:
        self.var_defs[var] = list(range(start, len(self.cnf.clauses)))

    # -- gate encodings --------------------------------------------------------

    def encode_and(self, inputs: Sequence[int]) -> int:
        """Return a literal equivalent to the conjunction of ``inputs``."""

        if not inputs:
            return self.const(True)
        if len(inputs) == 1:
            return inputs[0]
        out = self.new_var()
        start = len(self.cnf.clauses)
        for literal in inputs:
            self.add_clause([-out, literal])
        self.add_clause([out] + [-literal for literal in inputs])
        self._define(out, start)
        return out

    def encode_or(self, inputs: Sequence[int]) -> int:
        """Return a literal equivalent to the disjunction of ``inputs``."""

        if not inputs:
            return self.const(False)
        if len(inputs) == 1:
            return inputs[0]
        out = self.new_var()
        start = len(self.cnf.clauses)
        for literal in inputs:
            self.add_clause([out, -literal])
        self.add_clause([-out] + list(inputs))
        self._define(out, start)
        return out

    def encode_xor(self, left: int, right: int) -> int:
        """Return a literal equivalent to ``left xor right``."""

        out = self.new_var()
        start = len(self.cnf.clauses)
        self.add_clause([-out, left, right])
        self.add_clause([-out, -left, -right])
        self.add_clause([out, -left, right])
        self.add_clause([out, left, -right])
        self._define(out, start)
        return out

    def encode_iff(self, left: int, right: int) -> int:
        """Return a literal equivalent to ``left <-> right``."""

        return -self.encode_xor(left, right)

    def encode_ite(self, cond: int, then: int, orelse: int) -> int:
        """Return a literal equivalent to ``cond ? then : orelse``."""

        out = self.new_var()
        start = len(self.cnf.clauses)
        self.add_clause([-out, -cond, then])
        self.add_clause([-out, cond, orelse])
        self.add_clause([out, -cond, -then])
        self.add_clause([out, cond, -orelse])
        self._define(out, start)
        return out

    def encode_full_adder(self, a: int, b: int, carry_in: int) -> tuple[int, int]:
        """Return ``(sum, carry_out)`` literals for a full adder."""

        partial = self.encode_xor(a, b)
        total = self.encode_xor(partial, carry_in)
        carry_ab = self.encode_and([a, b])
        carry_pc = self.encode_and([partial, carry_in])
        carry_out = self.encode_or([carry_ab, carry_pc])
        return total, carry_out

    def assert_literal(self, literal: int) -> None:
        self.root_clauses.append(len(self.cnf.clauses))
        self.add_clause([literal])

    # -- cone extraction -------------------------------------------------------

    def cone(self, seed_vars: Iterable[int]) -> Tuple[List[int], Set[int]]:
        """The sub-CNF a query over ``seed_vars`` actually depends on.

        Returns ``(clause_indices, variables)``: every root (asserted)
        clause plus the transitive closure of gate definitions reachable
        from the seeds.  Every clause outside the cone is a biconditional
        definition of an unrelated gate, so any model of the cone extends
        to a model of the full CNF by evaluating the remaining gates
        bottom-up — SAT and UNSAT verdicts on the cone are verdicts on the
        full formula.  The clause list is sorted, so extraction is
        deterministic for a deterministic builder.
        """

        clauses = self.cnf.clauses
        var_defs = self.var_defs
        seen_clauses: Set[int] = set(self.root_clauses)
        seen_vars: Set[int] = set()
        stack: List[int] = []

        def visit(var: int) -> None:
            if var not in seen_vars:
                seen_vars.add(var)
                stack.append(var)

        for var in seed_vars:
            visit(var)
        for index in self.root_clauses:
            for literal in clauses[index]:
                visit(abs(literal))
        while stack:
            var = stack.pop()
            for index in var_defs.get(var, ()):
                if index not in seen_clauses:
                    seen_clauses.add(index)
                    for literal in clauses[index]:
                        visit(abs(literal))
        return sorted(seen_clauses), seen_vars
