"""Conjunctive normal form container used between bit-blasting and SAT.

Variables are positive integers; literals are non-zero integers where a
negative literal denotes the negation of the corresponding variable
(DIMACS convention).  :class:`CnfBuilder` hands out fresh variables and
accumulates clauses, and offers the handful of gate encodings (Tseitin)
the bit-blaster needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence


@dataclass
class Cnf:
    """A CNF formula: a clause list over ``num_vars`` variables."""

    num_vars: int = 0
    clauses: List[List[int]] = field(default_factory=list)

    def add_clause(self, literals: Sequence[int]) -> None:
        clause = list(literals)
        if not clause:
            # An empty clause makes the formula trivially unsatisfiable; keep
            # it so the SAT solver reports UNSAT rather than silently dropping
            # the contradiction.
            self.clauses.append(clause)
            return
        for literal in clause:
            if literal == 0:
                raise ValueError("literal 0 is not allowed")
            self.num_vars = max(self.num_vars, abs(literal))
        self.clauses.append(clause)


class CnfBuilder:
    """Fresh-variable factory plus Tseitin gate encodings."""

    def __init__(self) -> None:
        self.cnf = Cnf()
        self._next_var = 1
        # A dedicated constant-true variable keeps gate encodings uniform.
        self.true_var = self.new_var()
        self.cnf.add_clause([self.true_var])

    # -- variables -----------------------------------------------------------

    def new_var(self) -> int:
        var = self._next_var
        self._next_var += 1
        self.cnf.num_vars = max(self.cnf.num_vars, var)
        return var

    def new_vars(self, count: int) -> List[int]:
        return [self.new_var() for _ in range(count)]

    def const(self, value: bool) -> int:
        return self.true_var if value else -self.true_var

    # -- clauses --------------------------------------------------------------

    def add_clause(self, literals: Iterable[int]) -> None:
        self.cnf.add_clause(list(literals))

    # -- gate encodings --------------------------------------------------------

    def encode_and(self, inputs: Sequence[int]) -> int:
        """Return a literal equivalent to the conjunction of ``inputs``."""

        if not inputs:
            return self.const(True)
        if len(inputs) == 1:
            return inputs[0]
        out = self.new_var()
        for literal in inputs:
            self.add_clause([-out, literal])
        self.add_clause([out] + [-literal for literal in inputs])
        return out

    def encode_or(self, inputs: Sequence[int]) -> int:
        """Return a literal equivalent to the disjunction of ``inputs``."""

        if not inputs:
            return self.const(False)
        if len(inputs) == 1:
            return inputs[0]
        out = self.new_var()
        for literal in inputs:
            self.add_clause([out, -literal])
        self.add_clause([-out] + list(inputs))
        return out

    def encode_xor(self, left: int, right: int) -> int:
        """Return a literal equivalent to ``left xor right``."""

        out = self.new_var()
        self.add_clause([-out, left, right])
        self.add_clause([-out, -left, -right])
        self.add_clause([out, -left, right])
        self.add_clause([out, left, -right])
        return out

    def encode_iff(self, left: int, right: int) -> int:
        """Return a literal equivalent to ``left <-> right``."""

        return -self.encode_xor(left, right)

    def encode_ite(self, cond: int, then: int, orelse: int) -> int:
        """Return a literal equivalent to ``cond ? then : orelse``."""

        out = self.new_var()
        self.add_clause([-out, -cond, then])
        self.add_clause([-out, cond, orelse])
        self.add_clause([out, -cond, -then])
        self.add_clause([out, cond, -orelse])
        return out

    def encode_full_adder(self, a: int, b: int, carry_in: int) -> tuple[int, int]:
        """Return ``(sum, carry_out)`` literals for a full adder."""

        partial = self.encode_xor(a, b)
        total = self.encode_xor(partial, carry_in)
        carry_ab = self.encode_and([a, b])
        carry_pc = self.encode_and([partial, carry_in])
        carry_out = self.encode_or([carry_ab, carry_pc])
        return total, carry_out

    def assert_literal(self, literal: int) -> None:
        self.add_clause([literal])
