"""Tseitin bit-blasting of bit-vector/Boolean terms to CNF.

Every bit-vector term is mapped to a list of CNF literals, least significant
bit first; every Boolean term is mapped to a single literal.  The blaster
memoises on term identity so shared sub-DAGs are only encoded once.
"""

from __future__ import annotations

from typing import Dict, List

from repro.smt.cnf import CnfBuilder
from repro.smt.terms import Term

#: Process-wide encoding-cache counters, aggregated over every blaster in
#: the process.  A hit means a term's CNF encoding was reused instead of
#: re-blasted; on a campaign-lifetime shared solver (see
#: :func:`repro.smt.solver.all_equivalent`) hits accumulate *across
#: programs* because hash-consing makes identical subterms the same key.
BLAST_STATS = {"bitblast_hits": 0, "bitblast_misses": 0}


def reset_blast_stats() -> None:
    BLAST_STATS["bitblast_hits"] = 0
    BLAST_STATS["bitblast_misses"] = 0


class BitBlaster:
    """Translate terms to CNF using a shared :class:`CnfBuilder`."""

    def __init__(self) -> None:
        self.builder = CnfBuilder()
        self._bool_cache: Dict[Term, int] = {}
        self._bv_cache: Dict[Term, List[int]] = {}
        self._symbol_bits: Dict[str, List[int]] = {}
        self._bool_symbols: Dict[str, int] = {}

    # -- public API --------------------------------------------------------

    def assert_term(self, term: Term) -> None:
        """Assert a Boolean term as a top-level constraint."""

        if not term.sort.is_bool():
            raise TypeError("only Boolean terms can be asserted")
        self.builder.assert_literal(self.bool_literal(term))

    def bool_literal(self, term: Term) -> int:
        """Return the CNF literal representing a Boolean term."""

        cached = self._bool_cache.get(term)
        if cached is not None:
            BLAST_STATS["bitblast_hits"] += 1
            return cached
        BLAST_STATS["bitblast_misses"] += 1
        literal = self._encode_bool(term)
        self._bool_cache[term] = literal
        return literal

    def bv_bits(self, term: Term) -> List[int]:
        """Return the CNF literals (LSB first) representing a bit-vector term."""

        cached = self._bv_cache.get(term)
        if cached is not None:
            BLAST_STATS["bitblast_hits"] += 1
            return cached
        BLAST_STATS["bitblast_misses"] += 1
        bits = self._encode_bv(term)
        self._bv_cache[term] = bits
        return bits

    def symbol_bits(self) -> Dict[str, List[int]]:
        """Mapping of bit-vector symbol name -> CNF variables (LSB first)."""

        return dict(self._symbol_bits)

    def bool_symbol_vars(self) -> Dict[str, int]:
        """Mapping of Boolean symbol name -> CNF variable."""

        return dict(self._bool_symbols)

    # -- Boolean encoding -------------------------------------------------------

    def _encode_bool(self, term: Term) -> int:
        builder = self.builder
        op = term.op
        if op == "boolconst":
            return builder.const(bool(term.value))
        if op == "boolsym":
            literal = self._bool_symbols.get(term.name)
            if literal is None:
                literal = builder.new_var()
                self._bool_symbols[term.name] = literal
            return literal
        if op == "not":
            return -self.bool_literal(term.children[0])
        if op == "and":
            return builder.encode_and([self.bool_literal(child) for child in term.children])
        if op == "or":
            return builder.encode_or([self.bool_literal(child) for child in term.children])
        if op == "ite":
            cond, then, orelse = term.children
            return builder.encode_ite(
                self.bool_literal(cond),
                self.bool_literal(then),
                self.bool_literal(orelse),
            )
        if op == "eq":
            left, right = term.children
            if left.sort.is_bool():
                return builder.encode_iff(self.bool_literal(left), self.bool_literal(right))
            left_bits = self.bv_bits(left)
            right_bits = self.bv_bits(right)
            bit_eqs = [
                builder.encode_iff(a, b) for a, b in zip(left_bits, right_bits)
            ]
            return builder.encode_and(bit_eqs)
        if op in ("bvult", "bvule"):
            left_bits = self.bv_bits(term.children[0])
            right_bits = self.bv_bits(term.children[1])
            less = self._encode_less_than(left_bits, right_bits)
            if op == "bvult":
                return less
            bit_eqs = [builder.encode_iff(a, b) for a, b in zip(left_bits, right_bits)]
            equal = builder.encode_and(bit_eqs)
            return builder.encode_or([less, equal])
        raise ValueError(f"cannot bit-blast Boolean operator {op!r}")

    def _encode_less_than(self, left: List[int], right: List[int]) -> int:
        """Unsigned comparison, MSB-first ripple encoding."""

        builder = self.builder
        result = builder.const(False)
        # Walk from least to most significant: at each bit,
        # less = (~a & b) | ((a <-> b) & less_so_far)
        for a, b in zip(left, right):
            a_lt_b = builder.encode_and([-a, b])
            a_eq_b = builder.encode_iff(a, b)
            carry = builder.encode_and([a_eq_b, result])
            result = builder.encode_or([a_lt_b, carry])
        return result

    # -- bit-vector encoding ------------------------------------------------------

    def _encode_bv(self, term: Term) -> List[int]:
        builder = self.builder
        op = term.op
        width = term.width
        if op == "bvconst":
            value = term.value
            return [builder.const(bool((value >> index) & 1)) for index in range(width)]
        if op == "bvsym":
            bits = self._symbol_bits.get(term.name)
            if bits is None:
                bits = builder.new_vars(width)
                self._symbol_bits[term.name] = bits
            return bits
        if op in ("bvand", "bvor", "bvxor"):
            left = self.bv_bits(term.children[0])
            right = self.bv_bits(term.children[1])
            if op == "bvand":
                return [builder.encode_and([a, b]) for a, b in zip(left, right)]
            if op == "bvor":
                return [builder.encode_or([a, b]) for a, b in zip(left, right)]
            return [builder.encode_xor(a, b) for a, b in zip(left, right)]
        if op == "bvnot":
            return [-bit for bit in self.bv_bits(term.children[0])]
        if op == "bvadd":
            return self._encode_add(
                self.bv_bits(term.children[0]), self.bv_bits(term.children[1])
            )
        if op == "bvsub":
            # a - b == a + ~b + 1
            left = self.bv_bits(term.children[0])
            right = [-bit for bit in self.bv_bits(term.children[1])]
            return self._encode_add(left, right, carry_in=builder.const(True))
        if op == "bvmul":
            return self._encode_mul(
                self.bv_bits(term.children[0]), self.bv_bits(term.children[1])
            )
        if op in ("bvudiv", "bvurem"):
            return self._encode_divrem(term)
        if op == "bvshl":
            return self._encode_shift(term, left_shift=True)
        if op == "bvlshr":
            return self._encode_shift(term, left_shift=False)
        if op == "concat":
            bits: List[int] = []
            # Children are MSB first; bit lists are LSB first.
            for child in reversed(term.children):
                bits.extend(self.bv_bits(child))
            return bits
        if op == "extract":
            high, low = term.payload  # type: ignore[misc]
            return self.bv_bits(term.children[0])[low : high + 1]
        if op == "zero_ext":
            extra = term.payload  # type: ignore[assignment]
            return self.bv_bits(term.children[0]) + [builder.const(False)] * extra
        if op == "ite":
            cond = self.bool_literal(term.children[0])
            then = self.bv_bits(term.children[1])
            orelse = self.bv_bits(term.children[2])
            return [builder.encode_ite(cond, a, b) for a, b in zip(then, orelse)]
        raise ValueError(f"cannot bit-blast bit-vector operator {op!r}")

    def _encode_add(
        self, left: List[int], right: List[int], carry_in: int | None = None
    ) -> List[int]:
        builder = self.builder
        carry = carry_in if carry_in is not None else builder.const(False)
        out: List[int] = []
        for a, b in zip(left, right):
            total, carry = builder.encode_full_adder(a, b, carry)
            out.append(total)
        return out

    def _encode_mul(self, left: List[int], right: List[int]) -> List[int]:
        builder = self.builder
        width = len(left)
        accumulator = [builder.const(False)] * width
        for shift, multiplier_bit in enumerate(right):
            partial = [builder.const(False)] * shift
            for index in range(width - shift):
                partial.append(builder.encode_and([left[index], multiplier_bit]))
            accumulator = self._encode_add(accumulator, partial)
        return accumulator

    def _encode_shift(self, term: Term, left_shift: bool) -> List[int]:
        builder = self.builder
        value_bits = self.bv_bits(term.children[0])
        amount_bits = self.bv_bits(term.children[1])
        width = len(value_bits)
        # Barrel shifter over the bits of the shift amount.
        current = list(value_bits)
        for stage, amount_bit in enumerate(amount_bits):
            shift = 1 << stage
            if shift >= width:
                # Shifting by >= width zeroes the result when this bit is set.
                zero = builder.const(False)
                current = [
                    builder.encode_ite(amount_bit, zero, bit) for bit in current
                ]
                continue
            shifted: List[int] = []
            for index in range(width):
                if left_shift:
                    source = index - shift
                else:
                    source = index + shift
                if 0 <= source < width:
                    shifted.append(current[source])
                else:
                    shifted.append(builder.const(False))
            current = [
                builder.encode_ite(amount_bit, shifted[index], current[index])
                for index in range(width)
            ]
        return current

    def _encode_divrem(self, term: Term) -> List[int]:
        """Encode unsigned division/remainder via the multiplication relation.

        We introduce fresh quotient and remainder bits and assert
        ``dividend == divisor * quotient + remainder`` with
        ``remainder < divisor`` when the divisor is non-zero, and the
        SMT-LIB convention (``udiv x 0 = all-ones``, ``urem x 0 = x``) when
        it is zero.
        """

        builder = self.builder
        dividend = self.bv_bits(term.children[0])
        divisor = self.bv_bits(term.children[1])
        width = len(dividend)
        quotient = builder.new_vars(width)
        remainder = builder.new_vars(width)

        divisor_zero = builder.encode_and([-bit for bit in divisor])

        # product = divisor * quotient (low bits), overflow must be zero for
        # the relation to be exact; we additionally require the high part of
        # the 2*width multiplication to be zero.
        wide_divisor = divisor + [builder.const(False)] * width
        wide_quotient = quotient + [builder.const(False)] * width
        wide_product = self._encode_mul(wide_divisor, wide_quotient)
        wide_remainder = remainder + [builder.const(False)] * width
        wide_sum = self._encode_add(wide_product, wide_remainder)
        # Relation clauses apply only when the divisor is non-zero.  They
        # are anchored on the quotient/remainder variables: unlike gate
        # definitions they genuinely constrain those bits, so a cone that
        # reaches a div/rem result must carry the relation along.
        anchors = quotient + remainder
        for index in range(width):
            iff = builder.encode_iff(wide_sum[index], dividend[index])
            builder.add_anchored_clause(anchors, [divisor_zero, iff])
        for index in range(width, 2 * width):
            builder.add_anchored_clause(anchors, [divisor_zero, -wide_sum[index]])
        remainder_lt = self._encode_less_than(remainder, divisor)
        builder.add_anchored_clause(anchors, [divisor_zero, remainder_lt])

        # Division by zero: quotient = all ones, remainder = dividend.
        for bit in quotient:
            builder.add_anchored_clause(anchors, [-divisor_zero, bit])
        for rem_bit, div_bit in zip(remainder, dividend):
            builder.add_anchored_clause(
                anchors, [-divisor_zero, builder.encode_iff(rem_bit, div_bit)]
            )

        return quotient if term.op == "bvudiv" else remainder
