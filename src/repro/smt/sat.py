"""A CDCL SAT solver.

The solver implements the standard conflict-driven clause learning loop:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause learning and non-chronological
  backjumping,
* VSIDS-style activity based branching with periodic decay,
* Luby-sequence restarts, and
* learned-clause database reduction.

The solver is *incremental*: after a :meth:`SatSolver.solve` call the
instance stays usable -- callers can grow the variable space
(:meth:`SatSolver.ensure_num_vars`), add clauses
(:meth:`SatSolver.add_clauses`) and solve again, and the learned-clause
database, watch lists, variable activities and saved phases all carry over.
This is what makes blocking-clause model enumeration and repeated
equivalence queries cheap (see :mod:`repro.smt.solver`).

It is deliberately free of dependencies so it can serve as the decision
procedure underneath the bit-blaster in :mod:`repro.smt.bitblast`.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class SatResult:
    """Outcome of a SAT call: satisfiability plus a model when SAT.

    ``complete`` distinguishes a definitive answer from a search the
    ``max_conflicts`` budget cut short: an incomplete result with
    ``satisfiable=False`` means *unknown*, not UNSAT, and must not be
    treated as a proof of unsatisfiability.
    """

    satisfiable: bool
    assignment: Dict[int, bool]
    complete: bool = True

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.satisfiable


class _Clause:
    __slots__ = ("literals", "learned", "activity")

    def __init__(self, literals: List[int], learned: bool = False) -> None:
        self.literals = literals
        self.learned = learned
        self.activity = 0.0


def _default_phase(var: int) -> bool:
    """Initial saved phase for a variable: a deterministic hash parity.

    Uniformly false phases bias models towards all-zero values (masking
    truncation of high bits); uniformly true phases bias towards all-ones
    (masking dropped writes of small constants).  A fuzzer wants witnesses
    with *mixed* bit patterns, so phases start from a cheap multiplicative
    hash of the variable index -- deterministic, hence reproducible runs.
    """

    return bool((var * 2654435761) & 0x10000)


def _luby(index: int) -> int:
    """The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, ...)."""

    k = 1
    while True:
        if index == (1 << k) - 1:
            return 1 << (k - 1)
        if (1 << (k - 1)) <= index < (1 << k) - 1:
            return _luby(index - (1 << (k - 1)) + 1)
        k += 1


class SatSolver:
    """CDCL solver over clauses of non-zero integer literals."""

    def __init__(self, num_vars: int = 0, clauses: Sequence[Sequence[int]] = ()) -> None:
        self.num_vars = num_vars
        self.assignment: List[Optional[bool]] = [None] * (num_vars + 1)
        self.level: List[int] = [0] * (num_vars + 1)
        self.reason: List[Optional[_Clause]] = [None] * (num_vars + 1)
        self.activity: List[float] = [0.0] * (num_vars + 1)
        self.phase: List[bool] = [_default_phase(var) for var in range(num_vars + 1)]
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.clauses: List[_Clause] = []
        self.learned: List[_Clause] = []
        self.watches: Dict[int, List[_Clause]] = {}
        self.propagate_head = 0
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.clause_inc = 1.0
        self.empty_clause = False
        #: Count of completed ``solve`` invocations (perf instrumentation).
        self.solve_count = 0
        #: conflicts hit by the most recent :meth:`solve` (diagnostics).
        self.last_conflicts = 0
        #: VSIDS order: a lazy max-heap of ``(-activity, var)`` entries.
        #: Entries go stale when activities change or variables get
        #: assigned; :meth:`_decide` discards/refreshes them on pop.
        self._order: List[Tuple[float, int]] = [
            (0.0, var) for var in range(1, num_vars + 1)
        ]

        for clause in clauses:
            self._add_clause(list(clause), learned=False)

    # -- incremental interface ---------------------------------------------

    def ensure_num_vars(self, num_vars: int) -> None:
        """Grow the variable space to ``num_vars`` (no-op when smaller)."""

        if num_vars <= self.num_vars:
            return
        extra = num_vars - self.num_vars
        self.assignment.extend([None] * extra)
        self.level.extend([0] * extra)
        self.reason.extend([None] * extra)
        self.activity.extend([0.0] * extra)
        self.phase.extend(
            _default_phase(var) for var in range(self.num_vars + 1, num_vars + 1)
        )
        for var in range(self.num_vars + 1, num_vars + 1):
            heappush(self._order, (0.0, var))
        self.num_vars = num_vars

    def add_clauses(self, clauses: Sequence[Sequence[int]]) -> None:
        """Add input clauses after construction (incremental solving).

        The variable space grows automatically to cover every literal
        (mirroring :class:`~repro.smt.cnf.CnfBuilder`).  The solver
        backtracks to decision level 0 and rewinds unit propagation so
        clauses that are unit or conflicting under the level-0 assignment
        are discovered on the next :meth:`solve`.
        """

        clauses = [list(clause) for clause in clauses]
        highest = max((abs(lit) for clause in clauses for lit in clause), default=0)
        self.ensure_num_vars(highest)
        self._backtrack(0)
        self.propagate_head = 0
        for clause in clauses:
            self._add_clause(clause, learned=False)

    def add_clause(self, literals: Sequence[int]) -> None:
        """Add a single input clause (see :meth:`add_clauses`)."""

        self.add_clauses([literals])

    # -- construction -----------------------------------------------------

    def _add_clause(self, literals: List[int], learned: bool) -> Optional[_Clause]:
        if not literals:
            self.empty_clause = True
            return None
        # Deduplicate and drop tautologies in input clauses.
        if not learned:
            seen = set()
            out = []
            for literal in literals:
                if -literal in seen:
                    return None  # tautology, always satisfied
                if literal not in seen:
                    seen.add(literal)
                    out.append(literal)
            literals = out
        clause = _Clause(literals, learned)
        if len(literals) == 1:
            # Unit input clause: enqueue at level 0.
            literal = literals[0]
            value = self._value(literal)
            if value is False:
                self.empty_clause = True
            elif value is None:
                self._enqueue(literal, None)
            return clause
        target = self.learned if learned else self.clauses
        target.append(clause)
        self._watch(clause.literals[0], clause)
        self._watch(clause.literals[1], clause)
        return clause

    def _watch(self, literal: int, clause: _Clause) -> None:
        self.watches.setdefault(-literal, []).append(clause)

    # -- assignment helpers -------------------------------------------------

    def _value(self, literal: int) -> Optional[bool]:
        assigned = self.assignment[abs(literal)]
        if assigned is None:
            return None
        return assigned if literal > 0 else not assigned

    def _enqueue(self, literal: int, reason: Optional[_Clause]) -> None:
        var = abs(literal)
        self.assignment[var] = literal > 0
        self.level[var] = self.decision_level()
        self.reason[var] = reason
        self.trail.append(literal)

    def decision_level(self) -> int:
        return len(self.trail_lim)

    # -- propagation -----------------------------------------------------------

    def _propagate(self) -> Optional[_Clause]:
        # The innermost loop of the solver: locals and inlined truth checks
        # (instead of ``_value``) buy a significant constant factor.
        trail = self.trail
        watches = self.watches
        assignment = self.assignment
        while self.propagate_head < len(trail):
            literal = trail[self.propagate_head]
            self.propagate_head += 1
            watch_list = watches.get(literal)
            if not watch_list:
                continue
            index = 0
            while index < len(watch_list):
                clause = watch_list[index]
                literals = clause.literals
                # Ensure the falsified literal is in slot 1.
                if literals[0] == -literal:
                    literals[0], literals[1] = literals[1], literals[0]
                first = literals[0]
                first_value = assignment[first if first > 0 else -first]
                if first_value is not None and first_value == (first > 0):
                    index += 1
                    continue
                # Look for a new literal to watch.
                moved = False
                for other_index in range(2, len(literals)):
                    candidate = literals[other_index]
                    value = assignment[candidate if candidate > 0 else -candidate]
                    if value is None or value == (candidate > 0):
                        literals[1], literals[other_index] = candidate, literals[1]
                        watch_list[index] = watch_list[-1]
                        watch_list.pop()
                        watches.setdefault(-candidate, []).append(clause)
                        moved = True
                        break
                if moved:
                    continue
                # Clause is unit or conflicting.
                if first_value is not None:  # first is false: conflict
                    return clause
                self._enqueue(first, clause)
                index += 1
        return None

    # -- conflict analysis ---------------------------------------------------------

    def _bump_var(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for index in range(1, self.num_vars + 1):
                self.activity[index] *= 1e-100
            self.var_inc *= 1e-100
        if self.assignment[var] is None:
            # Assigned variables are re-queued on unassignment instead.
            heappush(self._order, (-self.activity[var], var))

    def _analyze(self, conflict: _Clause) -> tuple[List[int], int]:
        learned: List[int] = [0]  # slot 0 reserved for the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        literal = 0
        trail_index = len(self.trail) - 1
        clause: Optional[_Clause] = conflict

        while True:
            assert clause is not None
            for reason_literal in clause.literals:
                # Skip the literal this clause propagated (the resolvent pivot);
                # for the initial conflict clause nothing is skipped.
                if literal != 0 and reason_literal == -literal:
                    continue
                var = abs(reason_literal)
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self._bump_var(var)
                    if self.level[var] >= self.decision_level():
                        counter += 1
                    else:
                        learned.append(reason_literal)
            # Pick the next literal from the trail to resolve on.
            while not seen[abs(self.trail[trail_index])]:
                trail_index -= 1
            literal = -self.trail[trail_index]
            var = abs(literal)
            seen[var] = False
            counter -= 1
            trail_index -= 1
            if counter == 0:
                break
            clause = self.reason[var]

        learned[0] = literal
        if len(learned) == 1:
            backjump = 0
        else:
            # Backjump to the second highest decision level in the clause and
            # move the literal from that level to slot 1 so the two-watched
            # literal invariant holds for the learned clause (slot 0 is the
            # asserting literal, slot 1 the most recently falsified one).
            max_index = max(
                range(1, len(learned)), key=lambda idx: self.level[abs(learned[idx])]
            )
            learned[1], learned[max_index] = learned[max_index], learned[1]
            backjump = self.level[abs(learned[1])]
        return learned, backjump

    def _backtrack(self, target_level: int) -> None:
        while self.decision_level() > target_level:
            limit = self.trail_lim.pop()
            while len(self.trail) > limit:
                literal = self.trail.pop()
                var = abs(literal)
                self.phase[var] = self.assignment[var]  # save phase
                self.assignment[var] = None
                self.reason[var] = None
                heappush(self._order, (-self.activity[var], var))
        self.propagate_head = min(self.propagate_head, len(self.trail))

    # -- branching -----------------------------------------------------------------

    def _decide(self) -> Optional[int]:
        order = self._order
        activity = self.activity
        assignment = self.assignment
        while order:
            negated, var = heappop(order)
            if assignment[var] is not None:
                continue  # stale: assigned since queued (re-queued on unassign)
            if -negated != activity[var]:
                # Stale priority (activity bumped or rescaled): refresh.
                heappush(order, (-activity[var], var))
                continue
            return var if self.phase[var] else -var
        return None

    def _reduce_learned(self) -> None:
        if len(self.learned) < 2000:
            return
        self.learned.sort(key=lambda clause: clause.activity)
        keep = self.learned[len(self.learned) // 2 :]
        removed = set(id(clause) for clause in self.learned[: len(self.learned) // 2])
        # Only drop clauses that are not currently a reason for an assignment.
        locked = set(id(reason) for reason in self.reason if reason is not None)
        survivors = [
            clause
            for clause in self.learned
            if id(clause) not in removed or id(clause) in locked
        ]
        dropped = removed - locked
        if not dropped:
            return
        self.learned = survivors
        for watch_list in self.watches.values():
            watch_list[:] = [clause for clause in watch_list if id(clause) not in dropped]
        del keep

    # -- main loop -------------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = (), max_conflicts: Optional[int] = None) -> SatResult:
        """Run the CDCL loop, optionally under ``assumptions``.

        The call is re-entrant: level-0 state, learned clauses, activities
        and phases persist, so repeated calls (with clauses added in
        between) pick up where the previous search left off.  Assumptions
        hold only for this call -- each assumption owns one decision level,
        so a backjump below an assumption level simply re-applies it.
        """

        self.solve_count += 1
        self.last_conflicts = 0
        assumptions = list(assumptions)
        self.ensure_num_vars(max((abs(lit) for lit in assumptions), default=0))
        if self.empty_clause:
            return SatResult(False, {})

        # Restart the search from level 0 (a previous call may have left a
        # full assignment or stale assumptions on the trail).
        self._backtrack(0)

        conflict_budget = max_conflicts
        conflicts_total = 0
        restart_index = 1
        restart_limit = 32 * _luby(restart_index)
        conflicts_since_restart = 0

        # Level-0 propagation of unit input clauses.
        if self._propagate() is not None:
            self.empty_clause = True  # conflict at level 0 is permanent
            return SatResult(False, {})

        while True:
            conflict = self._propagate()
            if conflict is not None:
                conflicts_total += 1
                self.last_conflicts = conflicts_total
                conflicts_since_restart += 1
                if self.decision_level() == 0:
                    self.empty_clause = True  # permanently UNSAT
                    return SatResult(False, {})
                learned, backjump_level = self._analyze(conflict)
                self._backtrack(backjump_level)
                clause = _Clause(learned, learned=True)
                clause.activity = self.clause_inc
                if len(learned) > 1:
                    self.learned.append(clause)
                    self._watch(learned[0], clause)
                    self._watch(learned[1], clause)
                self._enqueue(learned[0], clause if len(learned) > 1 else None)
                self.var_inc /= self.var_decay
                if conflict_budget is not None and conflicts_total >= conflict_budget:
                    # Budget exhausted: the answer is unknown, not UNSAT.
                    return SatResult(False, {}, complete=False)
                if conflicts_since_restart >= restart_limit:
                    conflicts_since_restart = 0
                    restart_index += 1
                    restart_limit = 32 * _luby(restart_index)
                    self._backtrack(0)
                self._reduce_learned()
                continue

            # Assumption ``i`` owns decision level ``i + 1``; after any
            # backjump the not-yet-established assumptions are re-applied.
            if self.decision_level() < len(assumptions):
                literal = assumptions[self.decision_level()]
                value = self._value(literal)
                if value is True:
                    # Already implied: open a dummy level so the indexing
                    # between assumptions and levels stays aligned.
                    self.trail_lim.append(len(self.trail))
                    continue
                if value is False:
                    # UNSAT under these assumptions (not permanently).
                    return SatResult(False, {})
                self.trail_lim.append(len(self.trail))
                self._enqueue(literal, None)
                continue

            decision = self._decide()
            if decision is None:
                model = {
                    var: bool(self.assignment[var])
                    for var in range(1, self.num_vars + 1)
                    if self.assignment[var] is not None
                }
                return SatResult(True, model)
            self.trail_lim.append(len(self.trail))
            self._enqueue(decision, None)


def solve_cnf(num_vars: int, clauses: Sequence[Sequence[int]]) -> SatResult:
    """Convenience helper: solve a clause list from scratch."""

    return SatSolver(num_vars, clauses).solve()
