"""A CDCL SAT solver.

The solver implements the standard conflict-driven clause learning loop:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause learning and non-chronological
  backjumping,
* VSIDS-style activity based branching with periodic decay,
* Luby-sequence restarts, and
* learned-clause database reduction.

It is deliberately free of dependencies so it can serve as the decision
procedure underneath the bit-blaster in :mod:`repro.smt.bitblast`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


@dataclass
class SatResult:
    """Outcome of a SAT call: satisfiability plus a model when SAT."""

    satisfiable: bool
    assignment: Dict[int, bool]

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.satisfiable


class _Clause:
    __slots__ = ("literals", "learned", "activity")

    def __init__(self, literals: List[int], learned: bool = False) -> None:
        self.literals = literals
        self.learned = learned
        self.activity = 0.0


def _luby(index: int) -> int:
    """The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, ...)."""

    k = 1
    while True:
        if index == (1 << k) - 1:
            return 1 << (k - 1)
        if (1 << (k - 1)) <= index < (1 << k) - 1:
            return _luby(index - (1 << (k - 1)) + 1)
        k += 1


class SatSolver:
    """CDCL solver over clauses of non-zero integer literals."""

    def __init__(self, num_vars: int, clauses: Sequence[Sequence[int]]) -> None:
        self.num_vars = num_vars
        self.assignment: List[Optional[bool]] = [None] * (num_vars + 1)
        self.level: List[int] = [0] * (num_vars + 1)
        self.reason: List[Optional[_Clause]] = [None] * (num_vars + 1)
        self.activity: List[float] = [0.0] * (num_vars + 1)
        self.phase: List[bool] = [False] * (num_vars + 1)
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.clauses: List[_Clause] = []
        self.learned: List[_Clause] = []
        self.watches: Dict[int, List[_Clause]] = {}
        self.propagate_head = 0
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.clause_inc = 1.0
        self.empty_clause = False

        for clause in clauses:
            self._add_clause(list(clause), learned=False)

    # -- construction -----------------------------------------------------

    def _add_clause(self, literals: List[int], learned: bool) -> Optional[_Clause]:
        if not literals:
            self.empty_clause = True
            return None
        # Deduplicate and drop tautologies in input clauses.
        if not learned:
            seen = set()
            out = []
            for literal in literals:
                if -literal in seen:
                    return None  # tautology, always satisfied
                if literal not in seen:
                    seen.add(literal)
                    out.append(literal)
            literals = out
        clause = _Clause(literals, learned)
        if len(literals) == 1:
            # Unit input clause: enqueue at level 0.
            literal = literals[0]
            value = self._value(literal)
            if value is False:
                self.empty_clause = True
            elif value is None:
                self._enqueue(literal, None)
            return clause
        target = self.learned if learned else self.clauses
        target.append(clause)
        self._watch(clause.literals[0], clause)
        self._watch(clause.literals[1], clause)
        return clause

    def _watch(self, literal: int, clause: _Clause) -> None:
        self.watches.setdefault(-literal, []).append(clause)

    # -- assignment helpers -------------------------------------------------

    def _value(self, literal: int) -> Optional[bool]:
        assigned = self.assignment[abs(literal)]
        if assigned is None:
            return None
        return assigned if literal > 0 else not assigned

    def _enqueue(self, literal: int, reason: Optional[_Clause]) -> None:
        var = abs(literal)
        self.assignment[var] = literal > 0
        self.level[var] = self.decision_level()
        self.reason[var] = reason
        self.trail.append(literal)

    def decision_level(self) -> int:
        return len(self.trail_lim)

    # -- propagation -----------------------------------------------------------

    def _propagate(self) -> Optional[_Clause]:
        while self.propagate_head < len(self.trail):
            literal = self.trail[self.propagate_head]
            self.propagate_head += 1
            watch_list = self.watches.get(literal, [])
            index = 0
            while index < len(watch_list):
                clause = watch_list[index]
                literals = clause.literals
                # Ensure the falsified literal is in slot 1.
                if literals[0] == -literal:
                    literals[0], literals[1] = literals[1], literals[0]
                first = literals[0]
                if self._value(first) is True:
                    index += 1
                    continue
                # Look for a new literal to watch.
                moved = False
                for other_index in range(2, len(literals)):
                    candidate = literals[other_index]
                    if self._value(candidate) is not False:
                        literals[1], literals[other_index] = candidate, literals[1]
                        watch_list[index] = watch_list[-1]
                        watch_list.pop()
                        self._watch(candidate, clause)
                        moved = True
                        break
                if moved:
                    continue
                # Clause is unit or conflicting.
                if self._value(first) is False:
                    return clause
                self._enqueue(first, clause)
                index += 1
        return None

    # -- conflict analysis ---------------------------------------------------------

    def _bump_var(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for index in range(1, self.num_vars + 1):
                self.activity[index] *= 1e-100
            self.var_inc *= 1e-100

    def _analyze(self, conflict: _Clause) -> tuple[List[int], int]:
        learned: List[int] = [0]  # slot 0 reserved for the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        literal = 0
        trail_index = len(self.trail) - 1
        clause: Optional[_Clause] = conflict

        while True:
            assert clause is not None
            for reason_literal in clause.literals:
                # Skip the literal this clause propagated (the resolvent pivot);
                # for the initial conflict clause nothing is skipped.
                if literal != 0 and reason_literal == -literal:
                    continue
                var = abs(reason_literal)
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self._bump_var(var)
                    if self.level[var] >= self.decision_level():
                        counter += 1
                    else:
                        learned.append(reason_literal)
            # Pick the next literal from the trail to resolve on.
            while not seen[abs(self.trail[trail_index])]:
                trail_index -= 1
            literal = -self.trail[trail_index]
            var = abs(literal)
            seen[var] = False
            counter -= 1
            trail_index -= 1
            if counter == 0:
                break
            clause = self.reason[var]

        learned[0] = literal
        if len(learned) == 1:
            backjump = 0
        else:
            # Backjump to the second highest decision level in the clause and
            # move the literal from that level to slot 1 so the two-watched
            # literal invariant holds for the learned clause (slot 0 is the
            # asserting literal, slot 1 the most recently falsified one).
            max_index = max(
                range(1, len(learned)), key=lambda idx: self.level[abs(learned[idx])]
            )
            learned[1], learned[max_index] = learned[max_index], learned[1]
            backjump = self.level[abs(learned[1])]
        return learned, backjump

    def _backtrack(self, target_level: int) -> None:
        while self.decision_level() > target_level:
            limit = self.trail_lim.pop()
            while len(self.trail) > limit:
                literal = self.trail.pop()
                var = abs(literal)
                self.phase[var] = self.assignment[var]  # save phase
                self.assignment[var] = None
                self.reason[var] = None
        self.propagate_head = min(self.propagate_head, len(self.trail))

    # -- branching -----------------------------------------------------------------

    def _decide(self) -> Optional[int]:
        best_var = 0
        best_activity = -1.0
        for var in range(1, self.num_vars + 1):
            if self.assignment[var] is None and self.activity[var] > best_activity:
                best_var = var
                best_activity = self.activity[var]
        if best_var == 0:
            return None
        return best_var if self.phase[best_var] else -best_var

    def _reduce_learned(self) -> None:
        if len(self.learned) < 2000:
            return
        self.learned.sort(key=lambda clause: clause.activity)
        keep = self.learned[len(self.learned) // 2 :]
        removed = set(id(clause) for clause in self.learned[: len(self.learned) // 2])
        # Only drop clauses that are not currently a reason for an assignment.
        locked = set(id(reason) for reason in self.reason if reason is not None)
        survivors = [
            clause
            for clause in self.learned
            if id(clause) not in removed or id(clause) in locked
        ]
        dropped = removed - locked
        if not dropped:
            return
        self.learned = survivors
        for watch_list in self.watches.values():
            watch_list[:] = [clause for clause in watch_list if id(clause) not in dropped]
        del keep

    # -- main loop -------------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = (), max_conflicts: Optional[int] = None) -> SatResult:
        """Run the CDCL loop, optionally under ``assumptions``."""

        if self.empty_clause:
            return SatResult(False, {})

        conflict_budget = max_conflicts
        conflicts_total = 0
        restart_index = 1
        restart_limit = 32 * _luby(restart_index)
        conflicts_since_restart = 0

        # Level-0 propagation of unit input clauses.
        if self._propagate() is not None:
            return SatResult(False, {})

        assumption_iter = list(assumptions)

        while True:
            conflict = self._propagate()
            if conflict is not None:
                conflicts_total += 1
                conflicts_since_restart += 1
                if self.decision_level() == 0:
                    return SatResult(False, {})
                learned, backjump_level = self._analyze(conflict)
                self._backtrack(backjump_level)
                clause = _Clause(learned, learned=True)
                clause.activity = self.clause_inc
                if len(learned) > 1:
                    self.learned.append(clause)
                    self._watch(learned[0], clause)
                    self._watch(learned[1], clause)
                self._enqueue(learned[0], clause if len(learned) > 1 else None)
                self.var_inc /= self.var_decay
                if conflict_budget is not None and conflicts_total >= conflict_budget:
                    # Budget exhausted: report UNSAT-unknown conservatively as
                    # unsatisfiable=False with empty model; callers treat a
                    # missing model as "unknown".
                    return SatResult(False, {})
                if conflicts_since_restart >= restart_limit:
                    conflicts_since_restart = 0
                    restart_index += 1
                    restart_limit = 32 * _luby(restart_index)
                    self._backtrack(0)
                self._reduce_learned()
                continue

            # Apply pending assumptions as pseudo-decisions.
            if assumption_iter:
                literal = assumption_iter[0]
                value = self._value(literal)
                if value is True:
                    assumption_iter.pop(0)
                    continue
                if value is False:
                    return SatResult(False, {})
                assumption_iter.pop(0)
                self.trail_lim.append(len(self.trail))
                self._enqueue(literal, None)
                continue

            decision = self._decide()
            if decision is None:
                model = {
                    var: bool(self.assignment[var])
                    for var in range(1, self.num_vars + 1)
                    if self.assignment[var] is not None
                }
                return SatResult(True, model)
            self.trail_lim.append(len(self.trail))
            self._enqueue(decision, None)


def solve_cnf(num_vars: int, clauses: Sequence[Sequence[int]]) -> SatResult:
    """Convenience helper: solve a clause list from scratch."""

    return SatSolver(num_vars, clauses).solve()
