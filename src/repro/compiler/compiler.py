"""The compiler facade: front end + mid end pipelines.

:class:`P4Compiler` assembles the default pass pipeline (the one ``p4test``
exercises in the paper) and runs it through the :class:`PassManager`.
Back ends (:mod:`repro.targets`) consume the resulting mid-end program and
apply their own target-specific passes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.compiler.frontend import (
    FRONTEND_PASSES,
    TypeChecking,
    TypeCheckingPost,
)
from repro.compiler.midend import MIDEND_PASSES
from repro.compiler.options import CompilerOptions
from repro.compiler.pass_manager import CompilationResult, PassManager
from repro.compiler.passes import CompilerPass
from repro.p4 import ast
from repro.p4.parser import parse_program


class P4Compiler:
    """Compile P4 programs through the front- and mid-end pipelines."""

    def __init__(self, options: Optional[CompilerOptions] = None) -> None:
        self.options = options or CompilerOptions()

    # -- pipeline construction ------------------------------------------------

    def passes(self) -> List[CompilerPass]:
        """The default pipeline: front end, post-check, then the mid end."""

        pipeline: List[CompilerPass] = [cls() for cls in FRONTEND_PASSES]
        pipeline.append(TypeCheckingPost())
        pipeline.extend(cls() for cls in MIDEND_PASSES)
        return pipeline

    # -- compilation ------------------------------------------------------------

    def compile(self, program: Union[str, ast.Program]) -> CompilationResult:
        """Compile a program (AST or source text) and return all snapshots."""

        if isinstance(program, str):
            program = parse_program(program)
        manager = PassManager(self.passes(), self.options)
        return manager.run(program)


def compile_front_midend(
    program: Union[str, ast.Program], options: Optional[CompilerOptions] = None
) -> CompilationResult:
    """Convenience wrapper: compile with the default pipeline."""

    return P4Compiler(options).compile(program)
