"""The compiler facade: front end + mid end pipelines.

:class:`P4Compiler` assembles the default pass pipeline (the one ``p4test``
exercises in the paper) and runs it through the :class:`PassManager`.
Back ends (:mod:`repro.targets`) consume the resulting mid-end program and
apply their own target-specific passes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Union

from repro.compiler.bugs import BUG_CATALOG, LOCATION_BACKEND
from repro.compiler.frontend import (
    FRONTEND_PASSES,
    TypeChecking,
    TypeCheckingPost,
)
from repro.compiler.midend import MIDEND_PASSES
from repro.compiler.options import CompilerOptions
from repro.compiler.pass_manager import CompilationResult, PassManager
from repro.compiler.passes import CompilerPass
from repro.p4 import ast
from repro.p4.parser import parse_program


class P4Compiler:
    """Compile P4 programs through the front- and mid-end pipelines."""

    def __init__(self, options: Optional[CompilerOptions] = None) -> None:
        self.options = options or CompilerOptions()

    # -- pipeline construction ------------------------------------------------

    def passes(self) -> List[CompilerPass]:
        """The default pipeline: front end, post-check, then the mid end."""

        pipeline: List[CompilerPass] = [cls() for cls in FRONTEND_PASSES]
        pipeline.append(TypeCheckingPost())
        pipeline.extend(cls() for cls in MIDEND_PASSES)
        return pipeline

    # -- compilation ------------------------------------------------------------

    def compile(self, program: Union[str, ast.Program]) -> CompilationResult:
        """Compile a program (AST or source text) and return all snapshots."""

        if isinstance(program, str):
            program = parse_program(program)
        manager = PassManager(self.passes(), self.options)
        return manager.run(program)


def compile_front_midend(
    program: Union[str, ast.Program], options: Optional[CompilerOptions] = None
) -> CompilationResult:
    """Convenience wrapper: compile with the default pipeline."""

    return P4Compiler(options).compile(program)


# ----------------------------------------------------------------------
# Shared-prefix compilation memo
# ----------------------------------------------------------------------
#
# Every platform of a campaign runs the same front/mid-end prefix over the
# same generated program: the open-toolchain unit to validate it, and each
# closed back end before its own lowering.  The prefix is a pure function
# of (source, the prefix-relevant enabled defects, skipped passes, the
# emit flag) — back ends never influence it (no pass reads
# ``options.target``, and backend-located defects are consulted only after
# the prefix, in :mod:`repro.targets`) — so the compilation is memoised
# process-wide and the resulting snapshots are shared by every consumer.

_PREFIX_MEMO: "OrderedDict[tuple, CompilationResult]" = OrderedDict()
_PREFIX_MEMO_LIMIT = 32
_PREFIX_STATS = {"prefix_hits": 0, "prefix_misses": 0}


def _prefix_relevant_bugs(enabled_bugs: Iterable[str]) -> FrozenSet[str]:
    """The subset of enabled defects that can affect the front/mid end.

    Backend-located defects only fire in the targets' own lowering, so two
    option sets that differ only there share a prefix.  Identifiers not in
    the catalog are conservatively kept in the key.
    """

    return frozenset(
        bug_id
        for bug_id in enabled_bugs
        if (entry := BUG_CATALOG.get(bug_id)) is None
        or entry.location != LOCATION_BACKEND
    )


def compile_prefix(
    program: ast.Program, source: str, options: CompilerOptions
) -> CompilationResult:
    """Compile the shared front/mid-end prefix, memoised process-wide.

    ``source`` must be the emitted source of ``program`` (the generator
    stage already has it): the string is the program's identity, exactly
    as in the validator's snapshot caches.  The returned result is shared
    between callers and must be treated as **read-only** — the validator,
    the backend lowerings and the test generator all only read it.  Note
    ``result.options`` records the options of whichever caller compiled
    first; consumers that care about backend defect flags (the targets)
    keep using their own options, never the result's.
    """

    key = (
        source,
        _prefix_relevant_bugs(options.enabled_bugs),
        frozenset(options.skip_passes),
        options.emit_after_each_pass,
    )
    cached = _PREFIX_MEMO.get(key)
    if cached is not None:
        _PREFIX_MEMO.move_to_end(key)
        _PREFIX_STATS["prefix_hits"] += 1
        return cached
    _PREFIX_STATS["prefix_misses"] += 1
    result = P4Compiler(options).compile(program.clone())
    _PREFIX_MEMO[key] = result
    while len(_PREFIX_MEMO) > _PREFIX_MEMO_LIMIT:
        _PREFIX_MEMO.popitem(last=False)
    return result


def prefix_cache_stats() -> Dict[str, int]:
    """Hit/miss counters (and an entry gauge) for the prefix memo."""

    return dict(_PREFIX_STATS, prefix_entries=len(_PREFIX_MEMO))


def clear_prefix_cache() -> None:
    """Drop the prefix memo (tests, benchmarks, pool recycling)."""

    _PREFIX_MEMO.clear()
    _PREFIX_STATS["prefix_hits"] = 0
    _PREFIX_STATS["prefix_misses"] = 0
