"""Compiler configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Set


@dataclass
class CompilerOptions:
    """Options controlling a compilation run.

    ``enabled_bugs`` lists seeded-bug identifiers from
    :data:`repro.compiler.bugs.BUG_CATALOG` that should be active during this
    run.  ``skip_passes`` supports the Different-Optimization-Levels style of
    testing (paper §2.1) by selectively omitting passes.
    """

    enabled_bugs: Set[str] = field(default_factory=set)
    skip_passes: Set[str] = field(default_factory=set)
    #: Emit a P4 snapshot after every pass (the p4test ``--top4`` behaviour).
    emit_after_each_pass: bool = True
    #: Target name; back ends use it to pick their own pass list.
    target: str = "bmv2"

    def bug_enabled(self, bug_id: str) -> bool:
        return bug_id in self.enabled_bugs

    def with_bugs(self, bug_ids: Iterable[str]) -> "CompilerOptions":
        """Return a copy of the options with additional bugs enabled."""

        return CompilerOptions(
            enabled_bugs=set(self.enabled_bugs) | set(bug_ids),
            skip_passes=set(self.skip_passes),
            emit_after_each_pass=self.emit_after_each_pass,
            target=self.target,
        )
