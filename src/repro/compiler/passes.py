"""Pass infrastructure shared by the front end, mid end and back ends."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional

from repro.compiler.coverage import CoverageMap
from repro.compiler.options import CompilerOptions
from repro.p4 import ast


@dataclass
class PassContext:
    """State shared between passes of one compilation run."""

    options: CompilerOptions
    #: Free-form notes passes leave for later passes (e.g. feature flags).
    notes: Dict[str, object] = field(default_factory=dict)
    #: Which passes fired and which rewrite rules matched during this run.
    coverage: CoverageMap = field(default_factory=CoverageMap)
    _name_counter: Iterator[int] = field(default_factory=lambda: itertools.count())

    def fresh_name(self, prefix: str) -> str:
        """Return a fresh variable name with the given prefix."""

        return f"{prefix}_{next(self._name_counter)}"

    def bug_enabled(self, bug_id: str) -> bool:
        return self.options.bug_enabled(bug_id)

    def record_rule(self, pass_name: str, rule: str, count: int = 1) -> None:
        """Record one firing of a named rewrite rule of ``pass_name``."""

        self.coverage.record_rule(pass_name, rule, count)

    def rule_recorder(self, pass_name: str) -> Callable[..., None]:
        """A ``recorder(rule, count=1)`` closure for helpers without a context.

        Passes hand this to their visitor/rewriter helper classes so rewrite
        sites can count rule hits without threading the whole context through.
        """

        def record(rule: str, count: int = 1) -> None:
            self.coverage.record_rule(pass_name, rule, count)

        return record


def null_recorder(rule: str, count: int = 1) -> None:
    """Recorder that drops everything (for helpers run outside a pipeline)."""


class CompilerPass:
    """Base class for compiler passes.

    A pass takes a program and returns a (possibly identical) program.  It
    must not mutate its input: the pass manager keeps the previous snapshot
    for translation validation.
    """

    #: Human-readable pass name (matches the names used in bug reports).
    name: str = "UnnamedPass"
    #: Where the pass lives; used for bug localisation statistics.
    location: str = "front_end"

    def run(self, program: ast.Program, context: PassContext) -> ast.Program:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"
