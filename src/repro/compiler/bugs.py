"""Catalog of seeded compiler defects.

The real Gauntlet found 78 historical bugs in p4c and the Tofino compiler.
Those code bases (and their bug history) are not available to this offline
reproduction, so the compiler instead carries an explicit catalog of seeded
defects -- one per root-cause class the paper describes -- that can be
switched on individually.  Each entry records:

* where the defect lives (front end / mid end / back end -- Table 3),
* how it manifests (crash vs. semantic -- Table 2),
* which paper example it is modelled on (Figure 5a-5f and §7.2), and
* the language features a program must use to trigger it, which the random
  program generator uses to bias its output.

The defects themselves are implemented inside the corresponding compiler
passes (see :mod:`repro.compiler.frontend`, :mod:`repro.compiler.midend`
and :mod:`repro.targets`); this module is only the registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


#: Bug manifestation kinds (paper §2.1).
KIND_CRASH = "crash"
KIND_SEMANTIC = "semantic"

#: Bug locations (paper Table 3).
LOCATION_FRONTEND = "front_end"
LOCATION_MIDEND = "mid_end"
LOCATION_BACKEND = "back_end"

#: Platforms.  ``p4c``/``bmv2``/``tofino`` are the paper's Table 2
#: platforms; ``ebpf`` is the kernel-extension back end added after the
#: registry generalised (see ``src/repro/targets/README.md``).
PLATFORM_P4C = "p4c"
PLATFORM_BMV2 = "bmv2"
PLATFORM_TOFINO = "tofino"
PLATFORM_EBPF = "ebpf"


@dataclass(frozen=True)
class SeededBug:
    """A single switchable compiler defect."""

    bug_id: str
    description: str
    kind: str
    location: str
    platform: str
    pass_name: str
    paper_reference: str
    #: Language features a program needs for the bug to be reachable.
    trigger_features: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in (KIND_CRASH, KIND_SEMANTIC):
            raise ValueError(f"invalid bug kind {self.kind!r}")
        if self.location not in (LOCATION_FRONTEND, LOCATION_MIDEND, LOCATION_BACKEND):
            raise ValueError(f"invalid bug location {self.location!r}")


def _catalog(entries: List[SeededBug]) -> Dict[str, SeededBug]:
    catalog: Dict[str, SeededBug] = {}
    for entry in entries:
        if entry.bug_id in catalog:
            raise ValueError(f"duplicate bug id {entry.bug_id!r}")
        catalog[entry.bug_id] = entry
    return catalog


BUG_CATALOG: Dict[str, SeededBug] = _catalog(
    [
        # ------------------------------------------------------------------
        # P4C front-end defects
        # ------------------------------------------------------------------
        SeededBug(
            bug_id="def_use_return_clears_scope",
            description=(
                "SimplifyDefUse drops writes to inout parameters when the "
                "function body contains a return statement, clearing the "
                "caller's definitions and crashing a later pass"
            ),
            kind=KIND_CRASH,
            location=LOCATION_FRONTEND,
            platform=PLATFORM_P4C,
            pass_name="SimplifyDefUse",
            paper_reference="Figure 5a",
            trigger_features=("function", "inout_param", "return"),
        ),
        SeededBug(
            bug_id="typecheck_shift_width_crash",
            description=(
                "The type checker crashes when inferring the width of a "
                "shift whose left operand is a width-less literal and whose "
                "shift amount is not compile-time known"
            ),
            kind=KIND_CRASH,
            location=LOCATION_FRONTEND,
            platform=PLATFORM_P4C,
            pass_name="TypeChecking",
            paper_reference="Figure 5b",
            trigger_features=("shift", "widthless_literal"),
        ),
        SeededBug(
            bug_id="strength_reduction_negative_slice",
            description=(
                "StrengthReduction rewrites a shift into a slice without a "
                "safety check, producing a negative slice index that makes "
                "the type checker reject a legal program"
            ),
            kind=KIND_CRASH,
            location=LOCATION_FRONTEND,
            platform=PLATFORM_P4C,
            pass_name="StrengthReduction",
            paper_reference="Figure 5c",
            trigger_features=("shift", "comparison"),
        ),
        SeededBug(
            bug_id="inline_missing_function",
            description=(
                "InlineFunctions fails to inline calls nested inside binary "
                "expressions; later passes assume all calls are gone and "
                "crash on the leftover call node"
            ),
            kind=KIND_CRASH,
            location=LOCATION_FRONTEND,
            platform=PLATFORM_P4C,
            pass_name="InlineFunctions",
            paper_reference="§7.2 snowball effects",
            trigger_features=("function", "nested_call"),
        ),
        SeededBug(
            bug_id="side_effect_argument_order",
            description=(
                "Copy-in of call arguments is performed right-to-left "
                "instead of left-to-right, so earlier arguments observe "
                "side effects of later ones"
            ),
            kind=KIND_SEMANTIC,
            location=LOCATION_FRONTEND,
            platform=PLATFORM_P4C,
            pass_name="InlineFunctions",
            paper_reference="§5.2 copy-in/copy-out",
            trigger_features=("function", "multiple_args"),
        ),
        SeededBug(
            bug_id="inline_alias_copy_out",
            description=(
                "Function inlining substitutes argument l-values textually "
                "instead of introducing copy-in/copy-out temporaries, so "
                "aliased inout arguments observe partial updates"
            ),
            kind=KIND_SEMANTIC,
            location=LOCATION_FRONTEND,
            platform=PLATFORM_P4C,
            pass_name="InlineFunctions",
            paper_reference="§7.2 handling side effects",
            trigger_features=("function", "inout_param"),
        ),
        SeededBug(
            bug_id="exit_ignores_copy_out",
            description=(
                "RemoveActionParameters moves assignments after an exit "
                "statement, assuming exit skips copy-out of inout/out "
                "action parameters"
            ),
            kind=KIND_SEMANTIC,
            location=LOCATION_FRONTEND,
            platform=PLATFORM_P4C,
            pass_name="RemoveActionParameters",
            paper_reference="Figure 5f",
            trigger_features=("action_param", "exit"),
        ),
        SeededBug(
            bug_id="action_param_slice_drop",
            description=(
                "RemoveActionParameters deletes an assignment to a slice of "
                "a variable that is also passed (as a different slice) as "
                "an inout argument, assuming the whole variable is overwritten"
            ),
            kind=KIND_SEMANTIC,
            location=LOCATION_FRONTEND,
            platform=PLATFORM_P4C,
            pass_name="RemoveActionParameters",
            paper_reference="Figure 5d",
            trigger_features=("action_param", "slice"),
        ),
        SeededBug(
            bug_id="parser_loop_unroll_crash",
            description=(
                "The parser-graph analysis crashes with a stack overflow "
                "when the parser state graph contains a cycle"
            ),
            kind=KIND_CRASH,
            location=LOCATION_FRONTEND,
            platform=PLATFORM_P4C,
            pass_name="ParserGraphs",
            paper_reference="§7.1 derivative bugs",
            trigger_features=("parser", "parser_cycle"),
        ),
        # ------------------------------------------------------------------
        # P4C mid-end defects
        # ------------------------------------------------------------------
        SeededBug(
            bug_id="constant_folding_no_mask",
            description=(
                "ConstantFolding computes additions without reducing the "
                "result modulo the bit width, so folded constants disagree "
                "with run-time wrap-around arithmetic"
            ),
            kind=KIND_SEMANTIC,
            location=LOCATION_MIDEND,
            platform=PLATFORM_P4C,
            pass_name="ConstantFolding",
            paper_reference="§7.2 (miscompiled arithmetic)",
            trigger_features=("arithmetic", "constants"),
        ),
        SeededBug(
            bug_id="predication_nested_else_lost",
            description=(
                "The Predication pass drops assignments from the else branch "
                "when if statements are nested"
            ),
            kind=KIND_SEMANTIC,
            location=LOCATION_MIDEND,
            platform=PLATFORM_P4C,
            pass_name="Predication",
            paper_reference="§7.2 consequences of compiler changes",
            trigger_features=("nested_if", "else_branch"),
        ),
        SeededBug(
            bug_id="copy_prop_across_invalid",
            description=(
                "LocalCopyPropagation propagates the value of a header field "
                "across a setInvalid()/setValid() pair, reading a field of an "
                "invalid header"
            ),
            kind=KIND_SEMANTIC,
            location=LOCATION_MIDEND,
            platform=PLATFORM_P4C,
            pass_name="LocalCopyPropagation",
            paper_reference="Figure 5e",
            trigger_features=("header_validity",),
        ),
        SeededBug(
            bug_id="dead_code_removes_validity_call",
            description=(
                "DeadCodeElimination treats setValid()/setInvalid() calls as "
                "side-effect free and removes them from branches it considers "
                "uninteresting"
            ),
            kind=KIND_SEMANTIC,
            location=LOCATION_MIDEND,
            platform=PLATFORM_P4C,
            pass_name="DeadCodeElimination",
            paper_reference="§7.2 unstable code",
            trigger_features=("header_validity", "branch"),
        ),
        SeededBug(
            bug_id="strength_reduction_shift_semantics",
            description=(
                "StrengthReduction rewrites multiplication by a power of two "
                "into a shift by the wrong amount (off by one)"
            ),
            kind=KIND_SEMANTIC,
            location=LOCATION_MIDEND,
            platform=PLATFORM_P4C,
            pass_name="StrengthReduction",
            paper_reference="§7.2 (miscompiled arithmetic)",
            trigger_features=("multiplication",),
        ),
        SeededBug(
            bug_id="stack_flatten_next_index_off_by_one",
            description=(
                "HeaderStackFlattening lowers push_front with an off-by-one "
                "element copy-out around nextIndex: the loop stops one slot "
                "below the top, so the last stack element keeps stale "
                "contents instead of receiving its shifted value"
            ),
            kind=KIND_SEMANTIC,
            location=LOCATION_MIDEND,
            platform=PLATFORM_P4C,
            pass_name="HeaderStackFlattening",
            paper_reference="§5-§7 (header stacks; Wong et al. §5, stack lowering)",
            trigger_features=("header_stack", "push_front"),
        ),
        SeededBug(
            bug_id="stack_flatten_pop_validity_drop",
            description=(
                "HeaderStackFlattening lowers pop_front by moving element "
                "field values but drops the validity-bit move, so shifted "
                "elements keep their destination slot's stale validity"
            ),
            kind=KIND_SEMANTIC,
            location=LOCATION_MIDEND,
            platform=PLATFORM_P4C,
            pass_name="HeaderStackFlattening",
            paper_reference="§5-§7 (header stacks; Wong et al. §5, stack lowering)",
            trigger_features=("header_stack", "pop_front"),
        ),
        SeededBug(
            bug_id="stateful_rmw_lost_update",
            description=(
                "StatefulLowering caches the read-modify-write scratch "
                "temporary per counter bank, so every count after the first "
                "in a block reuses the first call's stale read and loses "
                "one increment per extra count"
            ),
            kind=KIND_SEMANTIC,
            location=LOCATION_MIDEND,
            platform=PLATFORM_P4C,
            pass_name="StatefulLowering",
            paper_reference="§6 generalization (stateful externs)",
            trigger_features=("counter", "repeated_count"),
        ),
        SeededBug(
            bug_id="stateful_read_write_reorder",
            description=(
                "StatefulLowering's load scheduling hoists a register read "
                "above an immediately preceding write to the same bank, so "
                "a same-cell read-after-write observes the pre-write value"
            ),
            kind=KIND_SEMANTIC,
            location=LOCATION_MIDEND,
            platform=PLATFORM_P4C,
            pass_name="StatefulLowering",
            paper_reference="§6 generalization (stateful externs)",
            trigger_features=("register", "write_then_read"),
        ),
        SeededBug(
            bug_id="stateful_spill_width_narrow",
            description=(
                "StatefulLowering spills written register values through an "
                "8-bit intermediary, so writes to banks wider than 8 bits "
                "lose their high bits -- observable only when the state is "
                "read back, possibly packets later"
            ),
            kind=KIND_SEMANTIC,
            location=LOCATION_MIDEND,
            platform=PLATFORM_P4C,
            pass_name="StatefulLowering",
            paper_reference="§6 generalization (stateful externs)",
            trigger_features=("register", "wide_register"),
        ),
        SeededBug(
            bug_id="simplify_control_flow_empty_if",
            description=(
                "SimplifyControlFlow collapses an if statement whose then "
                "branch is empty by dropping the else branch as well"
            ),
            kind=KIND_SEMANTIC,
            location=LOCATION_MIDEND,
            platform=PLATFORM_P4C,
            pass_name="SimplifyControlFlow",
            paper_reference="§7.2 snowball effects",
            trigger_features=("branch", "else_branch"),
        ),
        SeededBug(
            bug_id="midend_emit_missing_parens",
            description=(
                "The ToP4 emitter drops parentheses around nested ternary "
                "expressions after the Predication pass, producing a program "
                "that no longer parses (an invalid transformation)"
            ),
            kind=KIND_CRASH,
            location=LOCATION_MIDEND,
            platform=PLATFORM_P4C,
            pass_name="Predication",
            paper_reference="§7.2 invalid transformations",
            trigger_features=("nested_if",),
        ),
        # ------------------------------------------------------------------
        # BMv2 back-end defects
        # ------------------------------------------------------------------
        SeededBug(
            bug_id="bmv2_wide_field_truncation",
            description=(
                "The BMv2 back end truncates fields wider than 32 bits when "
                "building its JSON-like table representation"
            ),
            kind=KIND_SEMANTIC,
            location=LOCATION_BACKEND,
            platform=PLATFORM_BMV2,
            pass_name="Bmv2Lowering",
            paper_reference="§7.1 (BMv2 back-end bugs)",
            trigger_features=("wide_field",),
        ),
        SeededBug(
            bug_id="bmv2_table_key_order_crash",
            description=(
                "The BMv2 back end crashes when a table has more keys than "
                "actions due to an incorrect internal invariant"
            ),
            kind=KIND_CRASH,
            location=LOCATION_BACKEND,
            platform=PLATFORM_BMV2,
            pass_name="Bmv2Lowering",
            paper_reference="§7.1 (BMv2 back-end bugs)",
            trigger_features=("table", "multiple_keys"),
        ),
        # ------------------------------------------------------------------
        # Tofino back-end defects (black box: only packet tests can see them)
        # ------------------------------------------------------------------
        SeededBug(
            bug_id="tofino_slice_assignment_drop",
            description=(
                "The Tofino back end drops assignments to bit slices narrower "
                "than a byte during PHV allocation"
            ),
            kind=KIND_SEMANTIC,
            location=LOCATION_BACKEND,
            platform=PLATFORM_TOFINO,
            pass_name="TofinoPhvAllocation",
            paper_reference="§7.1 (Tofino semantic bugs)",
            trigger_features=("slice",),
        ),
        SeededBug(
            bug_id="tofino_ternary_condition_flip",
            description=(
                "The Tofino back end inverts the polarity of negated "
                "conditions when lowering if statements to gateway tables"
            ),
            kind=KIND_SEMANTIC,
            location=LOCATION_BACKEND,
            platform=PLATFORM_TOFINO,
            pass_name="TofinoGatewayLowering",
            paper_reference="§7.1 (Tofino semantic bugs)",
            trigger_features=("negation", "branch"),
        ),
        SeededBug(
            bug_id="tofino_table_limit_crash",
            description=(
                "The Tofino back end aborts with an internal assertion when a "
                "control applies more tables than fit into one stage instead "
                "of reporting a resource error"
            ),
            kind=KIND_CRASH,
            location=LOCATION_BACKEND,
            platform=PLATFORM_TOFINO,
            pass_name="TofinoTablePlacement",
            paper_reference="§7.1 (Tofino crash bugs)",
            trigger_features=("many_tables",),
        ),
        SeededBug(
            bug_id="tofino_exit_in_action_crash",
            description=(
                "The Tofino back end crashes on exit statements inside "
                "actions that tables reference"
            ),
            kind=KIND_CRASH,
            location=LOCATION_BACKEND,
            platform=PLATFORM_TOFINO,
            pass_name="TofinoActionLowering",
            paper_reference="§7.1 (Tofino crash bugs)",
            trigger_features=("exit", "table"),
        ),
        SeededBug(
            bug_id="tofino_concat_width_crash",
            description=(
                "The Tofino back end mis-computes the container width of "
                "concatenation expressions and fails an internal width check"
            ),
            kind=KIND_CRASH,
            location=LOCATION_BACKEND,
            platform=PLATFORM_TOFINO,
            pass_name="TofinoPhvAllocation",
            paper_reference="§7.1 (Tofino crash bugs)",
            trigger_features=("concat",),
        ),
        # ------------------------------------------------------------------
        # eBPF/XDP back-end defects (black box; the verifier-constrained
        # kernel-extension target of Wang et al. / p4c-xdp lineage)
        # ------------------------------------------------------------------
        SeededBug(
            bug_id="ebpf_verifier_loop_crash",
            description=(
                "The eBPF verifier's loop-bound analysis aborts on cyclic "
                "parser graphs instead of reporting a clean bounded-loop "
                "rejection"
            ),
            kind=KIND_CRASH,
            location=LOCATION_BACKEND,
            platform=PLATFORM_EBPF,
            pass_name="EbpfVerifier",
            paper_reference="§6 generalization (kernel-extension targets)",
            trigger_features=("parser", "parser_cycle"),
        ),
        SeededBug(
            bug_id="ebpf_tail_call_limit_crash",
            description=(
                "The eBPF tail-call budget check uses a stale constant and "
                "aborts on table counts the target actually supports"
            ),
            kind=KIND_CRASH,
            location=LOCATION_BACKEND,
            platform=PLATFORM_EBPF,
            pass_name="EbpfTailCallLowering",
            paper_reference="§6 generalization (kernel-extension targets)",
            trigger_features=("many_tables",),
        ),
        SeededBug(
            bug_id="ebpf_map_lookup_miss_action",
            description=(
                "The eBPF back end's map-lookup jump table has no miss "
                "branch, so a lookup miss falls through into the first "
                "action instead of running the declared default"
            ),
            kind=KIND_SEMANTIC,
            location=LOCATION_BACKEND,
            platform=PLATFORM_EBPF,
            pass_name="EbpfMapLowering",
            paper_reference="§6 generalization (kernel-extension targets)",
            trigger_features=("table",),
        ),
        SeededBug(
            bug_id="ebpf_narrowing_cast_drop",
            description=(
                "The eBPF back end drops the masking instruction after a "
                "narrowing register move, so narrowing casts keep the "
                "source's high bits"
            ),
            kind=KIND_SEMANTIC,
            location=LOCATION_BACKEND,
            platform=PLATFORM_EBPF,
            pass_name="EbpfByteCodeGen",
            paper_reference="§6 generalization (kernel-extension targets)",
            trigger_features=("cast",),
        ),
        SeededBug(
            bug_id="ebpf_byte_order_swap",
            description=(
                "The eBPF back end loads 16-bit header fields without the "
                "network-to-host byte swap"
            ),
            kind=KIND_SEMANTIC,
            location=LOCATION_BACKEND,
            platform=PLATFORM_EBPF,
            pass_name="EbpfContextLoad",
            paper_reference="§6 generalization (kernel-extension targets)",
            trigger_features=("sixteen_bit_field",),
        ),
        SeededBug(
            bug_id="ebpf_register_write_drops_high_byte",
            description=(
                "The eBPF back end's end-of-packet flush persists register "
                "cells into their array map through a value one byte too "
                "small, so written cells wider than a byte lose their high "
                "byte between packets; same-packet reads still see the full "
                "scratch value, so only a multi-packet sequence observes it"
            ),
            kind=KIND_SEMANTIC,
            location=LOCATION_BACKEND,
            platform=PLATFORM_EBPF,
            pass_name="EbpfMapFlush",
            paper_reference="§6 generalization (stateful externs)",
            trigger_features=("register", "wide_register"),
        ),
    ]
)


def bugs_by_kind(kind: str) -> List[SeededBug]:
    """All catalog entries of a given kind (``crash`` / ``semantic``)."""

    return [bug for bug in BUG_CATALOG.values() if bug.kind == kind]


def bugs_by_location(location: str) -> List[SeededBug]:
    """All catalog entries at a given location (front/mid/back end)."""

    return [bug for bug in BUG_CATALOG.values() if bug.location == location]


def bugs_by_platform(platform: str) -> List[SeededBug]:
    """All catalog entries attributed to a platform (p4c/bmv2/tofino/ebpf)."""

    return [bug for bug in BUG_CATALOG.values() if bug.platform == platform]


def frontend_midend_bug_ids() -> List[str]:
    """Identifiers of every front-end and mid-end bug (the P4C bugs)."""

    return [
        bug.bug_id
        for bug in BUG_CATALOG.values()
        if bug.location in (LOCATION_FRONTEND, LOCATION_MIDEND)
    ]
