"""Per-program pipeline coverage (the feedback half of the feedback loop).

The paper's generator is blind (§4.2 leaves coverage feedback as future
work); this module is the reproduction's answer: every compilation
produces a :class:`CoverageMap` describing *which parts of the compiler
the program exercised*, cheap enough to compute on every campaign unit:

* ``pass:<Name>`` — the pass changed the program (set by the
  :class:`~repro.compiler.pass_manager.PassManager` when a snapshot
  differs from its predecessor),
* ``rule:<Pass>.<rule>`` — one specific rewrite rule fired, counted at
  the rewrite site (passes record through
  :meth:`~repro.compiler.passes.PassContext.record_rule`),
* ``shape:<op>`` — term-shape histogram of the final snapshot's symbolic
  semantics (computed in :mod:`repro.core.validation`; hash-consing makes
  the DAG walk near-free because structural equality is pointer
  equality),
* ``feature:<name>`` — syntactic features of the generated program.  The
  names deliberately coincide with
  :attr:`~repro.compiler.bugs.SeededBug.trigger_features` so a scheduler
  can ask "which programs light the cells defect X needs?".

A coverage map is a plain ``cell -> count`` dictionary: serialisation is
lossless (:meth:`to_dict`/:meth:`from_dict` round-trip exactly) and
merging is a key-wise sum — commutative and associative — so coverage
rides the unit-outcome wire format and aggregates under any executor or
shard order, exactly like the solver/cache counters.

Everything here is a pure function of the program (and the enabled
front/mid-end defects), never of process state: two workers — or a
worker and a store resume — report byte-identical coverage for the same
unit.  That invariant is what lets scheduled campaigns stay
deterministic across ``jobs=1``, pools and distributed fleets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping

from repro.p4 import ast
from repro.p4.types import BitType, HeaderStackType

#: Cell-name prefixes.  Kept short and stable: cells cross the JSONL wire
#: on every unit outcome and land in ``CampaignStatistics.counters`` under
#: an additional ``cov_`` prefix.
PASS_PREFIX = "pass:"
RULE_PREFIX = "rule:"
SHAPE_PREFIX = "shape:"
FEATURE_PREFIX = "feature:"


def pass_cell(pass_name: str) -> str:
    return f"{PASS_PREFIX}{pass_name}"


def rule_cell(pass_name: str, rule: str) -> str:
    return f"{RULE_PREFIX}{pass_name}.{rule}"


def shape_cell(op: str) -> str:
    return f"{SHAPE_PREFIX}{op}"


def feature_cell(name: str) -> str:
    return f"{FEATURE_PREFIX}{name}"


@dataclass
class CoverageMap:
    """A multiset of coverage cells (``cell name -> hit count``)."""

    cells: Dict[str, int] = field(default_factory=dict)

    # -- recording -----------------------------------------------------------

    def record(self, cell: str, count: int = 1) -> None:
        if count:
            self.cells[cell] = self.cells.get(cell, 0) + count

    def record_pass(self, pass_name: str) -> None:
        """The pass-fired bit: the pass changed the program this run."""

        self.record(pass_cell(pass_name))

    def record_rule(self, pass_name: str, rule: str, count: int = 1) -> None:
        self.record(rule_cell(pass_name, rule), count)

    # -- queries -------------------------------------------------------------

    def passes_fired(self) -> Dict[str, int]:
        return self._by_prefix(PASS_PREFIX)

    def rules_fired(self) -> Dict[str, int]:
        return self._by_prefix(RULE_PREFIX)

    def features(self) -> Dict[str, int]:
        return self._by_prefix(FEATURE_PREFIX)

    def _by_prefix(self, prefix: str) -> Dict[str, int]:
        return {
            cell[len(prefix):]: count
            for cell, count in self.cells.items()
            if cell.startswith(prefix)
        }

    def __bool__(self) -> bool:
        return bool(self.cells)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CoverageMap):
            return NotImplemented
        return self.cells == other.cells

    # -- merging (commutative, associative) ----------------------------------

    def merge(self, other: "CoverageMap") -> "CoverageMap":
        """A new map with key-wise summed counts (neither input mutated)."""

        merged = dict(self.cells)
        for cell, count in other.cells.items():
            merged[cell] = merged.get(cell, 0) + count
        return CoverageMap(merged)

    def update(self, cells: Mapping[str, int]) -> None:
        """Fold a plain cell dict in place (the wire-side merge)."""

        for cell, count in cells.items():
            self.record(cell, count)

    # -- wire format ---------------------------------------------------------

    def to_dict(self) -> Dict[str, int]:
        return dict(self.cells)

    @classmethod
    def from_dict(cls, payload: Mapping[str, int]) -> "CoverageMap":
        return cls({str(cell): int(count) for cell, count in payload.items()})


# ----------------------------------------------------------------------
# Syntactic feature cells
# ----------------------------------------------------------------------

_COMPARISON_OPS = ("==", "!=", "<", "<=", ">", ">=")
_ARITHMETIC_OPS = ("+", "-", "*", "/", "%")
_VALIDITY_METHODS = ("setValid", "setInvalid", "isValid")

#: Table count at which the ``many_tables`` cell lights (the Tofino stage
#: budget the ``tofino_table_limit_crash`` trigger needs to exceed).
_MANY_TABLES_THRESHOLD = 3
#: Field width beyond which a header field counts as ``wide_field``.
_WIDE_FIELD_BITS = 32
#: Register cell width beyond which a bank counts as ``wide_register``
#: (the spill-narrowing defect only bites past its 8-bit intermediary).
_WIDE_REGISTER_BITS = 8


def program_features(program: ast.Program) -> CoverageMap:
    """Feature cells of one program, aligned with defect trigger features.

    One AST walk; every cell name matches a
    :attr:`~repro.compiler.bugs.SeededBug.trigger_features` entry, so
    ``feature:<name>`` coverage directly tells a scheduler which defects'
    trigger shapes a knob vector is producing.
    """

    coverage = CoverageMap()

    def hit(name: str, count: int = 1) -> None:
        coverage.record(feature_cell(name), count)

    functions = program.functions()
    if functions:
        hit("function", len(functions))
        for function in functions:
            if len(function.params) > 1:
                hit("multiple_args")
            if any(param.direction == "inout" for param in function.params):
                hit("inout_param")

    tables = 0
    counts_per_bank: Dict[str, int] = {}
    reads: set = set()
    writes: set = set()
    for node in ast.walk(program):
        if isinstance(node, ast.BinaryOp):
            if node.op in ("<<", ">>"):
                hit("shift")
            elif node.op in _COMPARISON_OPS:
                hit("comparison")
            elif node.op == "++":
                hit("concat")
            elif node.op == "*":
                hit("multiplication")
                hit("arithmetic")
            elif node.op in _ARITHMETIC_OPS:
                hit("arithmetic")
        elif isinstance(node, ast.UnaryOp):
            hit("negation")
        elif isinstance(node, ast.Constant):
            hit("constants")
            if node.width is None:
                hit("widthless_literal")
        elif isinstance(node, ast.Cast):
            hit("cast")
        elif isinstance(node, ast.Slice):
            hit("slice")
        elif isinstance(node, ast.IfStatement):
            hit("branch")
            if node.else_branch is not None:
                hit("else_branch")
            if any(
                isinstance(sub, ast.IfStatement)
                for branch in (node.then_branch, node.else_branch)
                if branch is not None
                for sub in ast.walk(branch)
            ):
                hit("nested_if")
        elif isinstance(node, ast.ExitStatement):
            hit("exit")
        elif isinstance(node, ast.ReturnStatement):
            hit("return")
        elif isinstance(node, ast.TableDeclaration):
            tables += 1
            hit("table")
            if len(node.keys) > 1:
                hit("multiple_keys")
        elif isinstance(node, ast.ActionDeclaration):
            if node.params:
                hit("action_param")
        elif isinstance(node, ast.RegisterDeclaration):
            hit("register")
            if node.width > _WIDE_REGISTER_BITS:
                hit("wide_register")
        elif isinstance(node, ast.CounterDeclaration):
            hit("counter")
        elif isinstance(node, ast.MethodCallExpression):
            target = node.target
            if isinstance(target, ast.Member):
                if target.member in _VALIDITY_METHODS:
                    hit("header_validity")
                elif target.member in ("push_front", "pop_front"):
                    hit(target.member)
                    hit("header_stack")
                elif isinstance(target.expr, ast.PathExpression):
                    bank = target.expr.name
                    if target.member == "count":
                        counts_per_bank[bank] = counts_per_bank.get(bank, 0) + 1
                    elif target.member == "read":
                        reads.add(bank)
                    elif target.member == "write":
                        writes.add(bank)
            if any(
                isinstance(sub, ast.MethodCallExpression)
                for arg in node.args
                for sub in ast.walk(arg)
            ):
                hit("nested_call")
        elif isinstance(node, ast.StructDeclaration):
            if any(
                isinstance(field_type, HeaderStackType)
                for _name, field_type in node.fields
            ):
                hit("header_stack")
        elif isinstance(node, ast.HeaderDeclaration):
            for _name, field_type in node.fields:
                if isinstance(field_type, BitType):
                    if field_type.width > _WIDE_FIELD_BITS:
                        hit("wide_field")
                    if field_type.width == 16:
                        hit("sixteen_bit_field")

    if tables >= _MANY_TABLES_THRESHOLD:
        hit("many_tables")
    if any(count >= 2 for count in counts_per_bank.values()):
        hit("repeated_count")
    if writes & reads:
        hit("write_then_read")

    parsers = program.parsers() if hasattr(program, "parsers") else []
    for parser in parsers:
        hit("parser")
        if _has_state_cycle(parser):
            hit("parser_cycle")
    return coverage


def _has_state_cycle(parser: ast.ParserDeclaration) -> bool:
    """Whether the parser's state-transition graph contains a cycle."""

    edges: Dict[str, set] = {}
    for state in parser.states:
        targets = set()
        if state.next_state:
            targets.add(state.next_state)
        targets.update(case.next_state for case in state.cases if case.next_state)
        edges[state.name] = targets

    visiting: set = set()
    done: set = set()

    def visit(name: str) -> bool:
        if name in done or name not in edges:
            return False
        if name in visiting:
            return True
        visiting.add(name)
        if any(visit(target) for target in sorted(edges[name])):
            return True
        visiting.discard(name)
        done.add(name)
        return False

    return any(visit(name) for name in edges)


def merge_coverage_dicts(payloads: Iterable[Mapping[str, int]]) -> Dict[str, int]:
    """Key-wise sum of plain cell dicts (the parent-side aggregate)."""

    merged = CoverageMap()
    for payload in payloads:
        merged.update(payload)
    return merged.to_dict()
