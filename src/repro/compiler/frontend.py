"""Front-end compiler passes.

The front end mirrors the responsibilities of P4C's front end: type
checking, function inlining with copy-in/copy-out elaboration, moving action
parameters into local copies, and def-use simplification.  Several of the
seeded defects from :mod:`repro.compiler.bugs` live here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.compiler.errors import CompilerCrash, CompilerError
from repro.compiler.passes import CompilerPass, PassContext
from repro.compiler.visitor import Transformer
from repro.p4 import ast
from repro.p4.typecheck import TypeCheckError, check_program
from repro.p4.types import BitType, VoidType


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


class SubstituteNames(Transformer):
    """Replace references to the given names with replacement expressions."""

    def __init__(self, bindings: Dict[str, ast.Expression]) -> None:
        self.bindings = bindings

    def visit_PathExpression(self, node: ast.PathExpression) -> ast.Expression:
        replacement = self.bindings.get(node.name)
        if replacement is None:
            return node
        return replacement.clone()


def substitute(node: ast.Node, bindings: Dict[str, ast.Expression]) -> ast.Node:
    """Return a copy of ``node`` with parameter references substituted."""

    return SubstituteNames(bindings).transform(node.clone())


def collect_reads(node: ast.Node) -> Set[str]:
    """Names of variables read anywhere below ``node``.

    Assignment left-hand sides do not count as reads of the root variable
    unless the l-value is a slice or member (partial writes read-modify-write
    the enclosing storage).
    """

    reads: Set[str] = set()

    def add_paths(expr: ast.Node) -> None:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.PathExpression):
                reads.add(sub.name)

    class _Reads(Transformer):
        def visit_AssignmentStatement(self, stmt: ast.AssignmentStatement):
            add_paths(stmt.rhs)
            if not isinstance(stmt.lhs, ast.PathExpression):
                add_paths(stmt.lhs)
            return stmt

        def visit_PathExpression(self, expr: ast.PathExpression):
            reads.add(expr.name)
            return expr

    _Reads().transform(node)
    return reads


# ---------------------------------------------------------------------------
# TypeChecking
# ---------------------------------------------------------------------------


class TypeChecking(CompilerPass):
    """Run the type checker over the whole program.

    Type errors on user programs are graceful :class:`CompilerError`
    rejections.  The seeded ``typecheck_shift_width_crash`` defect crashes on
    a legal-but-unusual shift expression instead (paper figure 5b).
    """

    name = "TypeChecking"
    location = "front_end"

    def run(self, program: ast.Program, context: PassContext) -> ast.Program:
        if context.bug_enabled("typecheck_shift_width_crash"):
            self._crash_on_unknown_width_shift(program)
        try:
            check_program(program)
        except TypeCheckError as exc:
            raise CompilerError(f"type error: {exc}") from exc
        return program

    @staticmethod
    def _crash_on_unknown_width_shift(program: ast.Program) -> None:
        for node in ast.walk(program):
            if (
                isinstance(node, ast.BinaryOp)
                and node.op == "<<"
                and isinstance(node.left, ast.Constant)
                and node.left.width is None
                and not isinstance(node.right, ast.Constant)
            ):
                raise CompilerCrash(
                    "cannot infer width of shift of an unsized literal by a "
                    "run-time value",
                    pass_name="TypeChecking",
                    signature="typeinference-shift-width",
                )


class TypeCheckingPost(CompilerPass):
    """Re-run the type checker on compiler-generated IR.

    After the front end has desugared the program, a type failure is no
    longer the user's fault: it means a previous pass produced malformed IR,
    so the failure is reported as a crash (the "snowball effect" of §7.2).
    """

    name = "TypeCheckingPost"
    location = "mid_end"

    def run(self, program: ast.Program, context: PassContext) -> ast.Program:
        try:
            check_program(program)
        except TypeCheckError as exc:
            raise CompilerCrash(
                f"post-front-end type check failed: {exc}",
                pass_name=self.name,
                signature="post-typecheck-invariant",
            ) from exc
        return program


# ---------------------------------------------------------------------------
# SimplifyDefUse
# ---------------------------------------------------------------------------


class SimplifyDefUse(CompilerPass):
    """Remove stores to local variables that are never read.

    The correct implementation is deliberately conservative: it only removes
    assignments to control-local variables that are never read anywhere in
    the control.  The seeded ``def_use_return_clears_scope`` defect models
    figure 5a: when the program contains a function with an ``inout``
    parameter and a ``return`` statement, the pass erroneously deletes the
    declarations of locals passed to that function, which makes a later
    type-checking pass crash.
    """

    name = "SimplifyDefUse"
    location = "front_end"

    def run(self, program: ast.Program, context: PassContext) -> ast.Program:
        buggy = context.bug_enabled("def_use_return_clears_scope")
        poisoned_functions = self._functions_with_inout_return(program) if buggy else set()

        new_decls: List[ast.Declaration] = []
        for decl in program.declarations:
            if isinstance(decl, ast.ControlDeclaration):
                new_decls.append(self._simplify_control(decl, poisoned_functions))
            else:
                new_decls.append(decl)
        return ast.Program(new_decls)

    @staticmethod
    def _functions_with_inout_return(program: ast.Program) -> Set[str]:
        poisoned: Set[str] = set()
        for function in program.functions():
            has_inout = any(param.direction == "inout" for param in function.params)
            has_return = any(
                isinstance(node, ast.ReturnStatement) for node in ast.walk(function.body)
            )
            if has_inout and has_return:
                poisoned.add(function.name)
        return poisoned

    def _simplify_control(
        self, control: ast.ControlDeclaration, poisoned_functions: Set[str]
    ) -> ast.ControlDeclaration:
        control = control.clone()
        reads = collect_reads(control)

        # Correct behaviour: drop assignments to never-read local variables.
        local_names = {
            local.name
            for local in control.locals
            if isinstance(local, ast.VariableDeclaration)
        }
        local_names |= {
            stmt.name
            for stmt in ast.walk(control.apply)
            if isinstance(stmt, ast.VariableDeclaration)
        }

        class _DropDeadStores(Transformer):
            def visit_AssignmentStatement(self, stmt: ast.AssignmentStatement):
                if (
                    isinstance(stmt.lhs, ast.PathExpression)
                    and stmt.lhs.name in local_names
                    and stmt.lhs.name not in reads
                ):
                    return None
                return stmt

        control = _DropDeadStores().transform(control)

        if poisoned_functions:
            control = self._buggy_clear_arguments(control, poisoned_functions)
        return control

    @staticmethod
    def _buggy_clear_arguments(
        control: ast.ControlDeclaration, poisoned_functions: Set[str]
    ) -> ast.ControlDeclaration:
        """The seeded defect: delete declarations of locals passed to poisoned calls."""

        doomed: Set[str] = set()
        for node in ast.walk(control):
            if isinstance(node, ast.MethodCallExpression) and isinstance(
                node.target, ast.PathExpression
            ):
                if node.target.name in poisoned_functions:
                    for arg in node.args:
                        root = ast.lvalue_root(arg)
                        if root is not None:
                            doomed.add(root)
        if not doomed:
            return control

        class _DropDeclarations(Transformer):
            def visit_VariableDeclaration(self, decl: ast.VariableDeclaration):
                if decl.name in doomed:
                    return None
                return decl

        transformer = _DropDeclarations()
        control = transformer.transform(control)
        control.locals = [
            local
            for local in control.locals
            if not (isinstance(local, ast.VariableDeclaration) and local.name in doomed)
        ]
        return control


# ---------------------------------------------------------------------------
# InlineFunctions
# ---------------------------------------------------------------------------


class InlineFunctions(CompilerPass):
    """Inline all helper functions using copy-in/copy-out semantics.

    Seeded defects:

    * ``inline_missing_function`` -- calls nested inside larger expressions
      are skipped, leaving call nodes behind for later passes to trip over.
    * ``inline_alias_copy_out`` -- arguments are substituted textually
      instead of going through copy-in/copy-out temporaries.
    * ``side_effect_argument_order`` -- copy-out is performed right-to-left.
    """

    name = "InlineFunctions"
    location = "front_end"

    def run(self, program: ast.Program, context: PassContext) -> ast.Program:
        functions = {function.name: function for function in program.functions()}
        if not functions:
            return program
        inliner = _FunctionInliner(functions, context)
        new_decls: List[ast.Declaration] = []
        for decl in program.declarations:
            if isinstance(decl, ast.FunctionDeclaration):
                continue  # functions disappear after inlining
            if isinstance(decl, (ast.ControlDeclaration, ast.ParserDeclaration)):
                new_decls.append(inliner.transform(decl.clone()))
            else:
                new_decls.append(decl)
        return ast.Program(new_decls)


class _FunctionInliner(Transformer):
    """Statement-level rewriting that expands function calls."""

    def __init__(self, functions: Dict[str, ast.FunctionDeclaration], context: PassContext) -> None:
        self.functions = functions
        self.context = context

    # Each statement that may contain calls is expanded into a list of
    # statements (the visitor framework splices lists back into blocks).

    def visit_AssignmentStatement(self, stmt: ast.AssignmentStatement):
        prelude: List[ast.Statement] = []
        rhs = self._expand_expression(stmt.rhs, prelude, top_level=True)
        lhs = self._expand_expression(stmt.lhs, prelude, top_level=False)
        new_stmt = ast.AssignmentStatement(lhs, rhs)
        if prelude:
            return prelude + [new_stmt]
        return new_stmt

    def visit_VariableDeclaration(self, stmt: ast.VariableDeclaration):
        if stmt.initializer is None:
            return stmt
        prelude: List[ast.Statement] = []
        initializer = self._expand_expression(stmt.initializer, prelude, top_level=True)
        new_stmt = ast.VariableDeclaration(stmt.name, stmt.var_type, initializer)
        if prelude:
            return prelude + [new_stmt]
        return new_stmt

    def visit_IfStatement(self, stmt: ast.IfStatement):
        prelude: List[ast.Statement] = []
        cond = self._expand_expression(stmt.cond, prelude, top_level=False)
        then_branch = self.transform(stmt.then_branch)
        else_branch = self.transform(stmt.else_branch) if stmt.else_branch else None
        new_stmt = ast.IfStatement(cond, then_branch, else_branch)
        if prelude:
            return prelude + [new_stmt]
        return new_stmt

    def visit_MethodCallStatement(self, stmt: ast.MethodCallStatement):
        call = stmt.call
        if isinstance(call.target, ast.PathExpression) and call.target.name in self.functions:
            statements, _ = self._inline_call(call)
            return statements
        # Arguments of other calls (e.g. extern-like emit) may contain calls.
        prelude: List[ast.Statement] = []
        new_args = [self._expand_expression(arg, prelude, top_level=False) for arg in call.args]
        new_stmt = ast.MethodCallStatement(
            ast.MethodCallExpression(call.target, new_args)
        )
        if prelude:
            return prelude + [new_stmt]
        return new_stmt

    # -- expression expansion -------------------------------------------------

    def _expand_expression(
        self, expr: ast.Expression, prelude: List[ast.Statement], top_level: bool
    ) -> ast.Expression:
        """Replace function calls inside ``expr`` with their inlined results."""

        if isinstance(expr, ast.MethodCallExpression) and isinstance(
            expr.target, ast.PathExpression
        ) and expr.target.name in self.functions:
            if not top_level and self.context.bug_enabled("inline_missing_function"):
                # Seeded defect: nested calls are left alone.
                return expr
            statements, result = self._inline_call(expr)
            prelude.extend(statements)
            if result is None:
                raise CompilerError(
                    f"void function {expr.target.name!r} used in an expression"
                )
            return result

        class _Nested(Transformer):
            def __init__(self, outer: "_FunctionInliner") -> None:
                self.outer = outer

            def visit_MethodCallExpression(self, call: ast.MethodCallExpression):
                if (
                    isinstance(call.target, ast.PathExpression)
                    and call.target.name in self.outer.functions
                ):
                    return self.outer._expand_expression(call, prelude, top_level=False)
                return self.generic_visit(call)

        return _Nested(self).transform(expr)

    # -- the actual inlining --------------------------------------------------------

    def _inline_call(
        self, call: ast.MethodCallExpression
    ) -> tuple[List[ast.Statement], Optional[ast.Expression]]:
        function = self.functions[call.target.name]
        if len(call.args) != len(function.params):
            raise CompilerError(
                f"call to {function.name!r} has {len(call.args)} arguments, "
                f"expected {len(function.params)}"
            )

        alias_bug = self.context.bug_enabled("inline_alias_copy_out")
        reverse_copy_out = self.context.bug_enabled("side_effect_argument_order")

        statements: List[ast.Statement] = []
        bindings: Dict[str, ast.Expression] = {}
        copy_out: List[ast.AssignmentStatement] = []

        for param, arg in zip(function.params, call.args):
            if alias_bug:
                # Seeded defect: substitute the argument l-value directly.
                bindings[param.name] = arg
                continue
            temp = self.context.fresh_name(f"{function.name}_{param.name}")
            initializer = arg.clone() if param.is_readable else None
            statements.append(
                ast.VariableDeclaration(temp, param.param_type, initializer)
            )
            bindings[param.name] = ast.PathExpression(temp)
            if param.is_writable:
                copy_out.append(
                    ast.AssignmentStatement(arg.clone(), ast.PathExpression(temp))
                )

        return_temp: Optional[str] = None
        if not isinstance(function.return_type, VoidType):
            return_temp = self.context.fresh_name(f"{function.name}_retval")
            statements.append(
                ast.VariableDeclaration(return_temp, function.return_type, None)
            )

        body = substitute(function.body, bindings)
        body = _rewrite_returns(body, return_temp)
        statements.extend(body.statements)

        if reverse_copy_out:
            copy_out = list(reversed(copy_out))
        statements.extend(copy_out)

        result = ast.PathExpression(return_temp) if return_temp is not None else None
        return statements, result


def _rewrite_returns(block: ast.BlockStatement, return_temp: Optional[str]) -> ast.BlockStatement:
    """Turn ``return expr;`` into an assignment to the return temporary."""

    class _Returns(Transformer):
        def visit_ReturnStatement(self, stmt: ast.ReturnStatement):
            if stmt.value is None or return_temp is None:
                return ast.EmptyStatement()
            return ast.AssignmentStatement(ast.PathExpression(return_temp), stmt.value)

    return _Returns().transform(block)


# ---------------------------------------------------------------------------
# RemoveActionParameters
# ---------------------------------------------------------------------------


class RemoveActionParameters(CompilerPass):
    """Expand direct action calls (actions invoked from ``apply`` with arguments).

    Actions referenced from tables keep their bodies; direct invocations are
    inlined with copy-in/copy-out just like function calls.  Seeded defects:

    * ``exit_ignores_copy_out`` -- copy-out statements are not inserted
      before ``exit`` statements (figure 5f),
    * ``action_param_slice_drop`` -- assignments to the root variable of a
      slice argument are deleted (figure 5d).
    """

    name = "RemoveActionParameters"
    location = "front_end"

    def run(self, program: ast.Program, context: PassContext) -> ast.Program:
        new_decls: List[ast.Declaration] = []
        for decl in program.declarations:
            if isinstance(decl, ast.ControlDeclaration):
                new_decls.append(self._rewrite_control(decl.clone(), context))
            else:
                new_decls.append(decl)
        return ast.Program(new_decls)

    def _rewrite_control(
        self, control: ast.ControlDeclaration, context: PassContext
    ) -> ast.ControlDeclaration:
        actions = {
            local.name: local
            for local in control.locals
            if isinstance(local, ast.ActionDeclaration)
        }
        if not actions:
            return control

        expander = _ActionCallExpander(actions, context)
        control.apply = expander.transform(control.apply)
        # Also expand direct action calls made from other action bodies.
        for local in control.locals:
            if isinstance(local, ast.ActionDeclaration):
                local.body = expander.transform(local.body)
        # Actions that were only invoked directly are now fully expanded and
        # can be dropped; actions referenced by a table must stay.
        referenced: Set[str] = set()
        for local in control.locals:
            if isinstance(local, ast.TableDeclaration):
                referenced.update(ref.name for ref in local.actions)
                if local.default_action is not None:
                    referenced.add(local.default_action.name)
        for node in ast.walk(control.apply):
            if isinstance(node, ast.MethodCallExpression) and isinstance(
                node.target, ast.PathExpression
            ):
                referenced.add(node.target.name)
        control.locals = [
            local
            for local in control.locals
            if not (
                isinstance(local, ast.ActionDeclaration)
                and local.params
                and local.name not in referenced
            )
        ]
        return control


class _ActionCallExpander(Transformer):
    def __init__(self, actions: Dict[str, ast.ActionDeclaration], context: PassContext) -> None:
        self.actions = actions
        self.context = context

    def visit_MethodCallStatement(self, stmt: ast.MethodCallStatement):
        call = stmt.call
        if not isinstance(call.target, ast.PathExpression):
            return stmt
        action = self.actions.get(call.target.name)
        if action is None or not call.args:
            return stmt
        return self._inline_action(action, call)

    def _inline_action(
        self, action: ast.ActionDeclaration, call: ast.MethodCallExpression
    ) -> List[ast.Statement]:
        drop_slice_assignments = self.context.bug_enabled("action_param_slice_drop")
        skip_copy_out_on_exit = self.context.bug_enabled("exit_ignores_copy_out")

        statements: List[ast.Statement] = []
        bindings: Dict[str, ast.Expression] = {}
        copy_out: List[ast.AssignmentStatement] = []
        slice_roots: Set[str] = set()

        for param, arg in zip(action.params, call.args):
            temp = self.context.fresh_name(f"{action.name}_{param.name}")
            initializer = arg.clone() if param.is_readable else None
            statements.append(ast.VariableDeclaration(temp, param.param_type, initializer))
            bindings[param.name] = ast.PathExpression(temp)
            if param.is_writable:
                copy_out.append(ast.AssignmentStatement(arg.clone(), ast.PathExpression(temp)))
            if isinstance(arg, ast.Slice):
                root = ast.lvalue_root(arg)
                if root is not None:
                    slice_roots.add(root)

        body = substitute(action.body, bindings)

        if drop_slice_assignments and slice_roots:
            body = _drop_assignments_to_roots(body, slice_roots)

        body = _insert_copy_out_before_exits(
            body, [] if skip_copy_out_on_exit else copy_out
        )

        statements.extend(body.statements)
        statements.extend(stmt.clone() for stmt in copy_out)
        return statements


def _drop_assignments_to_roots(
    block: ast.BlockStatement, roots: Set[str]
) -> ast.BlockStatement:
    """Seeded defect helper: delete assignments whose l-value root is in ``roots``."""

    class _Dropper(Transformer):
        def visit_AssignmentStatement(self, stmt: ast.AssignmentStatement):
            root = ast.lvalue_root(stmt.lhs)
            if root in roots and isinstance(stmt.lhs, (ast.Slice, ast.Member)):
                return None
            return stmt

    return _Dropper().transform(block)


def _insert_copy_out_before_exits(
    block: ast.BlockStatement, copy_out: Sequence[ast.AssignmentStatement]
) -> ast.BlockStatement:
    """Insert copy-out assignments immediately before every ``exit``.

    P4-16 requires copy-out to happen even when the callee exits (this was
    clarified in the specification after the bug in figure 5f was reported).
    """

    class _Exits(Transformer):
        def visit_ExitStatement(self, stmt: ast.ExitStatement):
            if not copy_out:
                return stmt
            return [assignment.clone() for assignment in copy_out] + [stmt]

    return _Exits().transform(block)


# ---------------------------------------------------------------------------
# Parser graph analysis
# ---------------------------------------------------------------------------


class ParserGraphs(CompilerPass):
    """Analyse the parser state graph.

    The correct behaviour accepts cycles (parsing loops are legal and bounded
    by the packet length).  The seeded ``parser_loop_unroll_crash`` defect
    attempts to fully unroll the state graph and blows up on cycles.
    """

    name = "ParserGraphs"
    location = "front_end"

    MAX_UNROLL_DEPTH = 64

    def run(self, program: ast.Program, context: PassContext) -> ast.Program:
        for parser in program.parsers():
            self._check_states_exist(parser)
            if context.bug_enabled("parser_loop_unroll_crash") and self._has_cycle(parser):
                raise CompilerCrash(
                    f"parser {parser.name!r}: state graph unrolling exceeded "
                    f"{self.MAX_UNROLL_DEPTH} levels",
                    pass_name=self.name,
                    signature="parser-unroll-overflow",
                )
        return program

    @staticmethod
    def _check_states_exist(parser: ast.ParserDeclaration) -> None:
        known = {state.name for state in parser.states} | {"accept", "reject"}
        for state in parser.states:
            targets = [case.next_state for case in state.cases]
            if state.next_state is not None:
                targets.append(state.next_state)
            for target in targets:
                if target not in known:
                    raise CompilerError(
                        f"parser {parser.name!r}: transition to unknown state {target!r}"
                    )

    @staticmethod
    def _has_cycle(parser: ast.ParserDeclaration) -> bool:
        edges: Dict[str, List[str]] = {}
        for state in parser.states:
            targets = [case.next_state for case in state.cases]
            if state.next_state is not None:
                targets.append(state.next_state)
            edges[state.name] = [t for t in targets if t not in ("accept", "reject")]

        visiting: Set[str] = set()
        visited: Set[str] = set()

        def dfs(name: str) -> bool:
            if name in visiting:
                return True
            if name in visited or name not in edges:
                return False
            visiting.add(name)
            found = any(dfs(target) for target in edges[name])
            visiting.discard(name)
            visited.add(name)
            return found

        return any(dfs(state.name) for state in parser.states)


#: The default front-end pass pipeline, in execution order.
FRONTEND_PASSES = (
    TypeChecking,
    SimplifyDefUse,
    InlineFunctions,
    RemoveActionParameters,
    ParserGraphs,
)
