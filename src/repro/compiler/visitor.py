"""Generic AST transformation framework for compiler passes.

:class:`Transformer` rebuilds an AST bottom-up.  Subclasses override
``visit_<NodeClass>`` methods; the default behaviour reconstructs the node
with transformed children, so passes only need code for the node types they
care about.  Transformers never mutate the input tree, which lets the pass
manager keep the "before" program for translation validation.
"""

from __future__ import annotations

import dataclasses
from typing import Any, List

from repro.p4 import ast


class Transformer:
    """Rebuild an AST, dispatching to ``visit_<ClassName>`` methods."""

    def transform(self, node: ast.Node) -> Any:
        """Transform a single node (dispatch on its dynamic type)."""

        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def transform_program(self, program: ast.Program) -> ast.Program:
        """Transform a whole program."""

        result = self.transform(program)
        if not isinstance(result, ast.Program):  # pragma: no cover - defensive
            raise TypeError("transforming a Program must yield a Program")
        return result

    # -- default behaviour ----------------------------------------------------

    def generic_visit(self, node: ast.Node) -> Any:
        """Rebuild ``node`` with transformed children."""

        if not dataclasses.is_dataclass(node):
            return node
        changed = False
        new_values = {}
        for field in dataclasses.fields(node):
            value = getattr(node, field.name)
            new_value = self._transform_value(value)
            new_values[field.name] = new_value
            if new_value is not value:
                changed = True
        if not changed:
            return node
        return type(node)(**new_values)

    def _transform_value(self, value: Any) -> Any:
        if isinstance(value, ast.Node):
            return self.transform(value)
        if isinstance(value, list):
            out: List[Any] = []
            changed = False
            for item in value:
                new_item = self._transform_value(item)
                if new_item is None and isinstance(item, ast.Statement):
                    # Returning None from a statement visit deletes the statement.
                    changed = True
                    continue
                if isinstance(new_item, list) and isinstance(item, ast.Statement):
                    # Returning a list splices several statements in place of one.
                    out.extend(new_item)
                    changed = True
                    continue
                out.append(new_item)
                if new_item is not item:
                    changed = True
            return out if changed else value
        if isinstance(value, tuple):
            transformed = tuple(self._transform_value(item) for item in value)
            if any(new is not old for new, old in zip(transformed, value)):
                return transformed
            return value
        return value


class Visitor:
    """Read-only traversal with ``visit_<ClassName>`` hooks."""

    def visit(self, node: ast.Node) -> None:
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            method(node)
        self.generic_visit(node)

    def generic_visit(self, node: ast.Node) -> None:
        for value in vars(node).values():
            self._visit_value(value)

    def _visit_value(self, value: Any) -> None:
        if isinstance(value, ast.Node):
            self.visit(value)
        elif isinstance(value, (list, tuple)):
            for item in value:
                self._visit_value(item)
