"""Mid-end compiler passes (optimisations).

These mirror the P4C mid-end passes in which the paper found most of its
semantic bugs: constant folding, strength reduction, predication, local copy
propagation, dead-code elimination and control-flow simplification.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.compiler.errors import CompilerCrash
from repro.compiler.passes import CompilerPass, PassContext, null_recorder
from repro.compiler.visitor import Transformer
from repro.p4 import ast
from repro.p4 import registers as register_lowering
from repro.p4 import stacks as stack_lowering
from repro.p4.stacks import NEXT_INDEX_WIDTH
from repro.p4.types import BitType, HeaderStackType, HeaderType


def _mask(width: int) -> int:
    return (1 << width) - 1


def _constant_width(expr: ast.Expression) -> Optional[int]:
    if isinstance(expr, ast.Constant):
        return expr.width
    return None


# ---------------------------------------------------------------------------
# CheckNoFunctionCalls
# ---------------------------------------------------------------------------


class CheckNoFunctionCalls(CompilerPass):
    """Assert that the front end eliminated every helper-function call.

    The mid end and back ends assume functions were inlined; a leftover call
    indicates a defective earlier pass, so it is an internal crash (this is
    how the ``inline_missing_function`` snowball manifests).
    """

    name = "CheckNoFunctionCalls"
    location = "mid_end"

    _BUILTIN_METHODS = {
        "setValid", "setInvalid", "isValid", "apply", "extract", "emit",
        "push_front", "pop_front", "read", "write", "count",
    }

    def run(self, program: ast.Program, context: PassContext) -> ast.Program:
        table_and_action_names = self._callable_names(program)
        for node in ast.walk(program):
            if not isinstance(node, ast.MethodCallExpression):
                continue
            target = node.target
            if isinstance(target, ast.Member) and target.member in self._BUILTIN_METHODS:
                continue
            if isinstance(target, ast.PathExpression):
                if target.name in table_and_action_names or target.name == "NoAction":
                    continue
                raise CompilerCrash(
                    f"unexpected call to {target.name!r}: all functions should "
                    "have been inlined by the front end",
                    pass_name=self.name,
                    signature="leftover-function-call",
                )
        return program

    @staticmethod
    def _callable_names(program: ast.Program) -> Set[str]:
        names: Set[str] = set()
        for control in program.controls():
            for local in control.locals:
                if isinstance(local, (ast.ActionDeclaration, ast.TableDeclaration)):
                    names.add(local.name)
        return names


# ---------------------------------------------------------------------------
# HeaderStackFlattening
# ---------------------------------------------------------------------------


class HeaderStackFlattening(CompilerPass):
    """Lower header stacks to their constant-indexed scalar elements.

    After this pass no dynamic stack operation remains: ``push_front`` /
    ``pop_front`` become explicit element-by-element moves,
    ``extract(stack.next)`` becomes a constant-indexed validity if-chain
    driven by a scalar ``<stack>_nextIndex`` counter field the pass adds to
    the enclosing struct (initialised to zero at the top of the parser's
    ``start`` state), and ``stack.last.<field>`` reads become ternary
    chains over the elements.  A constant-indexed element behaves exactly
    like a scalar header, which is all the back ends support.

    The statement sequences come from :mod:`repro.p4.stacks` -- the same
    recipes both interpreters execute for the native operations -- so the
    correct pass is semantically invisible to translation validation.

    Seeded defects:

    * ``stack_flatten_next_index_off_by_one`` -- the ``push_front``
      copy-out loop around ``nextIndex`` stops one element short, so the
      top element keeps stale contents (a semantic bug),
    * ``stack_flatten_pop_validity_drop`` -- the ``pop_front`` lowering
      moves field values but not validity bits, so shifted elements keep
      their destination slot's stale validity (a semantic bug).
    """

    name = "HeaderStackFlattening"
    location = "mid_end"

    def run(self, program: ast.Program, context: PassContext) -> ast.Program:
        stack_fields = _collect_stack_fields(program)
        if not stack_fields:
            return program
        program = program.clone()
        structs = {decl.name: decl for decl in program.structs()}
        flattener = _StackFlattener(
            stack_fields=stack_fields,
            structs=structs,
            off_by_one=context.bug_enabled("stack_flatten_next_index_off_by_one"),
            drop_validity=context.bug_enabled("stack_flatten_pop_validity_drop"),
            record=context.rule_recorder(self.name),
        )
        declarations: List[ast.Declaration] = []
        for decl in program.declarations:
            if isinstance(decl, ast.ControlDeclaration):
                declarations.append(flattener.lower_control(decl))
            elif isinstance(decl, ast.ParserDeclaration):
                declarations.append(flattener.lower_parser(decl))
            else:
                declarations.append(decl)
        return ast.Program(declarations)


def _collect_stack_fields(
    program: ast.Program,
) -> Dict[str, Dict[str, Tuple[Tuple[str, ...], int]]]:
    """``struct name -> {field -> (element field names, size)}``."""

    headers = {decl.name: decl for decl in program.headers()}
    out: Dict[str, Dict[str, Tuple[Tuple[str, ...], int]]] = {}
    for struct in program.structs():
        for field_name, field_type in struct.fields:
            if not isinstance(field_type, HeaderStackType):
                continue
            element = field_type.element
            if isinstance(element, HeaderType):
                names = element.field_names()
            else:
                declared = headers.get(getattr(element, "name", ""))
                if declared is None:
                    continue  # unresolved element: leave for the type checker
                names = tuple(name for name, _ in declared.fields)
            out.setdefault(struct.name, {})[field_name] = (names, field_type.size)
    return out


class _StackFlattener:
    """Per-declaration lowering of stack operations to element statements."""

    def __init__(
        self,
        stack_fields: Dict[str, Dict[str, Tuple[Tuple[str, ...], int]]],
        structs: Dict[str, ast.StructDeclaration],
        off_by_one: bool,
        drop_validity: bool,
        record=null_recorder,
    ) -> None:
        self.stack_fields = stack_fields
        self.structs = structs
        self.off_by_one = off_by_one
        self.drop_validity = drop_validity
        self.record = record
        #: (struct, field) -> counter field name, for counters already added.
        self._counters: Dict[Tuple[str, str], str] = {}

    # -- struct bookkeeping -------------------------------------------------

    def _param_structs(self, params: List[ast.Parameter]) -> Dict[str, str]:
        out: Dict[str, str] = {}
        for param in params:
            # Works for unresolved TypeName references and already-resolved
            # StructTypes alike: both carry the struct's name.
            name = getattr(param.param_type, "name", None)
            if name in self.stack_fields:
                out[param.name] = name
        return out

    def _stack_info(
        self, expr: ast.Expression, param_structs: Dict[str, str]
    ) -> Optional[Tuple[str, str, Tuple[str, ...], int]]:
        """Resolve ``hdr.hs`` to (struct, field, element fields, size)."""

        if not (
            isinstance(expr, ast.Member)
            and isinstance(expr.expr, ast.PathExpression)
        ):
            return None
        struct_name = param_structs.get(expr.expr.name)
        if struct_name is None:
            return None
        info = self.stack_fields.get(struct_name, {}).get(expr.member)
        if info is None:
            return None
        field_names, size = info
        return struct_name, expr.member, field_names, size

    def _counter_name(self, struct_name: str, field: str) -> str:
        key = (struct_name, field)
        existing = self._counters.get(key)
        if existing is not None:
            return existing
        struct = self.structs[struct_name]
        taken = {name for name, _ in struct.fields}
        name = f"{field}_nextIndex"
        while name in taken:
            name += "_"
        struct.fields.append((name, BitType(NEXT_INDEX_WIDTH)))
        self._counters[key] = name
        return name

    # -- declarations -------------------------------------------------------

    def lower_control(self, control: ast.ControlDeclaration) -> ast.ControlDeclaration:
        param_structs = self._param_structs(control.params)
        if not param_structs:
            return control
        rewriter = _StackStatementRewriter(self, param_structs)
        control.apply = rewriter.transform(control.apply)
        for local in control.locals:
            if isinstance(local, ast.ActionDeclaration):
                local.body = rewriter.transform(local.body)
        return control

    def lower_parser(self, parser: ast.ParserDeclaration) -> ast.ParserDeclaration:
        param_structs = self._param_structs(parser.params)
        if not param_structs:
            return parser
        rewriter = _StackStatementRewriter(self, param_structs)
        for state in parser.states:
            state.statements = [
                out
                for statement in state.statements
                for out in _as_list(rewriter.transform(statement))
            ]
            if state.select_expr is not None:
                state.select_expr = rewriter.transform(state.select_expr)
            for case in state.cases:
                if case.value is not None:
                    case.value = rewriter.transform(case.value)
        # Initialise every counter this parser ended up using on entry.
        # Parsers always enter through ``start``, but ``start`` may also be
        # a loop target -- re-running the init on every iteration would
        # reset the counter mid-parse, and a dedicated init state would
        # shift the unroll budget by one level relative to the unflattened
        # program (a budget asymmetry translation validation would see).
        # Instead the start body is duplicated into a loop copy and every
        # transition back to ``start`` retargets the copy: the init runs
        # exactly once and loop iterations sit at the same unroll depth.
        if rewriter.used_counters:
            start = parser.state("start")
            if start is not None:
                inits = [
                    ast.AssignmentStatement(
                        ast.Member(ast.PathExpression(root), counter),
                        ast.Constant(0, NEXT_INDEX_WIDTH),
                    )
                    for root, counter in sorted(rewriter.used_counters)
                ]
                if self._targets_start(parser):
                    taken = {state.name for state in parser.states}
                    loop_name = "start_loop"
                    while loop_name in taken:
                        loop_name += "_"
                    loop_state = ast.ParserState(
                        loop_name,
                        statements=[stmt.clone() for stmt in start.statements],
                        select_expr=(
                            start.select_expr.clone()
                            if start.select_expr is not None
                            else None
                        ),
                        cases=[case.clone() for case in start.cases],
                        next_state=start.next_state,
                    )
                    parser.states.append(loop_state)
                    for state in parser.states:
                        self._retarget(state, "start", loop_name)
                start.statements[0:0] = inits
        return parser

    @staticmethod
    def _targets_start(parser: ast.ParserDeclaration) -> bool:
        for state in parser.states:
            if state.next_state == "start":
                return True
            if any(case.next_state == "start" for case in state.cases):
                return True
        return False

    @staticmethod
    def _retarget(state: ast.ParserState, old: str, new: str) -> None:
        if state.next_state == old:
            state.next_state = new
        for case in state.cases:
            if case.next_state == old:
                case.next_state = new


def _as_list(transformed) -> List[ast.Statement]:
    if transformed is None:
        return []
    if isinstance(transformed, list):
        return transformed
    return [transformed]


class _StackStatementRewriter(Transformer):
    """Rewrites stack operations inside one control or parser."""

    def __init__(self, flattener: _StackFlattener, param_structs: Dict[str, str]) -> None:
        self.flattener = flattener
        self.param_structs = param_structs
        #: (root param name, counter field) pairs referenced by the rewrite.
        self.used_counters: Set[Tuple[str, str]] = set()

    def _counter_ref(self, stack_expr: ast.Member, struct_name: str, field: str):
        counter = self.flattener._counter_name(struct_name, field)
        root = stack_expr.expr.name  # the struct parameter
        self.used_counters.add((root, counter))
        return ast.Member(ast.PathExpression(root), counter)

    def visit_MethodCallStatement(self, stmt: ast.MethodCallStatement):
        call = stmt.call
        target = call.target
        if isinstance(target, ast.Member):
            # push_front / pop_front on a stack.
            if target.member in ("push_front", "pop_front"):
                info = self.flattener._stack_info(target.expr, self.param_structs)
                if info is not None and call.args and isinstance(call.args[0], ast.Constant):
                    _struct, _field, field_names, size = info
                    count = call.args[0].value
                    if target.member == "push_front":
                        self.flattener.record("push_front")
                        return stack_lowering.lower_push_front(
                            target.expr, field_names, size, count,
                            off_by_one=self.flattener.off_by_one,
                        )
                    self.flattener.record("pop_front")
                    return stack_lowering.lower_pop_front(
                        target.expr, field_names, size, count,
                        drop_validity=self.flattener.drop_validity,
                    )
            # extract(stack.next).
            if target.member == "extract" and call.args:
                arg = call.args[0]
                if isinstance(arg, ast.Member) and arg.member == "next":
                    info = self.flattener._stack_info(arg.expr, self.param_structs)
                    if info is not None:
                        struct_name, field, _field_names, size = info
                        counter = self._counter_ref(arg.expr, struct_name, field)
                        self.flattener.record("extract_next")
                        return stack_lowering.lower_extract_next(
                            arg.expr, counter, size
                        )
        return self.generic_visit(stmt)

    def visit_Member(self, node: ast.Member):
        # stack.last.<field> -> ternary chain over the elements.
        if isinstance(node.expr, ast.Member) and node.expr.member == "last":
            info = self.flattener._stack_info(node.expr.expr, self.param_structs)
            if info is not None:
                struct_name, field, _field_names, size = info
                counter = self._counter_ref(node.expr.expr, struct_name, field)
                self.flattener.record("last_field")
                return stack_lowering.last_field_expr(
                    node.expr.expr, counter, node.member, size
                )
        return self.generic_visit(node)


# ---------------------------------------------------------------------------
# StatefulLowering
# ---------------------------------------------------------------------------


class StatefulLowering(CompilerPass):
    """Lower counter banks onto register banks, counts onto register RMWs.

    Hardware targets implement counters with the same stateful ALU as
    registers, so the mid end rewrites every ``counter(N)`` declaration
    into a ``register<bit<32>>(N)`` bank under the *same name* (state keys
    stay stable across the pass) and splices a read-modify-write sequence
    in place of each ``count`` call.  The statement sequences come from
    :mod:`repro.p4.registers` -- the exact semantics both interpreters give
    the native ``count`` call -- so the correct pass is invisible to
    translation validation by construction.  Plain register ``read`` /
    ``write`` calls pass through unchanged.

    Seeded defects (each one a *stateful* miscompilation no packet-output
    oracle over single fresh-state packets can fully characterise):

    * ``stateful_rmw_lost_update`` -- the lowering caches the RMW scratch
      temporary per bank and block, so every ``count`` after the first
      reuses the first call's stale read: two counts on one cell increment
      it once,
    * ``stateful_read_write_reorder`` -- a "load scheduling" tweak hoists a
      register ``read`` above an immediately preceding ``write`` to the
      same bank, so same-cell read-after-write observes the old value,
    * ``stateful_spill_width_narrow`` -- written values are spilled through
      an 8-bit intermediary, so writes to banks wider than 8 bits lose
      their high bits (invisible on packet outputs until the state is read
      back, possibly packets later).
    """

    name = "StatefulLowering"
    location = "mid_end"

    def run(self, program: ast.Program, context: PassContext) -> ast.Program:
        has_state = any(
            isinstance(local, (ast.RegisterDeclaration, ast.CounterDeclaration))
            for control in program.controls()
            for local in control.locals
        )
        if not has_state:
            return program
        program = program.clone()
        lowerer = _StatefulLowerer(
            context,
            lost_update=context.bug_enabled("stateful_rmw_lost_update"),
            reorder=context.bug_enabled("stateful_read_write_reorder"),
            narrow_spill=context.bug_enabled("stateful_spill_width_narrow"),
        )
        for control in program.controls():
            lowerer.lower_control(control)
        return program


class _StatefulLowerer:
    """Per-control rewriting of counter declarations and state calls."""

    def __init__(
        self,
        context: PassContext,
        lost_update: bool,
        reorder: bool,
        narrow_spill: bool,
    ) -> None:
        self.context = context
        self.lost_update = lost_update
        self.reorder = reorder
        self.narrow_spill = narrow_spill
        self.record = context.rule_recorder("StatefulLowering")
        #: bank name -> cell width *after* lowering, for the current control.
        self.widths: Dict[str, int] = {}

    def lower_control(self, control: ast.ControlDeclaration) -> None:
        self.widths = {}
        new_locals: List[ast.Declaration] = []
        for local in control.locals:
            if isinstance(local, ast.CounterDeclaration):
                self.record("counter_to_register")
                new_locals.append(register_lowering.counter_register(local))
                self.widths[local.name] = register_lowering.COUNTER_WIDTH
            else:
                if isinstance(local, ast.RegisterDeclaration):
                    self.widths[local.name] = local.width
                new_locals.append(local)
        if not self.widths:
            return
        control.locals = new_locals
        control.apply = self._lower_block(control.apply)
        for local in control.locals:
            if isinstance(local, ast.ActionDeclaration):
                local.body = self._lower_block(local.body)

    # -- statement rewriting ------------------------------------------------

    def _lower_block(self, block: ast.BlockStatement) -> ast.BlockStatement:
        statements: List[ast.Statement] = []
        #: bank -> first RMW temp of this statement list (lost-update hook).
        temps: Dict[str, str] = {}
        for statement in block.statements:
            statements.extend(self._lower_statement(statement, temps))
        if self.reorder:
            statements = self._reorder(statements)
        return ast.BlockStatement(statements)

    def _lower_statement(
        self, statement: ast.Statement, temps: Dict[str, str]
    ) -> List[ast.Statement]:
        if isinstance(statement, ast.BlockStatement):
            return [self._lower_block(statement)]
        if isinstance(statement, ast.IfStatement):
            statement.then_branch = self._lower_block(statement.then_branch)
            if statement.else_branch is not None:
                statement.else_branch = self._lower_block(statement.else_branch)
            return [statement]
        bank_method = self._state_call(statement)
        if bank_method is None:
            return [statement]
        bank, method = bank_method
        width = self.widths[bank]
        call = statement.call
        if method == "count":
            index = call.args[0]
            cached = temps.get(bank)
            if self.lost_update and cached is not None:
                # Seeded defect: reuse the first count's stale temporary
                # instead of re-reading the cell.
                self.record("count_rmw_cached")
                lowered = register_lowering.lower_count(
                    bank, index, cached, emit_read=False
                )
            else:
                self.record("count_rmw")
                temp = self.context.fresh_name(f"{bank}_rmw")
                temps.setdefault(bank, temp)
                lowered = register_lowering.lower_count(bank, index, temp)
            return [self._narrow_write(out, width) for out in lowered]
        if method == "write":
            return [self._narrow_write(statement, width)]
        return [statement]  # read: identity

    def _narrow_write(self, statement: ast.Statement, width: int) -> ast.Statement:
        """Apply the seeded spill-narrowing defect to one write statement."""

        if not self.narrow_spill or width <= 8:
            return statement
        if self._state_call(statement) is None or statement.call.target.member != "write":
            return statement
        self.record("narrow_spill")
        statement.call.args[1] = register_lowering.narrowed_value(
            statement.call.args[1], width
        )
        return statement

    def _state_call(
        self, statement: ast.Statement
    ) -> Optional[Tuple[str, str]]:
        """``(bank, method)`` when the statement is a state call on a bank."""

        if not isinstance(statement, ast.MethodCallStatement):
            return None
        target = statement.call.target
        if (
            isinstance(target, ast.Member)
            and isinstance(target.expr, ast.PathExpression)
            and target.expr.name in self.widths
            and target.member in ("read", "write", "count")
        ):
            return target.expr.name, target.member
        return None

    def _reorder(self, statements: List[ast.Statement]) -> List[ast.Statement]:
        """Seeded defect: hoist a read above the write right before it."""

        out = list(statements)
        index = 0
        while index + 1 < len(out):
            first = self._state_call(out[index])
            second = self._state_call(out[index + 1])
            if (
                first is not None
                and second is not None
                and first[1] == "write"
                and second[1] == "read"
                and first[0] == second[0]
            ):
                self.record("read_write_swap")
                out[index], out[index + 1] = out[index + 1], out[index]
                index += 2
                continue
            index += 1
        return out


# ---------------------------------------------------------------------------
# ConstantFolding
# ---------------------------------------------------------------------------


class ConstantFolding(CompilerPass):
    """Fold arithmetic/logical expressions whose operands are literals.

    Seeded defect ``constant_folding_no_mask``: subtraction is folded without
    modular wrap-around, so ``8w1 - 8w2`` becomes ``0`` instead of ``255``.
    """

    name = "ConstantFolding"
    location = "mid_end"

    def run(self, program: ast.Program, context: PassContext) -> ast.Program:
        folder = _ConstantFolder(
            context.bug_enabled("constant_folding_no_mask"),
            record=context.rule_recorder(self.name),
        )
        return folder.transform_program(program.clone())


class _ConstantFolder(Transformer):
    def __init__(self, underflow_bug: bool, record=null_recorder) -> None:
        self.underflow_bug = underflow_bug
        self.record = record

    def visit_BinaryOp(self, node: ast.BinaryOp) -> ast.Expression:
        node = self.generic_visit(node)
        left, right = node.left, node.right
        if not isinstance(left, ast.Constant) or not isinstance(right, ast.Constant):
            return node
        width = left.width or right.width
        if node.op in ("&&", "||"):
            return node
        if node.op == "++":
            if left.width is None or right.width is None:
                return node
            value = (left.value << right.width) | right.value
            self.record("fold_concat")
            return ast.Constant(value, left.width + right.width)
        value = self._fold(node.op, left.value, right.value, width)
        if value is None:
            return node
        if isinstance(value, bool):
            self.record("fold_comparison")
            return ast.BoolLiteral(value)
        if width is not None:
            value &= _mask(width)
        self.record("fold_binop")
        return ast.Constant(value, width)

    def visit_UnaryOp(self, node: ast.UnaryOp) -> ast.Expression:
        node = self.generic_visit(node)
        operand = node.expr
        if isinstance(operand, ast.Constant) and operand.width is not None:
            if node.op == "~":
                self.record("fold_unary")
                return ast.Constant((~operand.value) & _mask(operand.width), operand.width)
            if node.op == "-":
                self.record("fold_unary")
                return ast.Constant((-operand.value) & _mask(operand.width), operand.width)
        if isinstance(operand, ast.BoolLiteral) and node.op == "!":
            self.record("fold_unary")
            return ast.BoolLiteral(not operand.value)
        return node

    def visit_Ternary(self, node: ast.Ternary) -> ast.Expression:
        node = self.generic_visit(node)
        if isinstance(node.cond, ast.BoolLiteral):
            self.record("fold_ternary")
            return node.then if node.cond.value else node.orelse
        return node

    def _fold(self, op: str, left: int, right: int, width: Optional[int]):
        if op == "+":
            return left + right
        if op == "-":
            if self.underflow_bug:
                # Seeded defect: clamp at zero instead of wrapping.
                return max(0, left - right)
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return left // right if right != 0 else None
        if op == "%":
            return left % right if right != 0 else None
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        if op == "<<":
            if width is not None and right >= width:
                return 0
            return left << right
        if op == ">>":
            return left >> right
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        return None


# ---------------------------------------------------------------------------
# StrengthReduction
# ---------------------------------------------------------------------------


class StrengthReduction(CompilerPass):
    """Replace expensive operators with cheaper equivalents.

    Seeded defects:

    * ``strength_reduction_shift_semantics`` -- ``x * 2^k`` becomes
      ``x << (k + 1)``,
    * ``strength_reduction_negative_slice`` -- rewriting a shift by a
      constant larger than the operand width computes a negative slice
      index and fails an internal check (figure 5c).
    """

    name = "StrengthReduction"
    location = "mid_end"

    def run(self, program: ast.Program, context: PassContext) -> ast.Program:
        reducer = _StrengthReducer(
            off_by_one=context.bug_enabled("strength_reduction_shift_semantics"),
            negative_slice=context.bug_enabled("strength_reduction_negative_slice"),
            name_widths=_collect_name_widths(program),
            record=context.rule_recorder(self.name),
        )
        return reducer.transform_program(program.clone())


def _collect_name_widths(program: ast.Program) -> Dict[str, Optional[int]]:
    """Bit widths of header fields and locals, by (unqualified) name.

    The zero-fold needs the width of arbitrary operands, but mid-end passes
    work without a type environment; names declared with conflicting widths
    map to ``None`` (unknown), so the lookup never guesses wrong -- it only
    refuses to pin a width down.
    """

    widths: Dict[str, Optional[int]] = {}

    def record(name: str, width: int) -> None:
        if name in widths and widths[name] != width:
            widths[name] = None
        else:
            widths.setdefault(name, width)

    for header in program.headers():
        for field_name, field_type in header.fields:
            if isinstance(field_type, BitType):
                record(field_name, field_type.width)
    for node in ast.walk(program):
        if isinstance(node, ast.VariableDeclaration) and isinstance(
            node.var_type, BitType
        ):
            record(node.name, node.var_type.width)
    return widths


def _log2_exact(value: int) -> Optional[int]:
    if value <= 0 or value & (value - 1):
        return None
    return value.bit_length() - 1


class _StrengthReducer(Transformer):
    def __init__(
        self,
        off_by_one: bool,
        negative_slice: bool,
        name_widths: Optional[Dict[str, Optional[int]]] = None,
        record=null_recorder,
    ) -> None:
        self.off_by_one = off_by_one
        self.negative_slice = negative_slice
        self.name_widths = name_widths or {}
        self.record = record

    def visit_BinaryOp(self, node: ast.BinaryOp) -> ast.Expression:
        node = self.generic_visit(node)
        left, right = node.left, node.right

        if self.negative_slice and node.op in ("<<", ">>"):
            if isinstance(right, ast.Constant):
                # The operand width is taken from the left operand when known
                # and otherwise from the amount literal itself (P4 shifts are
                # homogeneous in the programs the generator produces).
                width = (
                    _constant_width(left)
                    or self._expr_width_hint(left)
                    or right.width
                )
                if width is not None and right.value >= width:
                    # The defective rewrite computes slice bounds
                    # [width - amount - 1 : 0], which is negative here.
                    self.record("negative_slice_crash")
                    raise CompilerCrash(
                        f"slice index {width - right.value - 1} is negative",
                        pass_name="StrengthReduction",
                        signature="negative-slice-index",
                    )

        if node.op == "*" and isinstance(right, ast.Constant) and right.width is not None:
            power = _log2_exact(right.value)
            if power is not None and power > 0:
                shift = power + 1 if self.off_by_one else power
                self.record("mul_to_shift")
                return ast.BinaryOp("<<", left, ast.Constant(shift, right.width))
        if node.op == "*" and isinstance(left, ast.Constant) and left.width is not None:
            power = _log2_exact(left.value)
            if power is not None and power > 0:
                shift = power + 1 if self.off_by_one else power
                self.record("mul_to_shift")
                return ast.BinaryOp("<<", right, ast.Constant(shift, left.width))

        # Identity simplifications.
        if node.op in ("+", "-", "|", "^", "<<", ">>") and self._is_zero(right):
            self.record("identity_zero")
            return left
        if node.op in ("+", "|", "^") and self._is_zero(left):
            self.record("identity_zero")
            return right
        if node.op == "*" and (self._is_zero(left) or self._is_zero(right)):
            self.record("mul_zero")
            return ast.Constant(0, self._zero_fold_width(left, right))
        if node.op == "*" and self._is_one(right):
            self.record("mul_one")
            return left
        if node.op == "*" and self._is_one(left):
            self.record("mul_one")
            return right
        if node.op == "/" and self._is_one(right):
            self.record("div_one")
            return left
        if node.op == "&" and (self._is_zero(left) or self._is_zero(right)):
            self.record("and_zero")
            return ast.Constant(0, self._zero_fold_width(left, right))
        return node

    def _zero_fold_width(
        self, left: ast.Expression, right: ast.Expression
    ) -> Optional[int]:
        """Width of the constant replacing ``x * 0`` / ``x & 0``.

        The width used to come from the zero literal alone: a width-less
        zero next to a typed operand then produced a width-less constant,
        which downstream consumers re-infer as ``bit<32>`` -- changing the
        width of any enclosing concatenation or comparison.  Prefer either
        operand's known width and only stay width-less when neither side
        pins one down.
        """

        zero, other = (left, right) if self._is_zero(left) else (right, left)
        return _constant_width(zero) or self._operand_width(other)

    def _operand_width(self, expr: ast.Expression) -> Optional[int]:
        """Best-effort operand width for the zero-fold.

        Extends the structural :meth:`_expr_width_hint` (which the seeded
        negative-slice defect also uses and therefore must not change) with
        declaration-derived widths of header fields and locals.
        """

        hint = self._expr_width_hint(expr)
        if hint is not None:
            return hint
        if isinstance(expr, ast.Member):
            return self.name_widths.get(expr.member)
        if isinstance(expr, ast.PathExpression):
            return self.name_widths.get(expr.name)
        if isinstance(expr, ast.Cast) and isinstance(expr.target, BitType):
            return expr.target.width
        return None

    @staticmethod
    def _is_zero(expr: ast.Expression) -> bool:
        return isinstance(expr, ast.Constant) and expr.value == 0

    @staticmethod
    def _is_one(expr: ast.Expression) -> bool:
        return isinstance(expr, ast.Constant) and expr.value == 1

    @staticmethod
    def _expr_width_hint(expr: ast.Expression) -> Optional[int]:
        if isinstance(expr, ast.Constant):
            return expr.width
        if isinstance(expr, ast.Slice):
            return expr.high - expr.low + 1
        return None


# ---------------------------------------------------------------------------
# Predication
# ---------------------------------------------------------------------------


class Predication(CompilerPass):
    """Convert if statements inside action bodies into predicated assignments.

    Hardware targets cannot branch inside actions, so p4c rewrites

    ``if (c) { x = e; }``   into   ``x = c ? e : x;``

    Seeded defects:

    * ``predication_nested_else_lost`` -- assignments in the else branch of a
      nested if are dropped,
    * ``midend_emit_missing_parens`` -- the rewrite introduces a temporary
      whose name is not a valid identifier, so the emitted program no longer
      parses (an "invalid transformation").
    """

    name = "Predication"
    location = "mid_end"

    def run(self, program: ast.Program, context: PassContext) -> ast.Program:
        program = program.clone()
        for control in program.controls():
            for local in control.locals:
                if isinstance(local, ast.ActionDeclaration):
                    local.body = self._predicate_block(local.body, context)
        return program

    def _predicate_block(
        self, block: ast.BlockStatement, context: PassContext
    ) -> ast.BlockStatement:
        statements: List[ast.Statement] = []
        for statement in block.statements:
            if isinstance(statement, ast.IfStatement) and self._only_assignments(statement):
                statements.extend(self._predicate_if(statement, context))
            else:
                statements.append(statement)
        return ast.BlockStatement(statements)

    def _only_assignments(self, statement: ast.IfStatement) -> bool:
        for node in ast.walk(statement):
            if isinstance(node, ast.Statement) and not isinstance(
                node,
                (
                    ast.IfStatement,
                    ast.BlockStatement,
                    ast.AssignmentStatement,
                    ast.EmptyStatement,
                ),
            ):
                return False
        return True

    def _predicate_if(
        self, statement: ast.IfStatement, context: PassContext
    ) -> List[ast.Statement]:
        drop_nested_else = context.bug_enabled("predication_nested_else_lost")
        bad_name = context.bug_enabled("midend_emit_missing_parens")
        record = context.rule_recorder(self.name)
        record("predicate_if")
        out: List[ast.Statement] = []

        cond_name = context.fresh_name("pred")
        if bad_name:
            # Seeded defect: the generated temporary is not a legal identifier,
            # so the emitted program cannot be reparsed.
            cond_name = f"pred cond{cond_name[-1]}"
        out.append(ast.VariableDeclaration(cond_name, _bool_type(), statement.cond))
        cond_ref = ast.PathExpression(cond_name)

        def emit_assignments(
            node: ast.Statement, condition: ast.Expression, nested: bool
        ) -> None:
            if isinstance(node, ast.BlockStatement):
                for child in node.statements:
                    emit_assignments(child, condition, nested)
                return
            if isinstance(node, ast.AssignmentStatement):
                record("predicated_assign")
                out.append(
                    ast.AssignmentStatement(
                        node.lhs.clone(),
                        ast.Ternary(condition.clone(), node.rhs.clone(), node.lhs.clone()),
                    )
                )
                return
            if isinstance(node, ast.IfStatement):
                record("nested_if_hoist")
                # Hoist the nested condition into a temporary *at this
                # sequence point*: the predicated assignments emitted for
                # earlier statements may write variables the condition
                # reads, so re-evaluating it inline (in the guard of every
                # nested assignment) would observe the wrong values.
                nested_name = context.fresh_name("pred")
                out.append(
                    ast.VariableDeclaration(nested_name, _bool_type(), node.cond.clone())
                )
                nested_ref = ast.PathExpression(nested_name)
                nested_cond = ast.BinaryOp("&&", condition.clone(), nested_ref)
                emit_assignments(node.then_branch, nested_cond, nested=True)
                if node.else_branch is not None:
                    if drop_nested_else:
                        return  # seeded defect: nested else assignments vanish
                    negated = ast.BinaryOp(
                        "&&", condition.clone(), ast.UnaryOp("!", nested_ref.clone())
                    )
                    emit_assignments(node.else_branch, negated, nested=True)
                return
            if isinstance(node, ast.EmptyStatement):
                return
            raise AssertionError("predication saw an unexpected statement")

        emit_assignments(statement.then_branch, cond_ref, nested=False)
        if statement.else_branch is not None:
            negated = ast.UnaryOp("!", cond_ref.clone())
            if drop_nested_else and _contains_if(statement.else_branch):
                record("else_dropped")  # seeded defect: the else branch vanishes
            else:
                record("else_predicated")
                emit_assignments(statement.else_branch, negated, nested=False)
        return out


def _contains_if(node: ast.Node) -> bool:
    return any(isinstance(sub, ast.IfStatement) for sub in ast.walk(node))


def _bool_type():
    from repro.p4.types import BoolType

    return BoolType()


# ---------------------------------------------------------------------------
# LocalCopyPropagation
# ---------------------------------------------------------------------------


class LocalCopyPropagation(CompilerPass):
    """Propagate constants assigned to locals and header fields.

    Propagation is limited to straight-line code: any branch, table apply or
    action call invalidates all facts.  The correct implementation also kills
    facts about a header's fields when the header's validity changes; the
    seeded ``copy_prop_across_invalid`` defect does not (figure 5e).
    """

    name = "LocalCopyPropagation"
    location = "mid_end"

    def run(self, program: ast.Program, context: PassContext) -> ast.Program:
        program = program.clone()
        propagate_across_validity = context.bug_enabled("copy_prop_across_invalid")
        record = context.rule_recorder(self.name)
        for control in program.controls():
            control.apply = _propagate_block(
                control.apply, propagate_across_validity, record
            )
        return program


def _propagate_block(
    block: ast.BlockStatement, across_validity: bool, record=null_recorder
) -> ast.BlockStatement:
    facts: Dict[str, ast.Expression] = {}
    statements: List[ast.Statement] = []
    #: Header paths (e.g. ``hdr.h``) *known to be valid* at the current
    #: point: a top-level ``setValid()`` was seen and nothing since could
    #: have changed the validity.  The correct pass only learns facts about
    #: a header's fields while the header is known valid -- a write to a
    #: field of a possibly-invalid header is a no-op and a read yields an
    #: undefined value, so propagating the written constant would be
    #: unsound.  (Validity is unknown at block entry: it is a symbolic
    #: input.)  The seeded ``copy_prop_across_invalid`` defect skips every
    #: validity consideration.
    known_valid: Set[str] = set()

    def substitute_facts(expr: ast.Expression) -> ast.Expression:
        class _Subst(Transformer):
            def visit_PathExpression(self, node: ast.PathExpression):
                fact = facts.get(node.name)
                if fact is not None:
                    record("substitute_local")
                    return fact.clone()
                return node

            def visit_Member(self, node: ast.Member):
                fact = facts.get(str(node))
                if fact is not None:
                    record("substitute_field")
                    return fact.clone()
                return self.generic_visit(node)

            def visit_MethodCallExpression(self, node: ast.MethodCallExpression):
                # Never rewrite the callee of isValid()/apply() etc.
                return node

        return _Subst().transform(expr.clone())

    def kill_root(root: Optional[str]) -> None:
        if root is None:
            facts.clear()
            return
        for key in list(facts):
            if key == root or key.startswith(f"{root}."):
                del facts[key]
        # Facts whose value mentions the root are stale too.
        for key, value in list(facts.items()):
            if any(
                isinstance(node, ast.PathExpression) and node.name == root
                for node in ast.walk(value)
            ):
                del facts[key]

    def may_learn(lhs: ast.Expression) -> bool:
        if isinstance(lhs, ast.PathExpression):
            return True  # locals have no validity bit
        if isinstance(lhs, ast.Member):
            if across_validity:
                return True  # seeded defect: ignore validity entirely
            return str(lhs.expr) in known_valid
        return False

    for statement in block.statements:
        if isinstance(statement, ast.AssignmentStatement):
            rhs = substitute_facts(statement.rhs)
            statement = ast.AssignmentStatement(statement.lhs, rhs)
            statements.append(statement)
            kill_root(ast.lvalue_root(statement.lhs))
            if isinstance(rhs, ast.Constant) and may_learn(statement.lhs):
                record("learn_fact")
                facts[str(statement.lhs)] = rhs
        elif isinstance(statement, ast.VariableDeclaration):
            initializer = (
                substitute_facts(statement.initializer)
                if statement.initializer is not None
                else None
            )
            statement = ast.VariableDeclaration(statement.name, statement.var_type, initializer)
            statements.append(statement)
            if isinstance(initializer, ast.Constant):
                record("learn_fact")
                facts[statement.name] = initializer
        elif isinstance(statement, ast.MethodCallStatement):
            call = statement.call
            statements.append(statement)
            if isinstance(call.target, ast.Member) and call.target.member in (
                "setValid",
                "setInvalid",
            ):
                header = str(call.target.expr)
                if not across_validity:
                    kill_root(ast.lvalue_root(call.target.expr))
                    if call.target.member == "setValid":
                        known_valid.add(header)
                    else:
                        known_valid.discard(header)
            else:
                # Table applies / action calls can write fields and toggle
                # validity of any header.
                facts.clear()
                known_valid.clear()
        else:
            # Branches and anything else end the straight-line window; they
            # may also contain validity toggles, so validity knowledge is
            # conservatively discarded too.
            statements.append(statement)
            facts.clear()
            known_valid.clear()
    return ast.BlockStatement(statements)


# ---------------------------------------------------------------------------
# DeadCodeElimination
# ---------------------------------------------------------------------------


class DeadCodeElimination(CompilerPass):
    """Remove unreachable statements and branches with constant conditions.

    The seeded ``dead_code_removes_validity_call`` defect also removes
    ``setValid()``/``setInvalid()`` statements from conditional branches,
    wrongly assuming header validity updates have no observable effect.
    """

    name = "DeadCodeElimination"
    location = "mid_end"

    def run(self, program: ast.Program, context: PassContext) -> ast.Program:
        eliminator = _DeadCodeEliminator(
            drop_validity_calls=context.bug_enabled("dead_code_removes_validity_call"),
            record=context.rule_recorder(self.name),
        )
        return eliminator.transform_program(program.clone())


class _DeadCodeEliminator(Transformer):
    def __init__(self, drop_validity_calls: bool, record=null_recorder) -> None:
        self.drop_validity_calls = drop_validity_calls
        self.record = record

    def visit_BlockStatement(self, block: ast.BlockStatement) -> ast.BlockStatement:
        statements: List[ast.Statement] = []
        for position, statement in enumerate(block.statements):
            transformed = self.transform(statement)
            if transformed is None:
                continue
            if isinstance(transformed, list):
                statements.extend(transformed)
            else:
                statements.append(transformed)
            # Everything after a statement that always terminates the block
            # is dead.  A constant-condition if that collapsed into its
            # branch block ends the enclosing block too when that branch
            # ends in exit/return -- the historical check only looked for a
            # literal exit/return node and let the trailing statements
            # survive into the back ends.
            if statements and self._terminates(statements[-1]):
                if position + 1 < len(block.statements):
                    self.record("dead_tail")
                break
        return ast.BlockStatement(statements)

    @classmethod
    def _terminates(cls, statement: ast.Statement) -> bool:
        if isinstance(statement, (ast.ExitStatement, ast.ReturnStatement)):
            return True
        if isinstance(statement, ast.BlockStatement) and statement.statements:
            return cls._terminates(statement.statements[-1])
        return False

    def visit_EmptyStatement(self, statement: ast.EmptyStatement):
        self.record("drop_empty_statement")
        return None

    def visit_MethodCallStatement(self, statement: ast.MethodCallStatement):
        return statement

    def visit_IfStatement(self, statement: ast.IfStatement):
        cond = statement.cond
        then_branch = self.visit_BlockStatement(statement.then_branch)
        else_branch = (
            self.visit_BlockStatement(statement.else_branch)
            if statement.else_branch is not None
            else None
        )
        if self.drop_validity_calls:
            stripped = self._strip_validity_calls(then_branch)
            if len(stripped.statements) != len(then_branch.statements):
                self.record("strip_validity")
            then_branch = stripped
            if else_branch is not None:
                stripped = self._strip_validity_calls(else_branch)
                if len(stripped.statements) != len(else_branch.statements):
                    self.record("strip_validity")
                else_branch = stripped
        if isinstance(cond, ast.BoolLiteral):
            self.record("collapse_constant_if")
            return then_branch if cond.value else (else_branch or None)
        if not then_branch.statements and (else_branch is None or not else_branch.statements):
            self.record("drop_empty_if")
            return None
        if else_branch is not None and not else_branch.statements:
            else_branch = None
        return ast.IfStatement(cond, then_branch, else_branch)

    @staticmethod
    def _strip_validity_calls(block: ast.BlockStatement) -> ast.BlockStatement:
        statements = [
            statement
            for statement in block.statements
            if not (
                isinstance(statement, ast.MethodCallStatement)
                and isinstance(statement.call.target, ast.Member)
                and statement.call.target.member in ("setValid", "setInvalid")
            )
        ]
        return ast.BlockStatement(statements)


# ---------------------------------------------------------------------------
# SimplifyControlFlow
# ---------------------------------------------------------------------------


class SimplifyControlFlow(CompilerPass):
    """Flatten nested blocks and drop degenerate if statements.

    The seeded ``simplify_control_flow_empty_if`` defect removes an if
    statement entirely when its then branch is empty, losing the else branch.
    """

    name = "SimplifyControlFlow"
    location = "mid_end"

    def run(self, program: ast.Program, context: PassContext) -> ast.Program:
        simplifier = _ControlFlowSimplifier(
            drop_else_with_empty_then=context.bug_enabled("simplify_control_flow_empty_if"),
            record=context.rule_recorder(self.name),
        )
        return simplifier.transform_program(program.clone())


class _ControlFlowSimplifier(Transformer):
    def __init__(self, drop_else_with_empty_then: bool, record=null_recorder) -> None:
        self.drop_else_with_empty_then = drop_else_with_empty_then
        self.record = record

    def visit_BlockStatement(self, block: ast.BlockStatement) -> ast.BlockStatement:
        statements: List[ast.Statement] = []
        for statement in block.statements:
            transformed = self.transform(statement)
            if transformed is None:
                continue
            if isinstance(transformed, ast.BlockStatement) and not any(
                isinstance(node, ast.VariableDeclaration)
                for node in transformed.statements
            ):
                # Inline nested blocks that do not declare anything.
                self.record("inline_block")
                statements.extend(transformed.statements)
            elif isinstance(transformed, list):
                statements.extend(transformed)
            else:
                statements.append(transformed)
        return ast.BlockStatement(statements)

    def visit_EmptyStatement(self, statement: ast.EmptyStatement):
        self.record("drop_empty_statement")
        return None

    def visit_IfStatement(self, statement: ast.IfStatement):
        then_branch = self._transform_branch(statement.then_branch)
        else_branch = (
            self._transform_branch(statement.else_branch)
            if statement.else_branch is not None
            else None
        )
        if not then_branch.statements:
            if self.drop_else_with_empty_then:
                self.record("empty_then_dropped")
                return None  # seeded defect: else branch is lost
            if else_branch is None or not else_branch.statements:
                self.record("drop_empty_if")
                return None
            self.record("negate_empty_then")
            return ast.IfStatement(
                ast.UnaryOp("!", statement.cond), else_branch, None
            )
        if else_branch is not None and not else_branch.statements:
            else_branch = None
        return ast.IfStatement(statement.cond, then_branch, else_branch)

    def _transform_branch(self, block: ast.BlockStatement) -> ast.BlockStatement:
        transformed = self.transform(block)
        if isinstance(transformed, ast.BlockStatement):
            return transformed
        return ast.BlockStatement([transformed])


#: The default mid-end pipeline, in execution order.  Stacks flatten first
#: so every later optimisation sees only scalar-header element accesses;
#: counters lower onto registers right after, so the rest of the mid end
#: sees only one stateful primitive.
MIDEND_PASSES = (
    CheckNoFunctionCalls,
    HeaderStackFlattening,
    StatefulLowering,
    ConstantFolding,
    StrengthReduction,
    Predication,
    LocalCopyPropagation,
    DeadCodeElimination,
    SimplifyControlFlow,
)
