"""Pass manager: run a pipeline and record a snapshot after every pass.

This is the equivalent of running ``p4test --top4`` in the paper: the
manager emits the transformed program after each pass so the translation
validator can compare consecutive snapshots and pinpoint the defective pass.
Snapshots whose emitted source is identical to their predecessor are marked
unchanged and skipped by the validator, exactly as Gauntlet skips emitted
programs with an identical hash (§5.2).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.compiler.coverage import CoverageMap
from repro.compiler.errors import CompilerCrash, CompilerError
from repro.compiler.options import CompilerOptions
from repro.compiler.passes import CompilerPass, PassContext
from repro.p4 import ast
from repro.p4.emitter import emit_program


@dataclass
class PassSnapshot:
    """The program as it looked after one pass."""

    pass_name: str
    location: str
    program: ast.Program
    source: str
    changed: bool

    @property
    def digest(self) -> str:
        return hashlib.sha256(self.source.encode()).hexdigest()


@dataclass
class CompilationResult:
    """Everything a compilation run produced."""

    options: CompilerOptions
    snapshots: List[PassSnapshot] = field(default_factory=list)
    crash: Optional[CompilerCrash] = None
    error: Optional[CompilerError] = None
    #: Pass-fired bits and rewrite-rule hit counters collected during the run.
    #: Shared with the :class:`~repro.compiler.passes.PassContext`, so it is
    #: populated even when a pass crashed or rejected the program.
    coverage: CoverageMap = field(default_factory=CoverageMap)

    @property
    def succeeded(self) -> bool:
        return self.crash is None and self.error is None

    @property
    def crashed(self) -> bool:
        return self.crash is not None

    @property
    def rejected(self) -> bool:
        return self.error is not None

    @property
    def final_program(self) -> ast.Program:
        if not self.snapshots:
            raise ValueError("compilation produced no snapshots")
        return self.snapshots[-1].program

    def changed_snapshots(self) -> List[PassSnapshot]:
        """Snapshots that actually modified the program (plus the input)."""

        out = [self.snapshots[0]] if self.snapshots else []
        out.extend(snapshot for snapshot in self.snapshots[1:] if snapshot.changed)
        return out


class PassManager:
    """Run a sequence of passes over a program, collecting snapshots."""

    def __init__(self, passes: Sequence[CompilerPass], options: CompilerOptions) -> None:
        self.passes = [p for p in passes if p.name not in options.skip_passes]
        self.options = options

    def run(self, program: ast.Program) -> CompilationResult:
        result = CompilationResult(options=self.options)
        context = PassContext(options=self.options)
        result.coverage = context.coverage
        source = emit_program(program)
        result.snapshots.append(
            PassSnapshot("input", "input", program, source, changed=True)
        )
        current = program
        previous_source = source
        for compiler_pass in self.passes:
            try:
                transformed = compiler_pass.run(current, context)
            except CompilerCrash as crash:
                if not crash.pass_name:
                    crash.pass_name = compiler_pass.name
                result.crash = crash
                return result
            except CompilerError as error:
                result.error = error
                return result
            except RecursionError as exc:
                result.crash = CompilerCrash(
                    f"recursion limit exceeded: {exc}",
                    pass_name=compiler_pass.name,
                    signature="recursion-limit",
                )
                return result
            except Exception as exc:  # noqa: BLE001 - any escape is a crash bug
                result.crash = CompilerCrash(
                    f"unhandled {type(exc).__name__}: {exc}",
                    pass_name=compiler_pass.name,
                    signature=f"unhandled-{type(exc).__name__}",
                )
                return result
            new_source = emit_program(transformed)
            changed = new_source != previous_source
            if changed:
                context.coverage.record_pass(compiler_pass.name)
            if self.options.emit_after_each_pass or changed:
                result.snapshots.append(
                    PassSnapshot(
                        compiler_pass.name,
                        compiler_pass.location,
                        transformed,
                        new_source,
                        changed=changed,
                    )
                )
            current = transformed
            previous_source = new_source
        return result
