"""Compiler error hierarchy.

The distinction between the two exception types mirrors the paper's bug
taxonomy (§2.1):

* :class:`CompilerError` is a *graceful* rejection: the input program is
  invalid and the compiler reports a useful error message.  These are not
  compiler bugs.
* :class:`CompilerCrash` is an *abnormal termination*: an internal assertion
  fired, a pass produced malformed IR, or an unexpected exception escaped.
  Gauntlet classifies these as crash bugs and deduplicates them by their
  assertion signature.
"""

from __future__ import annotations


class CompilerError(Exception):
    """A graceful, expected rejection of an invalid input program."""


class CompilerCrash(Exception):
    """Abnormal compiler termination (assertion violation / internal error)."""

    def __init__(self, message: str, pass_name: str = "", signature: str = "") -> None:
        super().__init__(message)
        self.pass_name = pass_name
        #: A short stable identifier used for crash deduplication, similar to
        #: how Gauntlet dedupes p4c crashes by their assertion message.
        self.signature = signature or message

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        location = f" [{self.pass_name}]" if self.pass_name else ""
        return f"compiler crash{location}: {super().__str__()}"
