"""A nanopass P4 compiler -- the system under test.

The package mirrors the structure of P4C (paper §3): a front end that
desugars and analyses the program, a mid end that optimises it, and
target-specific back ends (in :mod:`repro.targets`).  The pass manager can
emit the transformed program after every pass, which is the hook Gauntlet's
translation validation uses.

Because the historical p4c defects are not available offline, the compiler
carries an explicit catalog of *seeded bugs* (:mod:`repro.compiler.bugs`),
one per root-cause class reported in the paper.  A bug is dormant unless it
is listed in :class:`CompilerOptions.enabled_bugs`; with no bugs enabled the
compiler is intended to be correct, and the test suite checks that.

Header stacks
-------------

Header stacks reach the mid end untouched by the front end and are lowered
by the ``HeaderStackFlattening`` pass (first optimisation in
:data:`repro.compiler.midend.MIDEND_PASSES`): ``push_front``/``pop_front``
become explicit element-by-element moves, ``extract(stack.next)`` becomes a
constant-indexed validity if-chain driven by a scalar ``<stack>_nextIndex``
struct field (initialised once on parser entry; loop-backs target a
duplicated start body so the init is not re-run and the unroll budget stays
aligned with the unflattened program), and ``stack.last.<field>`` reads
become ternary chains.  The statement recipes live in
:mod:`repro.p4.stacks` and are *shared with both interpreters*, which makes
the correct lowering semantically invisible to translation validation by
construction.  Two seeded defects live in this pass
(``stack_flatten_next_index_off_by_one``,
``stack_flatten_pop_validity_drop``); after it runs, the only stack surface
the back ends ever see is constant-indexed element access, which behaves
like a scalar header.
"""

from repro.compiler.errors import CompilerCrash, CompilerError
from repro.compiler.options import CompilerOptions
from repro.compiler.bugs import BUG_CATALOG, SeededBug, bugs_by_kind, bugs_by_location
from repro.compiler.coverage import CoverageMap, merge_coverage_dicts, program_features
from repro.compiler.pass_manager import CompilationResult, PassManager, PassSnapshot
from repro.compiler.compiler import (
    P4Compiler,
    clear_prefix_cache,
    compile_front_midend,
    compile_prefix,
    prefix_cache_stats,
)

__all__ = [
    "CompilerCrash",
    "CompilerError",
    "CompilerOptions",
    "CoverageMap",
    "merge_coverage_dicts",
    "program_features",
    "BUG_CATALOG",
    "SeededBug",
    "bugs_by_kind",
    "bugs_by_location",
    "CompilationResult",
    "PassManager",
    "PassSnapshot",
    "P4Compiler",
    "compile_front_midend",
    "compile_prefix",
    "prefix_cache_stats",
    "clear_prefix_cache",
]
