"""Abstract syntax tree for the P4-16 subset.

Nodes are small mutable dataclasses.  Compiler passes never mutate a shared
tree in place: they rebuild nodes through :class:`repro.compiler.visitor.Transformer`,
so two snapshots of a program (before/after a pass) can be compared safely.

The node set covers:

* expressions: integer/bool literals, variable paths, member access, bit
  slices, header-stack element access (``stack[0]``), unary/binary/ternary
  operators, casts, and method calls (``hdr.isValid()``, ``table.apply()``,
  ``stack.push_front(1)``...),
* statements: assignment, method-call statements, ``if``/``else``, blocks,
  variable declarations, ``return``, ``exit``,
* declarations: headers, structs, actions, functions, tables, controls,
  parsers, and the program.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.p4.types import BitType, BoolType, P4Type, VoidType


#: Per-class field-name cache for the hand-rolled structural clone.
_CLONE_FIELDS: Dict[type, Tuple[str, ...]] = {}


def _clone_value(value):
    """Structurally clone one field value.

    AST nodes are cloned recursively; lists and tuples are rebuilt; every
    other value the AST stores (ints, strings, bools, ``None`` and the
    frozen :class:`~repro.p4.types.P4Type` instances) is immutable and can
    be shared between snapshots.
    """

    if isinstance(value, Node):
        return value.clone()
    if type(value) is list:
        return [_clone_value(item) for item in value]
    if type(value) is tuple:
        return tuple(_clone_value(item) for item in value)
    return value


class Node:
    """Base class for every AST node."""

    def clone(self) -> "Node":
        """Deep structural copy of the node (snapshots programs between passes).

        Hand-rolled instead of ``copy.deepcopy``: passes snapshot every
        program they touch, and the generic deepcopy machinery (memo dict,
        reduce protocol) dominated campaign profiles.  The clone walks the
        dataclass fields directly and shares immutable leaves, which is
        roughly an order of magnitude cheaper.
        """

        cls = type(self)
        names = _CLONE_FIELDS.get(cls)
        if names is None:
            try:
                names = tuple(f.name for f in dataclass_fields(cls))
            except TypeError:  # not a dataclass: fall back to deepcopy
                return copy.deepcopy(self)
            _CLONE_FIELDS[cls] = names
        out = cls.__new__(cls)
        out_dict = out.__dict__
        self_dict = self.__dict__
        for name in names:
            out_dict[name] = _clone_value(self_dict[name])
        return out


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expression(Node):
    """Base class for expressions."""


@dataclass
class Constant(Expression):
    """An integer literal, optionally carrying an explicit ``bit<width>`` type."""

    value: int
    width: Optional[int] = None

    def __str__(self) -> str:
        if self.width is not None:
            return f"{self.width}w{self.value}"
        return str(self.value)


@dataclass
class BoolLiteral(Expression):
    """``true`` or ``false``."""

    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass
class PathExpression(Expression):
    """Reference to a named variable, parameter, table or action."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass
class Member(Expression):
    """Field access: ``expr.field``."""

    expr: Expression
    member: str

    def __str__(self) -> str:
        return f"{self.expr}.{self.member}"


@dataclass
class ArrayIndex(Expression):
    """Header-stack element access ``stack[index]``.

    The subset requires the index to be a compile-time constant (the type
    checker enforces it), so after the mid end a constant-indexed element
    behaves exactly like a scalar header instance.
    """

    expr: Expression
    index: Expression

    def __str__(self) -> str:
        return f"{self.expr}[{self.index}]"


@dataclass
class Slice(Expression):
    """Bit slice ``expr[high:low]`` (both bounds inclusive, high >= low)."""

    expr: Expression
    high: int
    low: int

    def __str__(self) -> str:
        return f"{self.expr}[{self.high}:{self.low}]"


#: Binary operators in the subset.  ``++`` is bit-vector concatenation.
BINARY_OPERATORS = (
    "+", "-", "*", "/", "%",
    "&", "|", "^", "<<", ">>", "++",
    "==", "!=", "<", "<=", ">", ">=",
    "&&", "||",
)

#: Operators whose result is Boolean.
BOOLEAN_RESULT_OPERATORS = ("==", "!=", "<", "<=", ">", ">=", "&&", "||")

#: Operators whose operands are Boolean.
BOOLEAN_OPERAND_OPERATORS = ("&&", "||")


@dataclass
class BinaryOp(Expression):
    """A binary operation."""

    op: str
    left: Expression
    right: Expression

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass
class UnaryOp(Expression):
    """A unary operation: ``!`` (bool), ``~`` (bitwise), ``-`` (negation)."""

    op: str
    expr: Expression

    def __str__(self) -> str:
        return f"({self.op}{self.expr})"


@dataclass
class Ternary(Expression):
    """The conditional operator ``cond ? then : orelse``."""

    cond: Expression
    then: Expression
    orelse: Expression

    def __str__(self) -> str:
        return f"({self.cond} ? {self.then} : {self.orelse})"


@dataclass
class Cast(Expression):
    """An explicit cast ``(bit<w>) expr`` or ``(bool) expr``."""

    target: P4Type
    expr: Expression

    def __str__(self) -> str:
        return f"(({self.target}) {self.expr})"


@dataclass
class MethodCallExpression(Expression):
    """A method or function call used as an expression or statement."""

    target: Expression
    args: List[Expression] = field(default_factory=list)

    def __str__(self) -> str:
        args = ", ".join(str(arg) for arg in self.args)
        return f"{self.target}({args})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Statement(Node):
    """Base class for statements."""


@dataclass
class AssignmentStatement(Statement):
    """``lhs = rhs;`` -- the left-hand side is a path, member or slice."""

    lhs: Expression
    rhs: Expression


@dataclass
class MethodCallStatement(Statement):
    """A call used for its effect, e.g. ``t.apply();`` or ``h.setValid();``."""

    call: MethodCallExpression


@dataclass
class IfStatement(Statement):
    """``if (cond) { ... } else { ... }``."""

    cond: Expression
    then_branch: "BlockStatement"
    else_branch: Optional["BlockStatement"] = None


@dataclass
class BlockStatement(Statement):
    """A brace-delimited list of statements."""

    statements: List[Statement] = field(default_factory=list)


@dataclass
class VariableDeclaration(Statement):
    """``bit<8> x = init;`` -- also used for control-local declarations."""

    name: str
    var_type: P4Type
    initializer: Optional[Expression] = None


@dataclass
class ReturnStatement(Statement):
    """``return expr;`` (the expression is optional for void functions)."""

    value: Optional[Expression] = None


@dataclass
class ExitStatement(Statement):
    """``exit;`` -- terminates processing of the current block immediately."""


@dataclass
class EmptyStatement(Statement):
    """``;`` -- occasionally produced by compiler passes."""


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


class Declaration(Node):
    """Base class for declarations."""


#: Parameter directions (P4-16 §6.7 copy-in/copy-out calling convention).
DIRECTIONS = ("in", "out", "inout", "")


@dataclass
class Parameter(Node):
    """A function / action / control parameter with a direction."""

    direction: str
    param_type: P4Type
    name: str

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise ValueError(f"invalid parameter direction {self.direction!r}")

    @property
    def is_readable(self) -> bool:
        """Whether the callee may read the parameter before writing it."""

        return self.direction in ("in", "inout", "")

    @property
    def is_writable(self) -> bool:
        """Whether writes to the parameter are copied back to the caller."""

        return self.direction in ("out", "inout")


@dataclass
class HeaderDeclaration(Declaration):
    """``header Name { bit<8> a; ... }``."""

    name: str
    fields: List[Tuple[str, BitType]] = field(default_factory=list)


@dataclass
class StructDeclaration(Declaration):
    """``struct Name { ... }`` -- fields may be headers, bits or bools."""

    name: str
    fields: List[Tuple[str, P4Type]] = field(default_factory=list)


@dataclass
class RegisterDeclaration(Declaration):
    """``register<bit<W>>(N) name;`` -- a control-local stateful extern.

    Registers hold persistent switch state: the cells survive across
    packets, so programs using them only have well-defined semantics under
    the multi-packet execution model (``SwitchState`` concretely, the state
    vector of :class:`~repro.core.interpreter.BlockSemantics` symbolically).
    """

    name: str
    width: int
    size: int


@dataclass
class CounterDeclaration(Declaration):
    """``counter(N) name;`` -- a bank of packet counters (count-only)."""

    name: str
    size: int


@dataclass
class ActionDeclaration(Declaration):
    """``action name(dir type param, ...) { body }``."""

    name: str
    params: List[Parameter] = field(default_factory=list)
    body: BlockStatement = field(default_factory=BlockStatement)


@dataclass
class FunctionDeclaration(Declaration):
    """A helper function with a return type (P4-16 functions)."""

    name: str
    return_type: P4Type = field(default_factory=VoidType)
    params: List[Parameter] = field(default_factory=list)
    body: BlockStatement = field(default_factory=BlockStatement)


@dataclass
class ActionRef(Node):
    """Reference to an action from a table property (name plus bound args)."""

    name: str
    args: List[Expression] = field(default_factory=list)


@dataclass
class KeyElement(Node):
    """One table key: the expression to match and the match kind."""

    expr: Expression
    match_kind: str = "exact"


@dataclass
class TableDeclaration(Declaration):
    """A match-action table."""

    name: str
    keys: List[KeyElement] = field(default_factory=list)
    actions: List[ActionRef] = field(default_factory=list)
    default_action: Optional[ActionRef] = None


@dataclass
class ControlDeclaration(Declaration):
    """A control block: parameters, local declarations and the apply body."""

    name: str
    params: List[Parameter] = field(default_factory=list)
    locals: List[
        Union[
            VariableDeclaration,
            ActionDeclaration,
            TableDeclaration,
            RegisterDeclaration,
            CounterDeclaration,
        ]
    ] = field(default_factory=list)
    apply: BlockStatement = field(default_factory=BlockStatement)


@dataclass
class SelectCase(Node):
    """One arm of a parser ``select``: a match value (or default) and a state."""

    value: Optional[Expression]  # None means "default"
    next_state: str


@dataclass
class ParserState(Node):
    """A parser state: statements followed by a transition."""

    name: str
    statements: List[Statement] = field(default_factory=list)
    select_expr: Optional[Expression] = None
    cases: List[SelectCase] = field(default_factory=list)
    next_state: Optional[str] = None  # direct transition when select_expr is None


@dataclass
class ParserDeclaration(Declaration):
    """A parser: parameters and named states (``start`` is the entry state)."""

    name: str
    params: List[Parameter] = field(default_factory=list)
    states: List[ParserState] = field(default_factory=list)

    def state(self, name: str) -> Optional[ParserState]:
        for state in self.states:
            if state.name == name:
                return state
        return None


@dataclass
class Program(Node):
    """A whole P4 program: an ordered list of top-level declarations."""

    declarations: List[Declaration] = field(default_factory=list)

    # -- lookup helpers ----------------------------------------------------

    def headers(self) -> List[HeaderDeclaration]:
        return [decl for decl in self.declarations if isinstance(decl, HeaderDeclaration)]

    def structs(self) -> List[StructDeclaration]:
        return [decl for decl in self.declarations if isinstance(decl, StructDeclaration)]

    def controls(self) -> List[ControlDeclaration]:
        return [decl for decl in self.declarations if isinstance(decl, ControlDeclaration)]

    def parsers(self) -> List[ParserDeclaration]:
        return [decl for decl in self.declarations if isinstance(decl, ParserDeclaration)]

    def functions(self) -> List[FunctionDeclaration]:
        return [decl for decl in self.declarations if isinstance(decl, FunctionDeclaration)]

    def find(self, name: str) -> Optional[Declaration]:
        for decl in self.declarations:
            if getattr(decl, "name", None) == name:
                return decl
        return None


# ---------------------------------------------------------------------------
# Structural helpers
# ---------------------------------------------------------------------------


def lvalue_root(expr: Expression) -> Optional[str]:
    """Return the root variable name of an l-value expression, if any."""

    node = expr
    while True:
        if isinstance(node, PathExpression):
            return node.name
        if isinstance(node, (Member, Slice, ArrayIndex)):
            node = node.expr
        else:
            return None


def is_lvalue(expr: Expression) -> bool:
    """True if the expression can appear on the left of an assignment."""

    if isinstance(expr, PathExpression):
        return True
    if isinstance(expr, Member):
        return is_lvalue(expr.expr)
    if isinstance(expr, Slice):
        return is_lvalue(expr.expr)
    if isinstance(expr, ArrayIndex):
        return is_lvalue(expr.expr)
    return False


def walk(node: Node):
    """Yield ``node`` and every AST node reachable from it (pre-order)."""

    yield node
    for value in vars(node).values():
        if isinstance(value, Node):
            yield from walk(value)
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, Node):
                    yield from walk(item)
                elif isinstance(item, tuple):
                    for sub in item:
                        if isinstance(sub, Node):
                            yield from walk(sub)
