"""The ``ToP4`` module: render an AST program back to P4 source text.

P4C maintains the invariant that the output of every front- and mid-end pass
can be emitted as a syntactically valid P4 program (paper §7.2, *invalid
transformations*).  Gauntlet checks this invariant by reparsing every emitted
program; the emitter therefore produces fully parenthesised expressions so
that the parse/emit round trip is structure preserving.
"""

from __future__ import annotations

from typing import List

from repro.p4 import ast
from repro.p4.types import HeaderStackType, P4Type


INDENT = "    "


def emit_program(program: ast.Program) -> str:
    """Render a program as P4 source text."""

    parts = [_emit_declaration(decl) for decl in program.declarations]
    return "\n".join(parts) + "\n"


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


def _emit_declaration(decl: ast.Declaration) -> str:
    if isinstance(decl, ast.HeaderDeclaration):
        fields = "".join(
            f"{INDENT}{field_type} {name};\n" for name, field_type in decl.fields
        )
        return f"header {decl.name} {{\n{fields}}}\n"
    if isinstance(decl, ast.StructDeclaration):
        fields = "".join(
            _emit_struct_field(name, field_type) for name, field_type in decl.fields
        )
        return f"struct {decl.name} {{\n{fields}}}\n"
    if isinstance(decl, ast.FunctionDeclaration):
        params = _emit_params(decl.params)
        body = _emit_block(decl.body, 0)
        return f"{decl.return_type} {decl.name}({params}) {body}\n"
    if isinstance(decl, ast.ControlDeclaration):
        return _emit_control(decl)
    if isinstance(decl, ast.ParserDeclaration):
        return _emit_parser(decl)
    raise TypeError(f"cannot emit declaration of type {type(decl).__name__}")


def _emit_struct_field(name: str, field_type: P4Type) -> str:
    if isinstance(field_type, HeaderStackType):
        # P4 puts the stack size after the field name: ``Hdr_t h[4];``.
        return f"{INDENT}{field_type.element} {name}[{field_type.size}];\n"
    return f"{INDENT}{field_type} {name};\n"


def _emit_params(params: List[ast.Parameter]) -> str:
    rendered = []
    for param in params:
        direction = f"{param.direction} " if param.direction else ""
        rendered.append(f"{direction}{param.param_type} {param.name}")
    return ", ".join(rendered)


def _emit_control(decl: ast.ControlDeclaration) -> str:
    lines = [f"control {decl.name}({_emit_params(decl.params)}) {{"]
    for local in decl.locals:
        if isinstance(local, ast.VariableDeclaration):
            lines.append(INDENT + _emit_variable_declaration(local))
        elif isinstance(local, ast.ActionDeclaration):
            body = _emit_block(local.body, 1)
            lines.append(f"{INDENT}action {local.name}({_emit_params(local.params)}) {body}")
        elif isinstance(local, ast.TableDeclaration):
            lines.append(_emit_table(local, 1))
        elif isinstance(local, ast.RegisterDeclaration):
            lines.append(f"{INDENT}register<bit<{local.width}>>({local.size}) {local.name};")
        elif isinstance(local, ast.CounterDeclaration):
            lines.append(f"{INDENT}counter({local.size}) {local.name};")
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot emit control local {type(local).__name__}")
    lines.append(f"{INDENT}apply {_emit_block(decl.apply, 1)}")
    lines.append("}\n")
    return "\n".join(lines)


def _emit_table(table: ast.TableDeclaration, depth: int) -> str:
    pad = INDENT * depth
    inner = INDENT * (depth + 1)
    inner2 = INDENT * (depth + 2)
    lines = [f"{pad}table {table.name} {{"]
    if table.keys:
        lines.append(f"{inner}key = {{")
        for key in table.keys:
            lines.append(f"{inner2}{emit_expression(key.expr)} : {key.match_kind};")
        lines.append(f"{inner}}}")
    lines.append(f"{inner}actions = {{")
    for action in table.actions:
        lines.append(f"{inner2}{_emit_action_ref(action)};")
    lines.append(f"{inner}}}")
    if table.default_action is not None:
        lines.append(f"{inner}default_action = {_emit_action_ref(table.default_action)};")
    lines.append(f"{pad}}}")
    return "\n".join(lines)


def _emit_action_ref(ref: ast.ActionRef) -> str:
    args = ", ".join(emit_expression(arg) for arg in ref.args)
    return f"{ref.name}({args})"


def _emit_parser(decl: ast.ParserDeclaration) -> str:
    lines = [f"parser {decl.name}({_emit_params(decl.params)}) {{"]
    for state in decl.states:
        lines.append(f"{INDENT}state {state.name} {{")
        for statement in state.statements:
            lines.append(_emit_statement(statement, 2))
        if state.select_expr is not None:
            lines.append(f"{INDENT * 2}transition select ({emit_expression(state.select_expr)}) {{")
            for case in state.cases:
                value = "default" if case.value is None else emit_expression(case.value)
                lines.append(f"{INDENT * 3}{value} : {case.next_state};")
            lines.append(f"{INDENT * 2}}}")
        elif state.next_state is not None:
            lines.append(f"{INDENT * 2}transition {state.next_state};")
        lines.append(f"{INDENT}}}")
    lines.append("}\n")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


def _emit_block(block: ast.BlockStatement, depth: int) -> str:
    if not block.statements:
        return "{\n" + INDENT * depth + "}"
    lines = ["{"]
    for statement in block.statements:
        lines.append(_emit_statement(statement, depth + 1))
    lines.append(INDENT * depth + "}")
    return "\n".join(lines)


def _emit_variable_declaration(decl: ast.VariableDeclaration) -> str:
    if decl.initializer is not None:
        return f"{decl.var_type} {decl.name} = {emit_expression(decl.initializer)};"
    return f"{decl.var_type} {decl.name};"


def _emit_statement(statement: ast.Statement, depth: int) -> str:
    pad = INDENT * depth
    if isinstance(statement, ast.BlockStatement):
        return pad + _emit_block(statement, depth)
    if isinstance(statement, ast.AssignmentStatement):
        return f"{pad}{emit_expression(statement.lhs)} = {emit_expression(statement.rhs)};"
    if isinstance(statement, ast.MethodCallStatement):
        return f"{pad}{emit_expression(statement.call)};"
    if isinstance(statement, ast.VariableDeclaration):
        return pad + _emit_variable_declaration(statement)
    if isinstance(statement, ast.IfStatement):
        text = f"{pad}if ({emit_expression(statement.cond)}) "
        text += _emit_block(statement.then_branch, depth)
        if statement.else_branch is not None:
            text += " else " + _emit_block(statement.else_branch, depth)
        return text
    if isinstance(statement, ast.ReturnStatement):
        if statement.value is None:
            return f"{pad}return;"
        return f"{pad}return {emit_expression(statement.value)};"
    if isinstance(statement, ast.ExitStatement):
        return f"{pad}exit;"
    if isinstance(statement, ast.EmptyStatement):
        return f"{pad};"
    raise TypeError(f"cannot emit statement of type {type(statement).__name__}")


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


def emit_expression(expr: ast.Expression) -> str:
    """Render an expression with explicit parentheses."""

    if isinstance(expr, ast.Constant):
        if expr.width is not None:
            return f"{expr.width}w{expr.value}"
        return str(expr.value)
    if isinstance(expr, ast.BoolLiteral):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.PathExpression):
        return expr.name
    if isinstance(expr, ast.Member):
        return f"{emit_expression(expr.expr)}.{expr.member}"
    if isinstance(expr, ast.ArrayIndex):
        return f"{emit_expression(expr.expr)}[{emit_expression(expr.index)}]"
    if isinstance(expr, ast.Slice):
        return f"{emit_expression(expr.expr)}[{expr.high}:{expr.low}]"
    if isinstance(expr, ast.BinaryOp):
        return f"({emit_expression(expr.left)} {expr.op} {emit_expression(expr.right)})"
    if isinstance(expr, ast.UnaryOp):
        return f"({expr.op}{emit_expression(expr.expr)})"
    if isinstance(expr, ast.Ternary):
        return (
            f"({emit_expression(expr.cond)} ? {emit_expression(expr.then)}"
            f" : {emit_expression(expr.orelse)})"
        )
    if isinstance(expr, ast.Cast):
        return f"(({_emit_type(expr.target)}) {emit_expression(expr.expr)})"
    if isinstance(expr, ast.MethodCallExpression):
        args = ", ".join(emit_expression(arg) for arg in expr.args)
        return f"{emit_expression(expr.target)}({args})"
    raise TypeError(f"cannot emit expression of type {type(expr).__name__}")


def _emit_type(p4_type: P4Type) -> str:
    return str(p4_type)
