"""Type checker for the P4-16 subset.

The checker validates the properties the random program generator promises
to uphold (paper §4.2): programs it produces must be well-typed, may only
pass writable l-values for ``out``/``inout`` arguments, and must reference
only declared names.  A program that fails these checks is rejected with a
:class:`TypeCheckError`, which the generator treats as a bug in itself.

The checker is also the component the compiler's ``TypeChecking`` pass wraps,
which is where several of the crash bugs described in the paper live
(e.g. figure 5b/5c).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.p4 import ast
from repro.p4.types import (
    BitType,
    BoolType,
    CounterType,
    HeaderStackType,
    HeaderType,
    P4Type,
    RegisterType,
    StructType,
    TypeEnvironment,
    TypeName,
    VoidType,
    composite_field_type,
)

#: Largest supported header-stack size.  The symbolic ``nextIndex`` counter
#: is modelled as ``bit<8>`` and parser extract loops are bounded by the
#: interpreter's unroll budget, so the cap keeps both comfortably in range.
MAX_STACK_SIZE = 16

#: Largest supported register/counter bank.  State is modelled per cell on
#: the symbolic side (one term per cell, no array theory), so the cap keeps
#: the Ite chains for dynamic indices small.
MAX_STATE_SIZE = 16


class TypeCheckError(Exception):
    """Raised when a program violates the subset's typing rules."""


@dataclass
class Scope:
    """A lexical scope mapping variable names to types and writability."""

    parent: Optional["Scope"] = None
    variables: Dict[str, P4Type] = field(default_factory=dict)
    writable: Dict[str, bool] = field(default_factory=dict)

    def declare(self, name: str, var_type: P4Type, writable: bool = True) -> None:
        if name in self.variables:
            raise TypeCheckError(f"duplicate declaration of {name!r}")
        self.variables[name] = var_type
        self.writable[name] = writable

    def lookup(self, name: str) -> Optional[P4Type]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.variables:
                return scope.variables[name]
            scope = scope.parent
        return None

    def is_writable(self, name: str) -> bool:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.variables:
                return scope.writable[name]
            scope = scope.parent
        return False

    def child(self) -> "Scope":
        return Scope(parent=self)


class TypeChecker:
    """Check a whole program; exposes the resolved type environment."""

    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.types = TypeEnvironment()
        self.actions: Dict[str, ast.ActionDeclaration] = {}
        self.functions: Dict[str, ast.FunctionDeclaration] = {}
        self.tables: Dict[str, ast.TableDeclaration] = {}
        #: Which kind of declaration is being checked ("control", "parser"
        #: or "function"): header-stack ``.next``/``.last`` are parser-only,
        #: ``push_front``/``pop_front`` are control-only.
        self._context = "control"

    # -- entry point --------------------------------------------------------

    def check(self) -> None:
        self._collect_types()
        for decl in self.program.declarations:
            if isinstance(decl, ast.FunctionDeclaration):
                self.functions[decl.name] = decl
        for decl in self.program.declarations:
            if isinstance(decl, ast.FunctionDeclaration):
                self._check_function(decl)
            elif isinstance(decl, ast.ControlDeclaration):
                self._check_control(decl)
            elif isinstance(decl, ast.ParserDeclaration):
                self._check_parser(decl)

    # -- type declarations -----------------------------------------------------

    def _collect_types(self) -> None:
        for decl in self.program.declarations:
            if isinstance(decl, ast.HeaderDeclaration):
                fields = tuple((name, self._resolve_bit(field_type)) for name, field_type in decl.fields)
                try:
                    self.types.declare(decl.name, HeaderType(decl.name, fields))
                except ValueError as exc:
                    raise TypeCheckError(str(exc)) from exc
        for decl in self.program.declarations:
            if isinstance(decl, ast.StructDeclaration):
                fields = tuple(
                    (name, self._resolve_struct_field(field_type))
                    for name, field_type in decl.fields
                )
                try:
                    self.types.declare(decl.name, StructType(decl.name, fields))
                except ValueError as exc:
                    raise TypeCheckError(str(exc)) from exc

    def _resolve_struct_field(self, field_type: P4Type) -> P4Type:
        if isinstance(field_type, HeaderStackType):
            element = self._resolve(field_type.element)
            if not isinstance(element, HeaderType):
                raise TypeCheckError(
                    f"header stack elements must be headers, got {element}"
                )
            if field_type.size > MAX_STACK_SIZE:
                raise TypeCheckError(
                    f"header stack size {field_type.size} exceeds the supported "
                    f"maximum of {MAX_STACK_SIZE}"
                )
            return HeaderStackType(element, field_type.size)
        return self._resolve(field_type)

    def _resolve_bit(self, field_type: P4Type) -> BitType:
        resolved = self._resolve(field_type)
        if not isinstance(resolved, BitType):
            raise TypeCheckError("header fields must have type bit<N>")
        return resolved

    def _resolve(self, type_ref: P4Type) -> P4Type:
        try:
            return self.types.resolve(type_ref)
        except KeyError as exc:
            raise TypeCheckError(str(exc)) from exc

    # -- declarations ---------------------------------------------------------------

    def _scope_with_params(self, params: List[ast.Parameter]) -> Scope:
        scope = Scope()
        for param in params:
            resolved = self._resolve(param.param_type)
            scope.declare(param.name, resolved, writable=param.direction != "in")
        return scope

    def _check_function(self, decl: ast.FunctionDeclaration) -> None:
        self._context = "function"
        scope = self._scope_with_params(decl.params)
        return_type = self._resolve(decl.return_type)
        self._check_block(decl.body, scope, return_type=return_type, in_control=False)

    def _check_control(self, decl: ast.ControlDeclaration) -> None:
        self._context = "control"
        scope = self._scope_with_params(decl.params)
        self.actions = {}
        self.tables = {}
        for local in decl.locals:
            if isinstance(local, ast.VariableDeclaration):
                self._check_variable_declaration(local, scope)
            elif isinstance(local, ast.ActionDeclaration):
                if local.name in self.actions:
                    raise TypeCheckError(f"duplicate action {local.name!r}")
                self.actions[local.name] = local
                action_scope = scope.child()
                for param in local.params:
                    action_scope.declare(
                        param.name,
                        self._resolve(param.param_type),
                        writable=param.direction != "in",
                    )
                self._check_block(local.body, action_scope, return_type=VoidType(), in_control=True)
            elif isinstance(local, ast.TableDeclaration):
                self._check_table(local, scope)
            elif isinstance(local, ast.RegisterDeclaration):
                if local.size > MAX_STATE_SIZE:
                    raise TypeCheckError(
                        f"register size {local.size} exceeds the supported "
                        f"maximum of {MAX_STATE_SIZE}"
                    )
                try:
                    register_type = RegisterType(local.width, local.size)
                except ValueError as exc:
                    raise TypeCheckError(str(exc)) from exc
                # Registers are accessed via read/write calls only; marking
                # them read-only rejects plain assignments to the name.
                scope.declare(local.name, register_type, writable=False)
            elif isinstance(local, ast.CounterDeclaration):
                if local.size > MAX_STATE_SIZE:
                    raise TypeCheckError(
                        f"counter size {local.size} exceeds the supported "
                        f"maximum of {MAX_STATE_SIZE}"
                    )
                try:
                    counter_type = CounterType(local.size)
                except ValueError as exc:
                    raise TypeCheckError(str(exc)) from exc
                scope.declare(local.name, counter_type, writable=False)
            else:  # pragma: no cover - defensive
                raise TypeCheckError(f"unexpected control local {type(local).__name__}")
        self._check_block(decl.apply, scope.child(), return_type=VoidType(), in_control=True)

    def _check_table(self, table: ast.TableDeclaration, scope: Scope) -> None:
        if table.name in self.tables:
            raise TypeCheckError(f"duplicate table {table.name!r}")
        self.tables[table.name] = table
        for key in table.keys:
            key_type = self._type_of(key.expr, scope)
            if not isinstance(key_type, (BitType, BoolType)):
                raise TypeCheckError(
                    f"table {table.name!r}: key expressions must be bit or bool, got {key_type}"
                )
            if key.match_kind not in ("exact", "ternary", "lpm"):
                raise TypeCheckError(
                    f"table {table.name!r}: unknown match kind {key.match_kind!r}"
                )
        referenced = list(table.actions)
        if table.default_action is not None:
            referenced.append(table.default_action)
        for ref in referenced:
            if ref.name == "NoAction":
                continue
            action = self.actions.get(ref.name)
            if action is None:
                raise TypeCheckError(
                    f"table {table.name!r} references unknown action {ref.name!r}"
                )
            self._check_call_args(ref.name, action.params, ref.args, scope, allow_partial=True)

    def _check_parser(self, decl: ast.ParserDeclaration) -> None:
        self._context = "parser"
        scope = self._scope_with_params(decl.params)
        state_names = {state.name for state in decl.states} | {"accept", "reject"}
        if decl.states and decl.state("start") is None:
            raise TypeCheckError(f"parser {decl.name!r} has no start state")
        for state in decl.states:
            state_scope = scope.child()
            for statement in state.statements:
                self._check_statement(statement, state_scope, VoidType(), in_control=False)
            if state.select_expr is not None:
                select_type = self._type_of(state.select_expr, state_scope)
                if not isinstance(select_type, (BitType, BoolType)):
                    raise TypeCheckError("select expression must be bit or bool")
                for case in state.cases:
                    if case.next_state not in state_names:
                        raise TypeCheckError(f"unknown state {case.next_state!r}")
                    if case.value is not None:
                        self._type_of(case.value, state_scope)
            elif state.next_state is not None:
                if state.next_state not in state_names:
                    raise TypeCheckError(f"unknown state {state.next_state!r}")

    # -- statements -------------------------------------------------------------------

    def _check_block(
        self, block: ast.BlockStatement, scope: Scope, return_type: P4Type, in_control: bool
    ) -> None:
        block_scope = scope.child()
        for statement in block.statements:
            self._check_statement(statement, block_scope, return_type, in_control)

    def _check_variable_declaration(self, decl: ast.VariableDeclaration, scope: Scope) -> None:
        var_type = self._resolve(decl.var_type)
        if decl.initializer is not None:
            self._require_expr_assignable(
                var_type, decl.initializer, scope, f"initialiser of {decl.name!r}"
            )
        scope.declare(decl.name, var_type)

    def _check_statement(
        self, statement: ast.Statement, scope: Scope, return_type: P4Type, in_control: bool
    ) -> None:
        if isinstance(statement, ast.BlockStatement):
            self._check_block(statement, scope, return_type, in_control)
        elif isinstance(statement, ast.VariableDeclaration):
            self._check_variable_declaration(statement, scope)
        elif isinstance(statement, ast.AssignmentStatement):
            self._check_assignment(statement, scope)
        elif isinstance(statement, ast.IfStatement):
            cond_type = self._type_of(statement.cond, scope)
            if not isinstance(cond_type, BoolType):
                raise TypeCheckError(f"if condition must be bool, got {cond_type}")
            self._check_block(statement.then_branch, scope, return_type, in_control)
            if statement.else_branch is not None:
                self._check_block(statement.else_branch, scope, return_type, in_control)
        elif isinstance(statement, ast.MethodCallStatement):
            self._check_call_statement(statement.call, scope)
        elif isinstance(statement, ast.ReturnStatement):
            if statement.value is None:
                if not isinstance(return_type, VoidType):
                    raise TypeCheckError("non-void function must return a value")
            else:
                self._require_expr_assignable(return_type, statement.value, scope, "return value")
        elif isinstance(statement, (ast.ExitStatement, ast.EmptyStatement)):
            return
        else:  # pragma: no cover - defensive
            raise TypeCheckError(f"unknown statement {type(statement).__name__}")

    def _check_assignment(self, statement: ast.AssignmentStatement, scope: Scope) -> None:
        if not ast.is_lvalue(statement.lhs):
            raise TypeCheckError("assignment target is not an l-value")
        root = ast.lvalue_root(statement.lhs)
        if root is not None and scope.lookup(root) is not None and not scope.is_writable(root):
            raise TypeCheckError(f"cannot assign to read-only value {root!r}")
        lhs_type = self._type_of(statement.lhs, scope)
        if isinstance(lhs_type, HeaderStackType):
            raise TypeCheckError("whole header stacks cannot be assigned")
        self._require_expr_assignable(lhs_type, statement.rhs, scope, "assignment")

    def _check_call_statement(self, call: ast.MethodCallExpression, scope: Scope) -> None:
        target = call.target
        # Built-in header methods and table application.
        if isinstance(target, ast.Member):
            method = target.member
            if method in ("setValid", "setInvalid", "isValid"):
                base_type = self._type_of(target.expr, scope)
                if not isinstance(base_type, HeaderType):
                    raise TypeCheckError(f"{method} requires a header operand")
                if call.args:
                    raise TypeCheckError(f"{method} takes no arguments")
                return
            if method == "apply":
                if isinstance(target.expr, ast.PathExpression) and target.expr.name in self.tables:
                    return
                raise TypeCheckError("apply() may only be invoked on tables")
            if method in ("extract", "emit"):
                if len(call.args) != 1:
                    raise TypeCheckError(f"{method} takes exactly one argument")
                arg = call.args[0]
                if (
                    isinstance(arg, ast.Member)
                    and arg.member == "next"
                    and isinstance(self._type_of(arg.expr, scope), HeaderStackType)
                ):
                    # ``extract(stack.next)`` advances the stack's nextIndex;
                    # like .last it only makes sense while parsing.
                    if self._context != "parser":
                        raise TypeCheckError(
                            f"{method}(stack.next) may only appear inside parsers"
                        )
                    return
                arg_type = self._type_of(arg, scope)
                if not isinstance(arg_type, HeaderType):
                    raise TypeCheckError(f"{method} argument must be a header")
                return
            if method in ("push_front", "pop_front"):
                base_type = self._type_of(target.expr, scope)
                if not isinstance(base_type, HeaderStackType):
                    raise TypeCheckError(f"{method} requires a header-stack operand")
                if self._context != "control":
                    raise TypeCheckError(
                        f"{method} may only be called inside controls"
                    )
                if len(call.args) != 1 or not isinstance(call.args[0], ast.Constant):
                    raise TypeCheckError(
                        f"{method} takes exactly one compile-time constant argument"
                    )
                if call.args[0].value < 0:
                    raise TypeCheckError(f"{method} count must be non-negative")
                return
            if method in ("read", "write", "count"):
                self._check_state_call(method, target, call, scope)
                return
            raise TypeCheckError(f"unknown method {method!r}")
        if isinstance(target, ast.PathExpression):
            callee: Optional[object] = self.actions.get(target.name) or self.functions.get(target.name)
            if callee is None:
                if target.name == "NoAction":
                    return
                raise TypeCheckError(f"call to unknown action or function {target.name!r}")
            self._check_call_args(target.name, callee.params, call.args, scope)
            return
        raise TypeCheckError("unsupported call target")

    def _check_state_call(
        self, method: str, target: ast.Member, call: ast.MethodCallExpression, scope: Scope
    ) -> None:
        """Check ``reg.read(dst, idx)`` / ``reg.write(idx, val)`` / ``cnt.count(idx)``.

        Stateful externs may only be touched from control apply/action
        bodies; indices are either compile-time constants (checked against
        the bank size) or bit-typed l-values (table-key-derived indices,
        bounds-wrapped at runtime by a modulo on the bank size).
        """

        if self._context != "control":
            raise TypeCheckError(f"{method} may only be called inside controls")
        base_type = self._type_of(target.expr, scope)
        if method == "count":
            if not isinstance(base_type, CounterType):
                raise TypeCheckError("count requires a counter operand")
            if len(call.args) != 1:
                raise TypeCheckError("count takes exactly one argument (index)")
            self._check_state_index(method, call.args[0], base_type.size, scope)
            return
        if not isinstance(base_type, RegisterType):
            raise TypeCheckError(f"{method} requires a register operand")
        cell_type = BitType(base_type.width)
        if method == "read":
            if len(call.args) != 2:
                raise TypeCheckError("read takes exactly two arguments (dst, index)")
            dst = call.args[0]
            if not ast.is_lvalue(dst):
                raise TypeCheckError("read destination must be an l-value")
            root = ast.lvalue_root(dst)
            if root is not None and scope.lookup(root) is not None and not scope.is_writable(root):
                raise TypeCheckError("read destination is read-only")
            dst_type = self._type_of(dst, scope)
            if dst_type != cell_type:
                raise TypeCheckError(
                    f"read destination must be {cell_type}, got {dst_type}"
                )
            self._check_state_index(method, call.args[1], base_type.size, scope)
            return
        # write(idx, val)
        if len(call.args) != 2:
            raise TypeCheckError("write takes exactly two arguments (index, value)")
        self._check_state_index(method, call.args[0], base_type.size, scope)
        self._require_expr_assignable(cell_type, call.args[1], scope, "register write value")

    def _check_state_index(
        self, method: str, index: ast.Expression, size: int, scope: Scope
    ) -> None:
        if isinstance(index, ast.Constant):
            if not 0 <= index.value < size:
                raise TypeCheckError(
                    f"{method} index {index.value} out of range for bank of size {size}"
                )
            return
        if not ast.is_lvalue(index):
            raise TypeCheckError(
                f"{method} index must be a constant or a key-derived l-value"
            )
        index_type = self._type_of(index, scope)
        if not isinstance(index_type, BitType):
            raise TypeCheckError(f"{method} index must have a bit type, got {index_type}")

    def _check_call_args(
        self,
        name: str,
        params: List[ast.Parameter],
        args: List[ast.Expression],
        scope: Scope,
        allow_partial: bool = False,
    ) -> None:
        if len(args) > len(params) or (not allow_partial and len(args) != len(params)):
            raise TypeCheckError(
                f"{name!r} expects {len(params)} arguments, got {len(args)}"
            )
        for param, arg in zip(params, args):
            self._require_expr_assignable(
                self._resolve(param.param_type), arg, scope, f"argument {param.name!r}"
            )
            if param.direction in ("out", "inout"):
                if not ast.is_lvalue(arg):
                    raise TypeCheckError(
                        f"argument for {param.direction} parameter {param.name!r} must be an l-value"
                    )
                root = ast.lvalue_root(arg)
                if root is not None and scope.lookup(root) is not None and not scope.is_writable(root):
                    raise TypeCheckError(
                        f"argument for {param.direction} parameter {param.name!r} is read-only"
                    )

    # -- expressions ---------------------------------------------------------------------

    def _type_of(self, expr: ast.Expression, scope: Scope) -> P4Type:
        if isinstance(expr, ast.Constant):
            if expr.width is not None:
                return BitType(expr.width)
            return BitType(32)  # width-less literals default to bit<32> in the subset
        if isinstance(expr, ast.BoolLiteral):
            return BoolType()
        if isinstance(expr, ast.PathExpression):
            found = scope.lookup(expr.name)
            if found is None:
                raise TypeCheckError(f"use of undeclared identifier {expr.name!r}")
            return found
        if isinstance(expr, ast.Member):
            base_type = self._type_of(expr.expr, scope)
            if isinstance(base_type, HeaderStackType):
                return self._type_of_stack_member(base_type, expr.member)
            field_type = composite_field_type(base_type, expr.member)
            if field_type is None:
                raise TypeCheckError(f"type {base_type} has no field {expr.member!r}")
            return self._resolve(field_type)
        if isinstance(expr, ast.ArrayIndex):
            base_type = self._type_of(expr.expr, scope)
            if not isinstance(base_type, HeaderStackType):
                raise TypeCheckError(
                    f"index access requires a header stack, got {base_type}"
                )
            index = expr.index
            if not isinstance(index, ast.Constant):
                raise TypeCheckError("header stack indices must be compile-time constants")
            if not 0 <= index.value < base_type.size:
                raise TypeCheckError(
                    f"stack index {index.value} out of range for {base_type}"
                )
            return self._resolve(base_type.element)
        if isinstance(expr, ast.Slice):
            base_type = self._type_of(expr.expr, scope)
            if not isinstance(base_type, BitType):
                raise TypeCheckError("slices require a bit-vector operand")
            if expr.low < 0 or expr.high < expr.low or expr.high >= base_type.width:
                raise TypeCheckError(
                    f"slice [{expr.high}:{expr.low}] out of range for {base_type}"
                )
            return BitType(expr.high - expr.low + 1)
        if isinstance(expr, ast.UnaryOp):
            operand = self._type_of(expr.expr, scope)
            if expr.op == "!":
                if not isinstance(operand, BoolType):
                    raise TypeCheckError("operator ! requires a bool operand")
                return operand
            if not isinstance(operand, BitType):
                raise TypeCheckError(f"operator {expr.op} requires a bit-vector operand")
            return operand
        if isinstance(expr, ast.BinaryOp):
            return self._type_of_binary(expr, scope)
        if isinstance(expr, ast.Ternary):
            cond = self._type_of(expr.cond, scope)
            if not isinstance(cond, BoolType):
                raise TypeCheckError("ternary condition must be bool")
            then_type = self._type_of(expr.then, scope)
            orelse_type = self._type_of(expr.orelse, scope)
            if self._is_widthless_literal(expr.then) and isinstance(orelse_type, BitType):
                return orelse_type
            if self._is_widthless_literal(expr.orelse) and isinstance(then_type, BitType):
                return then_type
            unified = self._unify(then_type, orelse_type)
            if unified is None:
                raise TypeCheckError("ternary branches have incompatible types")
            return unified
        if isinstance(expr, ast.Cast):
            self._type_of(expr.expr, scope)
            return self._resolve(expr.target)
        if isinstance(expr, ast.MethodCallExpression):
            return self._type_of_call(expr, scope)
        raise TypeCheckError(f"unknown expression {type(expr).__name__}")

    def _type_of_stack_member(self, stack: HeaderStackType, member: str) -> P4Type:
        if member == "next":
            raise TypeCheckError(
                "stack.next may only appear as the argument of extract()"
            )
        if member == "last":
            if self._context != "parser":
                raise TypeCheckError("stack.last may only be read inside parsers")
            return self._resolve(stack.element)
        raise TypeCheckError(f"header stacks have no member {member!r}")

    def _type_of_call(self, call: ast.MethodCallExpression, scope: Scope) -> P4Type:
        target = call.target
        if isinstance(target, ast.Member) and target.member == "isValid":
            base_type = self._type_of(target.expr, scope)
            if not isinstance(base_type, HeaderType):
                raise TypeCheckError("isValid requires a header operand")
            return BoolType()
        if isinstance(target, ast.PathExpression):
            function = self.functions.get(target.name)
            if function is not None:
                self._check_call_args(target.name, function.params, call.args, scope)
                return self._resolve(function.return_type)
        raise TypeCheckError("unsupported call expression")

    def _type_of_binary(self, expr: ast.BinaryOp, scope: Scope) -> P4Type:
        left = self._type_of(expr.left, scope)
        right = self._type_of(expr.right, scope)
        op = expr.op
        if op in ast.BOOLEAN_OPERAND_OPERATORS:
            if not isinstance(left, BoolType) or not isinstance(right, BoolType):
                raise TypeCheckError(f"operator {op} requires bool operands")
            return BoolType()
        if op in ("==", "!="):
            literal_adapts = (
                self._is_widthless_literal(expr.left) and isinstance(right, BitType)
            ) or (self._is_widthless_literal(expr.right) and isinstance(left, BitType))
            if not literal_adapts and self._unify(left, right) is None:
                raise TypeCheckError(f"cannot compare {left} and {right}")
            return BoolType()
        if op in ("<", "<=", ">", ">="):
            if self._unify_bits(left, right, expr) is None:
                raise TypeCheckError(f"operator {op} requires bit-vector operands")
            return BoolType()
        if op == "++":
            if not isinstance(left, BitType) or not isinstance(right, BitType):
                raise TypeCheckError("concatenation requires bit-vector operands")
            return BitType(left.width + right.width)
        if op in ("<<", ">>"):
            if not isinstance(left, BitType):
                raise TypeCheckError("shift requires a bit-vector left operand")
            if not isinstance(right, BitType):
                raise TypeCheckError("shift amount must be a bit vector")
            return left
        unified = self._unify_bits(left, right, expr)
        if unified is None:
            raise TypeCheckError(f"operator {op} requires matching bit-vector operands")
        return unified

    def _unify_bits(
        self, left: P4Type, right: P4Type, expr: ast.BinaryOp
    ) -> Optional[BitType]:
        """Unify two operand types for an arithmetic operator.

        Width-less integer literals adapt to the width of the other operand,
        which mirrors P4-16's treatment of arbitrary-precision literals.
        """

        left_literal = isinstance(expr.left, ast.Constant) and expr.left.width is None
        right_literal = isinstance(expr.right, ast.Constant) and expr.right.width is None
        if isinstance(left, BitType) and isinstance(right, BitType):
            if left.width == right.width:
                return left
            if left_literal:
                return right
            if right_literal:
                return left
            return None
        return None

    def _unify(self, left: P4Type, right: P4Type) -> Optional[P4Type]:
        if left == right:
            return left
        if isinstance(left, BitType) and isinstance(right, BitType):
            return left if left.width == right.width else None
        return None

    @staticmethod
    def _is_widthless_literal(expr: ast.Expression) -> bool:
        return isinstance(expr, ast.Constant) and expr.width is None

    def _require_expr_assignable(
        self, target: P4Type, expr: ast.Expression, scope: Scope, context: str
    ) -> None:
        """Like :meth:`_require_assignable` but adapts width-less literals."""

        if self._is_widthless_literal(expr) and isinstance(self._resolve(target), BitType):
            return
        source = self._type_of(expr, scope)
        self._require_assignable(target, source, context)

    def _require_assignable(self, target: P4Type, source: P4Type, context: str) -> None:
        target = self._resolve(target)
        source = self._resolve(source)
        if isinstance(target, BitType) and isinstance(source, BitType):
            if target.width != source.width:
                raise TypeCheckError(
                    f"{context}: width mismatch ({source} cannot be assigned to {target})"
                )
            return
        if type(target) is type(source):
            if isinstance(target, (HeaderType, StructType)) and target.name != source.name:
                raise TypeCheckError(f"{context}: {source} cannot be assigned to {target}")
            return
        raise TypeCheckError(f"{context}: {source} cannot be assigned to {target}")


def check_program(program: ast.Program) -> TypeChecker:
    """Type check ``program`` and return the populated checker."""

    checker = TypeChecker(program)
    checker.check()
    return checker
