"""Tokenizer for the P4-16 subset.

The lexer is a single compiled master-pattern scan: one alternation
covers whitespace, comments, numbers (including P4's width-annotated
literals like ``8w255`` and ``4w0xF``), words and punctuation, so the
hot path is one ``re.match`` per token instead of a per-character loop.
Line/column positions are tracked from the newline counts of skipped
whitespace and comments.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum
from typing import List


class LexerError(Exception):
    """Raised on malformed input (unexpected character, bad literal...)."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} at line {line}, column {column}")
        self.line = line
        self.column = column


class TokenKind(Enum):
    """Lexical token categories."""

    IDENTIFIER = "identifier"
    NUMBER = "number"
    KEYWORD = "keyword"
    SYMBOL = "symbol"
    END = "end"


KEYWORDS = frozenset(
    {
        "header", "struct", "control", "parser", "state", "transition", "select",
        "action", "table", "key", "actions", "default_action", "apply",
        "if", "else", "return", "exit", "true", "false", "default",
        "bit", "bool", "void", "in", "out", "inout", "const", "package",
    }
)

# Multi-character symbols must be listed before their prefixes.
SYMBOLS = (
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "++",
    "(", ")", "{", "}", "[", "]", "<", ">", ";", ":", ",", ".", "=",
    "+", "-", "*", "/", "%", "&", "|", "^", "!", "~", "?", "@",
)

# The master pattern.  Alternative order matters: comments before the "/"
# symbol, width-annotated numbers before plain decimals, multi-character
# symbols before their single-character prefixes.  Number bodies
# deliberately over-match ([0-9a-zA-Z]*) so malformed literals like
# ``0xZZ`` are caught here with a proper error instead of lexing as a
# number followed by an identifier.
_TOKEN_RE = re.compile(
    r"""
      (?P<ws>[ \t\r\n]+)
    | (?P<comment>//[^\n]*|/\*(?s:.)*?\*/)
    | (?P<number>
          (?P<nwidth>\d+)w(?P<nbody>[0-9a-zA-Z]*)
        | 0[xXbB][0-9a-zA-Z]*
        | \d+
      )
    | (?P<word>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<symbol><<|>>|<=|>=|==|!=|&&|\|\||\+\+|[(){}\[\]<>;:,.=+\-*/%&|^!~?@])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """A single token with its source position."""

    kind: TokenKind
    text: str
    value: int | None = None  # numeric value for NUMBER tokens
    width: int | None = None  # explicit width for NUMBER tokens like 8w255
    line: int = 0
    column: int = 0

    def is_symbol(self, text: str) -> bool:
        return self.kind == TokenKind.SYMBOL and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind == TokenKind.KEYWORD and self.text == text


class Lexer:
    """Scan P4 source text into a token list."""

    def __init__(self, source: str) -> None:
        self.source = source

    def tokenize(self) -> List[Token]:
        source = self.source
        length = len(source)
        tokens: List[Token] = []
        append = tokens.append
        match = _TOKEN_RE.match
        keywords = KEYWORDS
        pos = 0
        line = 1
        line_start = 0  # offset of the first character of the current line

        while pos < length:
            m = match(source, pos)
            if m is None:
                raise LexerError(
                    f"unexpected character {source[pos]!r}",
                    line,
                    pos - line_start + 1,
                )
            kind = m.lastgroup
            pos = m.end()
            if kind in ("ws", "comment"):
                text = m.group()
                newlines = text.count("\n")
                if newlines:
                    line += newlines
                    line_start = m.start() + text.rindex("\n") + 1
                continue
            column = m.start() - line_start + 1
            if kind == "word":
                text = m.group()
                append(
                    Token(
                        TokenKind.KEYWORD if text in keywords else TokenKind.IDENTIFIER,
                        text,
                        line=line,
                        column=column,
                    )
                )
            elif kind == "symbol":
                text = m.group()
                if text == "/" and source.startswith("*", pos):
                    # The comment alternative only matches *terminated*
                    # block comments; a stray "/*" falls through to here.
                    raise LexerError("unterminated block comment", line, column)
                append(Token(TokenKind.SYMBOL, text, line=line, column=column))
            else:  # number
                append(self._make_number(m, line, column))

        return tokens + [Token(TokenKind.END, "", line=line, column=pos - line_start + 1)]

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _make_number(m: re.Match, line: int, column: int) -> Token:
        text = m.group()
        width_text = m.group("nwidth")
        if width_text is not None:
            # Width-annotated literal: <width>w<value>.
            body = m.group("nbody")
            if not body:
                raise LexerError("missing value after width annotation", line, column)
            try:
                value = int(body, 0) if body[:1] == "0" and len(body) > 1 else int(body)
            except ValueError as exc:
                raise LexerError(f"bad numeric literal {text!r}", line, column) from exc
            return Token(
                TokenKind.NUMBER,
                text,
                value=value,
                width=int(width_text),
                line=line,
                column=column,
            )
        if text[:1] == "0" and len(text) > 1 and text[1] in "xXbB":
            # Hexadecimal / binary literal.
            try:
                value = int(text, 0)
            except ValueError as exc:
                raise LexerError(f"bad numeric literal {text!r}", line, column) from exc
            return Token(TokenKind.NUMBER, text, value=value, line=line, column=column)
        return Token(TokenKind.NUMBER, text, value=int(text), line=line, column=column)


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper: tokenize ``source`` into a list of tokens."""

    return Lexer(source).tokenize()
