"""Tokenizer for the P4-16 subset.

The lexer is a straightforward hand-written scanner.  It understands P4's
width-annotated integer literals (``8w255``, ``4w0xF``), line and block
comments, and the punctuation/operators used by the subset grammar.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List


class LexerError(Exception):
    """Raised on malformed input (unexpected character, bad literal...)."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} at line {line}, column {column}")
        self.line = line
        self.column = column


class TokenKind(Enum):
    """Lexical token categories."""

    IDENTIFIER = "identifier"
    NUMBER = "number"
    KEYWORD = "keyword"
    SYMBOL = "symbol"
    END = "end"


KEYWORDS = frozenset(
    {
        "header", "struct", "control", "parser", "state", "transition", "select",
        "action", "table", "key", "actions", "default_action", "apply",
        "if", "else", "return", "exit", "true", "false", "default",
        "bit", "bool", "void", "in", "out", "inout", "const", "package",
    }
)

# Multi-character symbols must be listed before their prefixes.
SYMBOLS = (
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "++",
    "(", ")", "{", "}", "[", "]", "<", ">", ";", ":", ",", ".", "=",
    "+", "-", "*", "/", "%", "&", "|", "^", "!", "~", "?", "@",
)


@dataclass(frozen=True)
class Token:
    """A single token with its source position."""

    kind: TokenKind
    text: str
    value: int | None = None  # numeric value for NUMBER tokens
    width: int | None = None  # explicit width for NUMBER tokens like 8w255
    line: int = 0
    column: int = 0

    def is_symbol(self, text: str) -> bool:
        return self.kind == TokenKind.SYMBOL and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind == TokenKind.KEYWORD and self.text == text


class Lexer:
    """Scan P4 source text into a token list."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.position = 0
        self.line = 1
        self.column = 1

    def tokenize(self) -> List[Token]:
        tokens: List[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind == TokenKind.END:
                return tokens

    # -- internals ----------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.position + offset
        if index < len(self.source):
            return self.source[index]
        return ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.position < len(self.source):
                if self.source[self.position] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.position += 1

    def _skip_whitespace_and_comments(self) -> None:
        while self.position < len(self.source):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self.position < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.position < len(self.source) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.position >= len(self.source):
                    raise LexerError("unterminated block comment", self.line, self.column)
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        line, column = self.line, self.column
        if self.position >= len(self.source):
            return Token(TokenKind.END, "", line=line, column=column)

        char = self._peek()
        if char.isalpha() or char == "_":
            return self._lex_word(line, column)
        if char.isdigit():
            return self._lex_number(line, column)
        for symbol in SYMBOLS:
            if self.source.startswith(symbol, self.position):
                self._advance(len(symbol))
                return Token(TokenKind.SYMBOL, symbol, line=line, column=column)
        raise LexerError(f"unexpected character {char!r}", line, column)

    def _lex_word(self, line: int, column: int) -> Token:
        start = self.position
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start : self.position]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENTIFIER
        return Token(kind, text, line=line, column=column)

    def _lex_number(self, line: int, column: int) -> Token:
        start = self.position
        while self._peek().isdigit():
            self._advance()
        prefix_text = self.source[start : self.position]

        # Width-annotated literal: <width>w<value>.
        if self._peek() == "w":
            width = int(prefix_text)
            self._advance()
            value_text = self._lex_number_body()
            if not value_text:
                raise LexerError("missing value after width annotation", line, column)
            value = int(value_text, 0)
            return Token(
                TokenKind.NUMBER,
                f"{prefix_text}w{value_text}",
                value=value,
                width=width,
                line=line,
                column=column,
            )

        # Hexadecimal / binary literal.
        if prefix_text == "0" and self._peek() in ("x", "X", "b", "B"):
            base_char = self._peek()
            self._advance()
            body = self._lex_number_body()
            text = f"0{base_char}{body}"
            try:
                value = int(text, 0)
            except ValueError as exc:
                raise LexerError(f"bad numeric literal {text!r}", line, column) from exc
            return Token(TokenKind.NUMBER, text, value=value, line=line, column=column)

        return Token(
            TokenKind.NUMBER, prefix_text, value=int(prefix_text), line=line, column=column
        )

    def _lex_number_body(self) -> str:
        start = self.position
        if self._peek() in ("0",) and self._peek(1) in ("x", "X", "b", "B"):
            self._advance(2)
        while self._peek().isalnum():
            self._advance()
        return self.source[start : self.position]


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper: tokenize ``source`` into a list of tokens."""

    return Lexer(source).tokenize()
