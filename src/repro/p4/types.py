"""The P4-16 subset type system.

Types are immutable values.  The subset contains exactly the types the
random program generator and symbolic interpreter need:

* ``bit<N>`` -- unsigned fixed-width integers (:class:`BitType`),
* ``bool`` (:class:`BoolType`),
* ``void`` for functions without a return value (:class:`VoidType`),
* ``header`` types -- ordered ``bit<N>`` fields plus a validity bit
  (:class:`HeaderType`),
* ``struct`` types -- ordered fields of any type (:class:`StructType`).

Type *names* are resolved by the type checker; the AST stores
:class:`TypeName` placeholders until then.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


class P4Type:
    """Base class for all types."""

    def is_bit(self) -> bool:
        return isinstance(self, BitType)

    def is_bool(self) -> bool:
        return isinstance(self, BoolType)

    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    def is_header(self) -> bool:
        return isinstance(self, HeaderType)

    def is_struct(self) -> bool:
        return isinstance(self, StructType)

    def is_stack(self) -> bool:
        return isinstance(self, HeaderStackType)

    def is_composite(self) -> bool:
        return self.is_header() or self.is_struct()


@dataclass(frozen=True)
class BitType(P4Type):
    """``bit<width>``: an unsigned integer of fixed width."""

    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"bit width must be positive, got {self.width}")

    def __str__(self) -> str:
        return f"bit<{self.width}>"


@dataclass(frozen=True)
class BoolType(P4Type):
    """The Boolean type."""

    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class VoidType(P4Type):
    """Return type of functions and actions that return nothing."""

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class TypeName(P4Type):
    """An unresolved reference to a named type (header/struct)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class HeaderType(P4Type):
    """A packet header: named ``bit<N>`` fields plus an implicit validity bit."""

    name: str
    fields: Tuple[Tuple[str, BitType], ...]

    def __str__(self) -> str:
        return self.name

    def field_type(self, field: str) -> Optional[BitType]:
        for field_name, field_ty in self.fields:
            if field_name == field:
                return field_ty
        return None

    def field_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.fields)

    @property
    def total_width(self) -> int:
        """Width of the header on the wire, in bits."""

        return sum(field_ty.width for _, field_ty in self.fields)


@dataclass(frozen=True)
class HeaderStackType(P4Type):
    """A header stack ``H h[N]``: ``size`` elements of one header type.

    Before name resolution the ``element`` is a :class:`TypeName`; the type
    checker replaces it with the resolved :class:`HeaderType`.  Each element
    carries its own validity bit; the stack additionally owns a ``nextIndex``
    counter that parser ``extract(stack.next)`` calls advance (P4-16 §8.17).
    The counter is internal state -- it is not an observable output of a
    programmable block.
    """

    element: P4Type
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"header stack size must be positive, got {self.size}")

    def __str__(self) -> str:
        return f"{self.element}[{self.size}]"


@dataclass(frozen=True)
class RegisterType(P4Type):
    """A register extern ``register<bit<W>>(N)``: persistent switch state.

    Registers survive across packets: the contents are *not* reset when a
    new packet enters the pipeline, which is what makes multi-packet test
    sequences (and state-aware equivalence) necessary.  Access is via
    ``read(dst, index)`` / ``write(index, value)`` method calls, checked by
    the type checker to control-apply contexts with in-range indices.
    """

    width: int
    size: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"register width must be positive, got {self.width}")
        if self.size <= 0:
            raise ValueError(f"register size must be positive, got {self.size}")

    def __str__(self) -> str:
        return f"register<bit<{self.width}>>({self.size})"


@dataclass(frozen=True)
class CounterType(P4Type):
    """A counter extern ``counter(N)``: a bank of packet counters.

    Counters only expose ``count(index)``; the mid end lowers them onto
    registers (a read-modify-write increment), so the symbolic and concrete
    interpreters share one state model for both externs.
    """

    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"counter size must be positive, got {self.size}")

    def __str__(self) -> str:
        return f"counter({self.size})"


@dataclass(frozen=True)
class StructType(P4Type):
    """A struct: named fields of arbitrary types (headers, bits, bools, structs)."""

    name: str
    fields: Tuple[Tuple[str, P4Type], ...]

    def __str__(self) -> str:
        return self.name

    def field_type(self, field: str) -> Optional[P4Type]:
        for field_name, field_ty in self.fields:
            if field_name == field:
                return field_ty
        return None

    def field_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.fields)


def composite_field_type(composite: P4Type, field: str) -> Optional[P4Type]:
    """Look up a field type on a header or struct, None for anything else."""

    if isinstance(composite, (HeaderType, StructType)):
        return composite.field_type(field)
    return None


class TypeEnvironment:
    """Mapping of declared type names to resolved types."""

    def __init__(self) -> None:
        self._types: Dict[str, P4Type] = {}

    def declare(self, name: str, declared_type: P4Type) -> None:
        if name in self._types:
            raise ValueError(f"type {name!r} is declared twice")
        self._types[name] = declared_type

    def lookup(self, name: str) -> Optional[P4Type]:
        return self._types.get(name)

    def resolve(self, type_ref: P4Type) -> P4Type:
        """Resolve :class:`TypeName` references; other types are returned as-is."""

        if isinstance(type_ref, TypeName):
            resolved = self._types.get(type_ref.name)
            if resolved is None:
                raise KeyError(f"unknown type {type_ref.name!r}")
            return resolved
        return type_ref

    def names(self) -> Tuple[str, ...]:
        return tuple(self._types)
