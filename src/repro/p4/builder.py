"""Convenience helpers for constructing P4 AST programs programmatically.

The random program generator, the examples and many tests build programs
from Python; these helpers keep that code short and readable.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.p4 import ast
from repro.p4.types import BitType, HeaderStackType, P4Type, TypeName


def bit(width: int) -> BitType:
    """``bit<width>``."""

    return BitType(width)


def const(value: int, width: Optional[int] = None) -> ast.Constant:
    """An integer literal, optionally width-annotated."""

    return ast.Constant(value, width)


def path(name: str) -> ast.PathExpression:
    """A reference to a variable/parameter by name."""

    return ast.PathExpression(name)


def member(expr: Union[str, ast.Expression], *fields: str) -> ast.Expression:
    """Member access; ``member("hdr", "h", "a")`` builds ``hdr.h.a``."""

    node: ast.Expression = path(expr) if isinstance(expr, str) else expr
    for field in fields:
        node = ast.Member(node, field)
    return node


def slice_(expr: ast.Expression, high: int, low: int) -> ast.Slice:
    """A bit slice ``expr[high:low]``."""

    return ast.Slice(expr, high, low)


def index_(expr: ast.Expression, index: int) -> ast.ArrayIndex:
    """A header-stack element access ``expr[index]``."""

    return ast.ArrayIndex(expr, ast.Constant(index))


def header_stack(element: Union[P4Type, str], size: int) -> HeaderStackType:
    """A header-stack type ``element[size]`` for struct fields."""

    resolved = TypeName(element) if isinstance(element, str) else element
    return HeaderStackType(resolved, size)


def push_front(stack_expr: ast.Expression, count: int) -> ast.MethodCallStatement:
    """``stack.push_front(count);``."""

    return call_stmt(ast.Member(stack_expr, "push_front"), const(count))


def pop_front(stack_expr: ast.Expression, count: int) -> ast.MethodCallStatement:
    """``stack.pop_front(count);``."""

    return call_stmt(ast.Member(stack_expr, "pop_front"), const(count))


def extract_next(stack_expr: ast.Expression) -> ast.MethodCallStatement:
    """``pkt.extract(stack.next);`` -- advance the stack's nextIndex."""

    return call_stmt(
        ast.Member(path("pkt"), "extract"), ast.Member(stack_expr, "next")
    )


def binop(op: str, left: ast.Expression, right: ast.Expression) -> ast.BinaryOp:
    """A binary operation."""

    return ast.BinaryOp(op, left, right)


def assign(lhs: ast.Expression, rhs: ast.Expression) -> ast.AssignmentStatement:
    """An assignment statement."""

    return ast.AssignmentStatement(lhs, rhs)


def block(*statements: ast.Statement) -> ast.BlockStatement:
    """A block statement."""

    return ast.BlockStatement(list(statements))


def if_(
    cond: ast.Expression,
    then: Sequence[ast.Statement],
    orelse: Optional[Sequence[ast.Statement]] = None,
) -> ast.IfStatement:
    """An if/else statement from statement sequences."""

    else_branch = ast.BlockStatement(list(orelse)) if orelse is not None else None
    return ast.IfStatement(cond, ast.BlockStatement(list(then)), else_branch)


def call(target: Union[str, ast.Expression], *args: ast.Expression) -> ast.MethodCallExpression:
    """A call expression; string targets are treated as paths."""

    target_expr = path(target) if isinstance(target, str) else target
    return ast.MethodCallExpression(target_expr, list(args))


def call_stmt(target: Union[str, ast.Expression], *args: ast.Expression) -> ast.MethodCallStatement:
    """A call statement."""

    return ast.MethodCallStatement(call(target, *args))


def apply_table(table_name: str) -> ast.MethodCallStatement:
    """``table.apply();``."""

    return call_stmt(ast.Member(path(table_name), "apply"))


def set_valid(header_expr: ast.Expression) -> ast.MethodCallStatement:
    """``hdr.setValid();``."""

    return call_stmt(ast.Member(header_expr, "setValid"))


def set_invalid(header_expr: ast.Expression) -> ast.MethodCallStatement:
    """``hdr.setInvalid();``."""

    return call_stmt(ast.Member(header_expr, "setInvalid"))


def is_valid(header_expr: ast.Expression) -> ast.MethodCallExpression:
    """``hdr.isValid()``."""

    return call(ast.Member(header_expr, "isValid"))


def var_decl(
    name: str, var_type: P4Type, initializer: Optional[ast.Expression] = None
) -> ast.VariableDeclaration:
    """A variable declaration statement."""

    return ast.VariableDeclaration(name, var_type, initializer)


def param(direction: str, param_type: Union[P4Type, str], name: str) -> ast.Parameter:
    """A parameter; string types become :class:`TypeName` references."""

    resolved = TypeName(param_type) if isinstance(param_type, str) else param_type
    return ast.Parameter(direction, resolved, name)


def header_decl(name: str, fields: Iterable[Tuple[str, int]]) -> ast.HeaderDeclaration:
    """A header declaration from ``(field_name, width)`` pairs."""

    return ast.HeaderDeclaration(name, [(field, BitType(width)) for field, width in fields])


def struct_decl(
    name: str, fields: Iterable[Tuple[str, Union[P4Type, str]]]
) -> ast.StructDeclaration:
    """A struct declaration; string field types become type names."""

    resolved: List[Tuple[str, P4Type]] = []
    for field, field_type in fields:
        resolved.append((field, TypeName(field_type) if isinstance(field_type, str) else field_type))
    return ast.StructDeclaration(name, resolved)


def action(name: str, params: Sequence[ast.Parameter], *body: ast.Statement) -> ast.ActionDeclaration:
    """An action declaration."""

    return ast.ActionDeclaration(name, list(params), ast.BlockStatement(list(body)))


def table(
    name: str,
    keys: Sequence[Tuple[ast.Expression, str]],
    actions: Sequence[str],
    default_action: str = "NoAction",
) -> ast.TableDeclaration:
    """A table declaration from simple key/action name lists."""

    return ast.TableDeclaration(
        name,
        [ast.KeyElement(expr, kind) for expr, kind in keys],
        [ast.ActionRef(action_name) for action_name in actions],
        ast.ActionRef(default_action),
    )


def control(
    name: str,
    params: Sequence[ast.Parameter],
    locals_: Sequence[ast.Node],
    *apply_body: ast.Statement,
) -> ast.ControlDeclaration:
    """A control declaration."""

    return ast.ControlDeclaration(
        name, list(params), list(locals_), ast.BlockStatement(list(apply_body))
    )


def program(*declarations: ast.Declaration) -> ast.Program:
    """A whole program."""

    return ast.Program(list(declarations))
