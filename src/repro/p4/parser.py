"""Recursive-descent parser for the P4-16 subset.

The parser produces :mod:`repro.p4.ast` nodes.  It accepts exactly the
subset the random program generator and the ``ToP4`` emitter produce, which
is what Gauntlet's "reparse every emitted program" check needs (paper §7.2,
*invalid transformations*).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.p4 import ast
from repro.p4.lexer import Lexer, Token, TokenKind
from repro.p4.types import BitType, BoolType, HeaderStackType, P4Type, TypeName, VoidType


class ParserError(Exception):
    """Raised when the source does not conform to the subset grammar."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"{message} (at line {token.line}, column {token.column}, near {token.text!r})")
        self.token = token


class Parser:
    """Parse a token stream into a :class:`repro.p4.ast.Program`."""

    def __init__(self, source: str) -> None:
        self.tokens = Lexer(source).tokenize()
        self.position = 0

    # -- token plumbing -------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != TokenKind.END:
            self.position += 1
        return token

    def _check_symbol(self, text: str) -> bool:
        return self._peek().is_symbol(text)

    def _check_keyword(self, text: str) -> bool:
        return self._peek().is_keyword(text)

    def _accept_symbol(self, text: str) -> bool:
        if self._check_symbol(text):
            self._advance()
            return True
        return False

    def _accept_keyword(self, text: str) -> bool:
        if self._check_keyword(text):
            self._advance()
            return True
        return False

    def _expect_symbol(self, text: str) -> Token:
        if not self._check_symbol(text):
            raise ParserError(f"expected {text!r}", self._peek())
        return self._advance()

    def _expect_keyword(self, text: str) -> Token:
        if not self._check_keyword(text):
            raise ParserError(f"expected keyword {text!r}", self._peek())
        return self._advance()

    def _expect_identifier(self) -> str:
        token = self._peek()
        if token.kind != TokenKind.IDENTIFIER:
            raise ParserError("expected identifier", token)
        self._advance()
        return token.text

    # -- program ------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        declarations: List[ast.Declaration] = []
        while self._peek().kind != TokenKind.END:
            declarations.append(self._parse_top_level())
        return ast.Program(declarations)

    def _parse_top_level(self) -> ast.Declaration:
        token = self._peek()
        if token.is_keyword("header"):
            return self._parse_header()
        if token.is_keyword("struct"):
            return self._parse_struct()
        if token.is_keyword("control"):
            return self._parse_control()
        if token.is_keyword("parser"):
            return self._parse_parser()
        if token.is_keyword("bit") or token.is_keyword("bool") or token.is_keyword("void") or (
            token.kind == TokenKind.IDENTIFIER
        ):
            return self._parse_function()
        raise ParserError("expected a top-level declaration", token)

    # -- types -----------------------------------------------------------------

    def _parse_type(self) -> P4Type:
        token = self._peek()
        if token.is_keyword("bit"):
            self._advance()
            self._expect_symbol("<")
            width_token = self._peek()
            if width_token.kind != TokenKind.NUMBER:
                raise ParserError("expected bit width", width_token)
            self._advance()
            self._expect_symbol(">")
            return BitType(int(width_token.value))
        if token.is_keyword("bool"):
            self._advance()
            return BoolType()
        if token.is_keyword("void"):
            self._advance()
            return VoidType()
        if token.kind == TokenKind.IDENTIFIER:
            self._advance()
            return TypeName(token.text)
        raise ParserError("expected a type", token)

    def _looks_like_type(self) -> bool:
        token = self._peek()
        if token.is_keyword("bit") or token.is_keyword("bool") or token.is_keyword("void"):
            return True
        return token.kind == TokenKind.IDENTIFIER and self._peek(1).kind == TokenKind.IDENTIFIER

    # -- simple declarations ----------------------------------------------------

    def _parse_header(self) -> ast.HeaderDeclaration:
        self._expect_keyword("header")
        name = self._expect_identifier()
        self._expect_symbol("{")
        fields: List[Tuple[str, BitType]] = []
        while not self._accept_symbol("}"):
            field_type = self._parse_type()
            if not isinstance(field_type, BitType):
                raise ParserError("header fields must have type bit<N>", self._peek())
            field_name = self._expect_identifier()
            self._expect_symbol(";")
            fields.append((field_name, field_type))
        return ast.HeaderDeclaration(name, fields)

    def _parse_struct(self) -> ast.StructDeclaration:
        self._expect_keyword("struct")
        name = self._expect_identifier()
        self._expect_symbol("{")
        fields: List[Tuple[str, P4Type]] = []
        while not self._accept_symbol("}"):
            field_type = self._parse_type()
            field_name = self._expect_identifier()
            # Header-stack field: ``Hdr_t h[4];`` -- the size follows the name.
            if self._accept_symbol("["):
                size_token = self._peek()
                if size_token.kind != TokenKind.NUMBER:
                    raise ParserError("expected header stack size", size_token)
                self._advance()
                self._expect_symbol("]")
                field_type = HeaderStackType(field_type, int(size_token.value))
            self._expect_symbol(";")
            fields.append((field_name, field_type))
        return ast.StructDeclaration(name, fields)

    def _parse_parameters(self) -> List[ast.Parameter]:
        self._expect_symbol("(")
        params: List[ast.Parameter] = []
        if self._accept_symbol(")"):
            return params
        while True:
            direction = ""
            for candidate in ("inout", "in", "out"):
                if self._check_keyword(candidate):
                    direction = candidate
                    self._advance()
                    break
            param_type = self._parse_type()
            name = self._expect_identifier()
            params.append(ast.Parameter(direction, param_type, name))
            if self._accept_symbol(")"):
                return params
            self._expect_symbol(",")

    def _parse_function(self) -> ast.FunctionDeclaration:
        return_type = self._parse_type()
        name = self._expect_identifier()
        params = self._parse_parameters()
        body = self._parse_block()
        return ast.FunctionDeclaration(name, return_type, params, body)

    # -- controls ------------------------------------------------------------------

    def _parse_control(self) -> ast.ControlDeclaration:
        self._expect_keyword("control")
        name = self._expect_identifier()
        params = self._parse_parameters()
        self._expect_symbol("{")
        locals_: List[ast.Node] = []
        apply_block: Optional[ast.BlockStatement] = None
        while not self._accept_symbol("}"):
            if self._check_keyword("action"):
                locals_.append(self._parse_action())
            elif self._check_keyword("table"):
                locals_.append(self._parse_table())
            elif self._check_keyword("apply"):
                self._advance()
                apply_block = self._parse_block()
            elif self._peek().kind == TokenKind.IDENTIFIER and self._peek().text == "register" and self._peek(1).is_symbol("<"):
                # Contextual keyword: ``register`` stays a valid identifier
                # everywhere else, so existing programs are unaffected.
                locals_.append(self._parse_register())
            elif self._peek().kind == TokenKind.IDENTIFIER and self._peek().text == "counter" and self._peek(1).is_symbol("("):
                locals_.append(self._parse_counter())
            else:
                locals_.append(self._parse_variable_declaration())
        if apply_block is None:
            raise ParserError("control block is missing an apply block", self._peek())
        return ast.ControlDeclaration(name, params, locals_, apply_block)

    def _parse_register(self) -> ast.RegisterDeclaration:
        self._advance()  # the contextual 'register' identifier
        self._expect_symbol("<")
        self._expect_keyword("bit")
        self._expect_symbol("<")
        width_token = self._peek()
        if width_token.kind != TokenKind.NUMBER:
            raise ParserError("expected register cell width", width_token)
        self._advance()
        # ``register<bit<8>>`` -- the lexer tokenizes the double close as a
        # single ``>>`` shift symbol, so accept either form.
        if not self._accept_symbol(">>"):
            self._expect_symbol(">")
            self._expect_symbol(">")
        self._expect_symbol("(")
        size_token = self._peek()
        if size_token.kind != TokenKind.NUMBER:
            raise ParserError("expected register size", size_token)
        self._advance()
        self._expect_symbol(")")
        name = self._expect_identifier()
        self._expect_symbol(";")
        return ast.RegisterDeclaration(name, int(width_token.value), int(size_token.value))

    def _parse_counter(self) -> ast.CounterDeclaration:
        self._advance()  # the contextual 'counter' identifier
        self._expect_symbol("(")
        size_token = self._peek()
        if size_token.kind != TokenKind.NUMBER:
            raise ParserError("expected counter size", size_token)
        self._advance()
        self._expect_symbol(")")
        name = self._expect_identifier()
        self._expect_symbol(";")
        return ast.CounterDeclaration(name, int(size_token.value))

    def _parse_action(self) -> ast.ActionDeclaration:
        self._expect_keyword("action")
        name = self._expect_identifier()
        params = self._parse_parameters()
        body = self._parse_block()
        return ast.ActionDeclaration(name, params, body)

    def _parse_table(self) -> ast.TableDeclaration:
        self._expect_keyword("table")
        name = self._expect_identifier()
        self._expect_symbol("{")
        keys: List[ast.KeyElement] = []
        actions: List[ast.ActionRef] = []
        default_action: Optional[ast.ActionRef] = None
        while not self._accept_symbol("}"):
            if self._accept_keyword("key"):
                self._expect_symbol("=")
                self._expect_symbol("{")
                while not self._accept_symbol("}"):
                    expr = self._parse_expression()
                    self._expect_symbol(":")
                    match_kind = self._advance().text
                    self._expect_symbol(";")
                    keys.append(ast.KeyElement(expr, match_kind))
            elif self._accept_keyword("actions"):
                self._expect_symbol("=")
                self._expect_symbol("{")
                while not self._accept_symbol("}"):
                    actions.append(self._parse_action_ref())
                    self._expect_symbol(";")
            elif self._accept_keyword("default_action"):
                self._expect_symbol("=")
                default_action = self._parse_action_ref()
                self._expect_symbol(";")
            else:
                raise ParserError("unexpected table property", self._peek())
        return ast.TableDeclaration(name, keys, actions, default_action)

    def _parse_action_ref(self) -> ast.ActionRef:
        token = self._peek()
        if token.kind not in (TokenKind.IDENTIFIER, TokenKind.KEYWORD):
            raise ParserError("expected action name", token)
        self._advance()
        name = token.text
        args: List[ast.Expression] = []
        if self._accept_symbol("("):
            if not self._accept_symbol(")"):
                while True:
                    args.append(self._parse_expression())
                    if self._accept_symbol(")"):
                        break
                    self._expect_symbol(",")
        return ast.ActionRef(name, args)

    # -- parsers ----------------------------------------------------------------------

    def _parse_parser(self) -> ast.ParserDeclaration:
        self._expect_keyword("parser")
        name = self._expect_identifier()
        params = self._parse_parameters()
        self._expect_symbol("{")
        states: List[ast.ParserState] = []
        while not self._accept_symbol("}"):
            states.append(self._parse_state())
        return ast.ParserDeclaration(name, params, states)

    def _parse_state(self) -> ast.ParserState:
        self._expect_keyword("state")
        name = self._expect_identifier()
        self._expect_symbol("{")
        statements: List[ast.Statement] = []
        state = ast.ParserState(name)
        while not self._accept_symbol("}"):
            if self._accept_keyword("transition"):
                if self._accept_keyword("select"):
                    self._expect_symbol("(")
                    state.select_expr = self._parse_expression()
                    self._expect_symbol(")")
                    self._expect_symbol("{")
                    while not self._accept_symbol("}"):
                        if self._accept_keyword("default"):
                            value = None
                        else:
                            value = self._parse_expression()
                        self._expect_symbol(":")
                        target = self._parse_state_name()
                        self._expect_symbol(";")
                        state.cases.append(ast.SelectCase(value, target))
                else:
                    state.next_state = self._parse_state_name()
                    self._expect_symbol(";")
            else:
                statements.append(self._parse_statement())
        state.statements = statements
        return state

    def _parse_state_name(self) -> str:
        token = self._peek()
        if token.kind in (TokenKind.IDENTIFIER, TokenKind.KEYWORD):
            self._advance()
            return token.text
        raise ParserError("expected state name", token)

    # -- statements -----------------------------------------------------------------------

    def _parse_block(self) -> ast.BlockStatement:
        self._expect_symbol("{")
        statements: List[ast.Statement] = []
        while not self._accept_symbol("}"):
            statements.append(self._parse_statement())
        return ast.BlockStatement(statements)

    def _parse_statement(self) -> ast.Statement:
        token = self._peek()
        if token.is_symbol("{"):
            return self._parse_block()
        if token.is_symbol(";"):
            self._advance()
            return ast.EmptyStatement()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("return"):
            self._advance()
            if self._accept_symbol(";"):
                return ast.ReturnStatement(None)
            value = self._parse_expression()
            self._expect_symbol(";")
            return ast.ReturnStatement(value)
        if token.is_keyword("exit"):
            self._advance()
            self._expect_symbol(";")
            return ast.ExitStatement()
        if self._looks_like_type() or token.is_keyword("bit") or token.is_keyword("bool"):
            return self._parse_variable_declaration()
        # Assignment or method-call statement.
        expr = self._parse_expression()
        if self._accept_symbol("="):
            rhs = self._parse_expression()
            self._expect_symbol(";")
            if not ast.is_lvalue(expr):
                raise ParserError("left-hand side of assignment is not an l-value", token)
            return ast.AssignmentStatement(expr, rhs)
        self._expect_symbol(";")
        if isinstance(expr, ast.MethodCallExpression):
            return ast.MethodCallStatement(expr)
        raise ParserError("expression statements must be method calls", token)

    def _parse_variable_declaration(self) -> ast.VariableDeclaration:
        var_type = self._parse_type()
        name = self._expect_identifier()
        initializer = None
        if self._accept_symbol("="):
            initializer = self._parse_expression()
        self._expect_symbol(";")
        return ast.VariableDeclaration(name, var_type, initializer)

    def _parse_if(self) -> ast.IfStatement:
        self._expect_keyword("if")
        self._expect_symbol("(")
        cond = self._parse_expression()
        self._expect_symbol(")")
        then_branch = self._as_block(self._parse_statement())
        else_branch = None
        if self._accept_keyword("else"):
            else_branch = self._as_block(self._parse_statement())
        return ast.IfStatement(cond, then_branch, else_branch)

    @staticmethod
    def _as_block(statement: ast.Statement) -> ast.BlockStatement:
        if isinstance(statement, ast.BlockStatement):
            return statement
        return ast.BlockStatement([statement])

    # -- expressions -------------------------------------------------------------------

    def _parse_expression(self) -> ast.Expression:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expression:
        cond = self._parse_binary(0)
        if self._accept_symbol("?"):
            then = self._parse_expression()
            self._expect_symbol(":")
            orelse = self._parse_expression()
            return ast.Ternary(cond, then, orelse)
        return cond

    _PRECEDENCE: List[Tuple[str, ...]] = [
        ("||",),
        ("&&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("|",),
        ("^",),
        ("&",),
        ("<<", ">>"),
        ("++",),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def _parse_binary(self, level: int) -> ast.Expression:
        if level >= len(self._PRECEDENCE):
            return self._parse_unary()
        operators = self._PRECEDENCE[level]
        left = self._parse_binary(level + 1)
        while True:
            token = self._peek()
            if token.kind == TokenKind.SYMBOL and token.text in operators:
                # Do not treat '>' as an operator if it closes a type argument;
                # the subset only uses '>' inside types when parsing types, so
                # this is safe here.
                self._advance()
                right = self._parse_binary(level + 1)
                left = ast.BinaryOp(token.text, left, right)
            else:
                return left

    def _parse_unary(self) -> ast.Expression:
        token = self._peek()
        if token.is_symbol("!") or token.is_symbol("~") or token.is_symbol("-"):
            self._advance()
            return ast.UnaryOp(token.text, self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expression:
        expr = self._parse_primary()
        while True:
            if self._accept_symbol("."):
                member_token = self._peek()
                if member_token.kind not in (TokenKind.IDENTIFIER, TokenKind.KEYWORD):
                    raise ParserError("expected member name", member_token)
                self._advance()
                expr = ast.Member(expr, member_token.text)
            elif self._accept_symbol("["):
                high = self._parse_expression()
                if self._accept_symbol("]"):
                    # Header-stack element access ``stack[index]`` -- no colon.
                    expr = ast.ArrayIndex(expr, high)
                    continue
                self._expect_symbol(":")
                low = self._parse_expression()
                self._expect_symbol("]")
                if not isinstance(high, ast.Constant) or not isinstance(low, ast.Constant):
                    raise ParserError("slice bounds must be constants", self._peek())
                expr = ast.Slice(expr, high.value, low.value)
            elif self._accept_symbol("("):
                args: List[ast.Expression] = []
                if not self._accept_symbol(")"):
                    while True:
                        args.append(self._parse_expression())
                        if self._accept_symbol(")"):
                            break
                        self._expect_symbol(",")
                expr = ast.MethodCallExpression(expr, args)
            else:
                return expr

    def _parse_primary(self) -> ast.Expression:
        token = self._peek()
        if token.kind == TokenKind.NUMBER:
            self._advance()
            return ast.Constant(token.value, token.width)
        if token.is_keyword("true"):
            self._advance()
            return ast.BoolLiteral(True)
        if token.is_keyword("false"):
            self._advance()
            return ast.BoolLiteral(False)
        if token.is_symbol("("):
            # Either a cast "(bit<8>) expr" / "(bool) expr" or a parenthesised
            # expression.
            next_token = self._peek(1)
            if next_token.is_keyword("bit") or next_token.is_keyword("bool"):
                self._advance()
                target = self._parse_type()
                self._expect_symbol(")")
                return ast.Cast(target, self._parse_unary())
            self._advance()
            expr = self._parse_expression()
            self._expect_symbol(")")
            return expr
        if token.kind == TokenKind.IDENTIFIER:
            self._advance()
            return ast.PathExpression(token.text)
        raise ParserError("expected an expression", token)


def parse_program(source: str) -> ast.Program:
    """Parse P4 source text into an AST program."""

    return Parser(source).parse_program()
