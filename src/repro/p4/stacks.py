"""Header-stack lowering recipes, shared by the mid end and the oracles.

The dynamic stack operations of the subset -- ``extract(stack.next)``,
``stack.last`` reads, ``push_front`` and ``pop_front`` -- are *defined* by
the scalar-header statement sequences this module builds:

* the ``HeaderStackFlattening`` mid-end pass splices the sequences into the
  program (lowering every stack to its constant-indexed elements), and
* both interpreters (:mod:`repro.core.interpreter` symbolically,
  :mod:`repro.targets.execution` concretely) execute the *same* sequences
  when they encounter a native stack operation.

Because the native semantics and the correct lowering are literally the same
statements, translation validation of the flattening pass can never raise a
false alarm -- only the seeded defect variants (an off-by-one element
copy-out around ``nextIndex`` on ``push_front``, a dropped validity-bit move
on ``pop_front``) change the built sequence and therefore the semantics.

Element moves deliberately copy the validity bit *before* the field values:
a field write to an invalid header is a no-op in this subset, so moving
validity first makes the fields of every freshly-invalidated element
unobservable (exactly the guarded-write semantics both interpreters apply).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.p4 import ast

#: Width of the ``nextIndex`` counter in lowered programs.  ``bit<8>``
#: comfortably covers :data:`repro.p4.typecheck.MAX_STACK_SIZE` plus the
#: symbolic interpreter's parser-unroll budget, so the counter never wraps.
NEXT_INDEX_WIDTH = 8


def element(stack_expr: ast.Expression, index: int) -> ast.ArrayIndex:
    """``stack[index]`` with a fresh clone of the stack expression."""

    return ast.ArrayIndex(stack_expr.clone(), ast.Constant(index))


def _set_validity(target: ast.Expression, valid: bool) -> ast.MethodCallStatement:
    method = "setValid" if valid else "setInvalid"
    return ast.MethodCallStatement(
        ast.MethodCallExpression(ast.Member(target, method))
    )


def _is_valid(target: ast.Expression) -> ast.MethodCallExpression:
    return ast.MethodCallExpression(ast.Member(target, "isValid"))


def move_element(
    stack_expr: ast.Expression,
    dst: int,
    src: int,
    field_names: Sequence[str],
    copy_validity: bool = True,
) -> List[ast.Statement]:
    """Statements copying element ``src`` onto element ``dst``.

    The validity bit moves first (see module docstring); ``copy_validity``
    is switched off by the seeded ``stack_flatten_pop_validity_drop``
    defect, which leaves the destination's stale validity in place.
    """

    statements: List[ast.Statement] = []
    if copy_validity:
        statements.append(
            ast.IfStatement(
                _is_valid(element(stack_expr, src)),
                ast.BlockStatement([_set_validity(element(stack_expr, dst), True)]),
                ast.BlockStatement([_set_validity(element(stack_expr, dst), False)]),
            )
        )
    for field_name in field_names:
        statements.append(
            ast.AssignmentStatement(
                ast.Member(element(stack_expr, dst), field_name),
                ast.Member(element(stack_expr, src), field_name),
            )
        )
    return statements


def lower_push_front(
    stack_expr: ast.Expression,
    field_names: Sequence[str],
    size: int,
    count: int,
    off_by_one: bool = False,
) -> List[ast.Statement]:
    """``stack.push_front(count)`` as element moves (P4-16 §8.17).

    Elements shift towards higher indices (high-to-low iteration order, so
    every source is read before it is overwritten) and the freed front
    elements become invalid.  The seeded off-by-one defect starts the
    copy-out one element below the top, so the element at ``size - 1``
    keeps its stale contents instead of receiving ``stack[size-1-count]``.
    """

    count = max(0, count)
    statements: List[ast.Statement] = []
    top = size - 2 if off_by_one else size - 1
    for dst in range(top, count - 1, -1):
        statements.extend(move_element(stack_expr, dst, dst - count, field_names))
    for index in range(min(count, size)):
        statements.append(_set_validity(element(stack_expr, index), False))
    return statements


def lower_pop_front(
    stack_expr: ast.Expression,
    field_names: Sequence[str],
    size: int,
    count: int,
    drop_validity: bool = False,
) -> List[ast.Statement]:
    """``stack.pop_front(count)`` as element moves (P4-16 §8.17).

    Elements shift towards lower indices (low-to-high iteration order) and
    the vacated top elements become invalid.  The seeded validity defect
    moves the field values but not the validity bits, so a shifted element
    keeps whatever validity its destination slot had before the pop.
    """

    count = max(0, count)
    statements: List[ast.Statement] = []
    for dst in range(0, size - count):
        statements.extend(
            move_element(
                stack_expr, dst, dst + count, field_names,
                copy_validity=not drop_validity,
            )
        )
    for index in range(max(size - count, 0), size):
        statements.append(_set_validity(element(stack_expr, index), False))
    return statements


def lower_extract_next(
    stack_expr: ast.Expression,
    counter_ref: ast.Expression,
    size: int,
) -> List[ast.Statement]:
    """``extract(stack.next)`` as a constant-indexed validity chain.

    The element at ``nextIndex`` becomes valid (nothing happens when the
    stack is already full) and the counter advances unconditionally.  Byte
    stream I/O is not modelled, so the element's field values come from the
    input packet state, exactly like the plain-header ``extract``.
    """

    chain: ast.Statement = None  # innermost else: stack full, no element
    for index in reversed(range(size)):
        cond = ast.BinaryOp(
            "==", counter_ref.clone(), ast.Constant(index, NEXT_INDEX_WIDTH)
        )
        chain = ast.IfStatement(
            cond,
            ast.BlockStatement([_set_validity(element(stack_expr, index), True)]),
            ast.BlockStatement([chain]) if chain is not None else None,
        )
    increment = ast.AssignmentStatement(
        counter_ref.clone(),
        ast.BinaryOp("+", counter_ref.clone(), ast.Constant(1, NEXT_INDEX_WIDTH)),
    )
    statements: List[ast.Statement] = [chain] if chain is not None else []
    statements.append(increment)
    return statements


def last_field_expr(
    stack_expr: ast.Expression,
    counter_ref: ast.Expression,
    field_name: str,
    size: int,
) -> ast.Expression:
    """``stack.last.<field>`` as a ternary chain over constant indices.

    ``last`` names the element at ``nextIndex - 1``; when nothing has been
    extracted yet (or the counter ran past the capacity) the chain bottoms
    out at element 0, whose read then follows the normal invalid-header
    undefined-value convention.
    """

    expr: ast.Expression = ast.Member(element(stack_expr, 0), field_name)
    for index in range(1, size):
        cond = ast.BinaryOp(
            "==", counter_ref.clone(), ast.Constant(index + 1, NEXT_INDEX_WIDTH)
        )
        expr = ast.Ternary(
            cond, ast.Member(element(stack_expr, index), field_name), expr
        )
    return expr
