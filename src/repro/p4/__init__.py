"""A P4-16 subset language front end.

This package implements the language substrate the Gauntlet reproduction
tests against: an abstract syntax tree (:mod:`repro.p4.ast`), a type system
(:mod:`repro.p4.types`), a lexer and recursive-descent parser
(:mod:`repro.p4.lexer`, :mod:`repro.p4.parser`), a type checker
(:mod:`repro.p4.typecheck`) and the ``ToP4`` source emitter
(:mod:`repro.p4.emitter`).

The supported subset mirrors what the paper's random program generator
exercises: headers and structs of ``bit<N>`` fields, header stacks
(``Hdr_t hs[N]`` struct fields with constant-indexed element access,
``push_front``/``pop_front``, parser ``extract(stack.next)`` loops and
``stack.last`` reads -- P4-16 §8.17, lowered to scalar elements by the
``HeaderStackFlattening`` mid-end pass), controls with actions and
match-action tables, parsers with select-based transitions, functions with
copy-in/copy-out parameters, slices, and the usual arithmetic / logical
expression forms.  Externs, variable-width bit vectors, method overloading
and generic functions are intentionally out of scope (paper §8).
"""

from repro.p4 import ast
from repro.p4.types import (
    BitType,
    BoolType,
    VoidType,
    HeaderStackType,
    HeaderType,
    StructType,
    P4Type,
)
from repro.p4.lexer import Lexer, Token, TokenKind, LexerError
from repro.p4.parser import Parser, ParserError, parse_program
from repro.p4.emitter import emit_program
from repro.p4.typecheck import TypeChecker, TypeCheckError, check_program

__all__ = [
    "ast",
    "BitType",
    "BoolType",
    "VoidType",
    "HeaderStackType",
    "HeaderType",
    "StructType",
    "P4Type",
    "Lexer",
    "Token",
    "TokenKind",
    "LexerError",
    "Parser",
    "ParserError",
    "parse_program",
    "emit_program",
    "TypeChecker",
    "TypeCheckError",
    "check_program",
]
