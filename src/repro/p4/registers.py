"""Counter-to-register lowering recipes, shared by the mid end and the oracles.

Counters in the subset expose only ``count(index)``; their *semantics* is
defined as the read-modify-write register increment this module builds:

* the ``StatefulLowering`` mid-end pass rewrites every ``counter(N)`` bank
  into a ``register<bit<32>>(N)`` bank (same name, so state keys are
  stable across the pass) and splices the RMW statement sequence in place
  of each ``count`` call, and
* both interpreters (:mod:`repro.core.interpreter` symbolically,
  :mod:`repro.targets.execution` concretely) give a native ``count`` call
  exactly the same semantics -- read the 32-bit cell, add one modulo
  ``2**32``, write it back.

Because the native semantics and the correct lowering agree by definition,
translation validation of the lowering pass can never raise a false alarm;
only the seeded defect variants (a cached stale read that loses one update
per extra ``count``, a hoisted read crossing a preceding write, a
truncating spill cast on wide register writes) change the built sequence
and therefore the semantics.
"""

from __future__ import annotations

from typing import List

from repro.p4 import ast
from repro.p4.types import BitType

#: Width of the register cells counters are lowered onto.  Counters never
#: wrap in practice (a test sequence counts a handful of packets), and one
#: shared width keeps the symbolic state model uniform across both externs.
COUNTER_WIDTH = 32

#: Width register/counter index operands are normalised to before the
#: modulo-by-bank-size wrap.  Every layer (symbolic interpreter, concrete
#: interpreter, back ends) shares this convention so a dynamic index can
#: never make them disagree: coerce to 32 bits, then take the remainder by
#: the bank size.
STATE_INDEX_WIDTH = 32


def counter_register(decl: ast.CounterDeclaration) -> ast.RegisterDeclaration:
    """The register bank a ``counter(N)`` lowers onto (same name and size)."""

    return ast.RegisterDeclaration(decl.name, COUNTER_WIDTH, decl.size)


def read_call(
    bank_name: str, dst: ast.Expression, index: ast.Expression
) -> ast.MethodCallStatement:
    """``bank.read(dst, index);``."""

    return ast.MethodCallStatement(
        ast.MethodCallExpression(
            ast.Member(ast.PathExpression(bank_name), "read"),
            [dst, index.clone()],
        )
    )


def write_call(
    bank_name: str, index: ast.Expression, value: ast.Expression
) -> ast.MethodCallStatement:
    """``bank.write(index, value);``."""

    return ast.MethodCallStatement(
        ast.MethodCallExpression(
            ast.Member(ast.PathExpression(bank_name), "write"),
            [index.clone(), value],
        )
    )


def count_call(bank_name: str, index: ast.Expression) -> ast.MethodCallStatement:
    """``bank.count(index);``."""

    return ast.MethodCallStatement(
        ast.MethodCallExpression(
            ast.Member(ast.PathExpression(bank_name), "count"),
            [index.clone()],
        )
    )


def lower_count(
    bank_name: str,
    index: ast.Expression,
    temp_name: str,
    emit_read: bool = True,
) -> List[ast.Statement]:
    """``cnt.count(index)`` as a register read-modify-write.

    The correct lowering declares a fresh temporary, reads the addressed
    cell into it and writes back ``temp + 1``.  The seeded
    ``stateful_rmw_lost_update`` defect passes ``emit_read=False`` for
    every ``count`` after the first on a bank, reusing the first call's
    stale temporary: two counts on one cell then increment it only once.
    """

    statements: List[ast.Statement] = []
    if emit_read:
        statements.append(
            ast.VariableDeclaration(temp_name, BitType(COUNTER_WIDTH), None)
        )
        statements.append(read_call(bank_name, ast.PathExpression(temp_name), index))
    statements.append(
        write_call(
            bank_name,
            index,
            ast.BinaryOp(
                "+", ast.PathExpression(temp_name), ast.Constant(1, COUNTER_WIDTH)
            ),
        )
    )
    return statements


def narrowed_value(value: ast.Expression, width: int, narrow_to: int = 8) -> ast.Cast:
    """A write value squeezed through a too-narrow spill slot.

    ``(bit<width>)((bit<narrow_to>) value)`` -- the round trip zeroes every
    bit above ``narrow_to``.  Used by the seeded
    ``stateful_spill_width_narrow`` defect on registers wider than
    ``narrow_to`` bits; it is semantics preserving (and so invisible)
    exactly when the register is narrow enough already.
    """

    return ast.Cast(BitType(width), ast.Cast(BitType(narrow_to), value))
