"""Packet state and control-plane configuration shared by all targets.

The observable input/output of the programs in this reproduction is the
``Headers`` struct passed ``inout`` to the programmable blocks: a set of
header instances, each with a validity bit and named ``bit<N>`` fields.
:class:`PacketState` models exactly that, which is what the STF/PTF test
frameworks compare.

Control-plane state is a list of :class:`TableEntry` records, the
reproduction's stand-in for the P4Runtime table configuration of figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.p4 import ast
from repro.p4.types import (
    BitType,
    HeaderStackType,
    HeaderType,
    StructType,
    TypeEnvironment,
)
from repro.p4.typecheck import check_program


def _mask(width: int) -> int:
    return (1 << width) - 1


@dataclass
class HeaderInstance:
    """A single header instance: validity plus field values."""

    header_type: HeaderType
    valid: bool = True
    fields: Dict[str, int] = field(default_factory=dict)

    def get(self, field_name: str) -> int:
        return self.fields.get(field_name, 0)

    def set(self, field_name: str, value: int) -> None:
        field_type = self.header_type.field_type(field_name)
        if field_type is None:
            raise KeyError(f"header {self.header_type.name} has no field {field_name!r}")
        self.fields[field_name] = value & _mask(field_type.width)

    def copy(self) -> "HeaderInstance":
        return HeaderInstance(self.header_type, self.valid, dict(self.fields))


@dataclass
class PacketState:
    """The contents of the ``Headers`` struct for one packet."""

    headers: Dict[str, HeaderInstance] = field(default_factory=dict)
    #: Scalar struct members (bit/bool fields directly inside the struct).
    scalars: Dict[str, int] = field(default_factory=dict)

    def copy(self) -> "PacketState":
        return PacketState(
            headers={name: header.copy() for name, header in self.headers.items()},
            scalars=dict(self.scalars),
        )

    # -- value access by dotted path -----------------------------------------

    def read(self, path: str) -> int:
        """Read ``<header>.<field>`` or a scalar member."""

        if "." in path:
            header_name, field_name = path.split(".", 1)
            header = self.headers.get(header_name)
            if header is None:
                raise KeyError(f"unknown header instance {header_name!r}")
            return header.get(field_name)
        return self.scalars.get(path, 0)

    def write(self, path: str, value: int) -> None:
        if "." in path:
            header_name, field_name = path.split(".", 1)
            header = self.headers.get(header_name)
            if header is None:
                raise KeyError(f"unknown header instance {header_name!r}")
            header.set(field_name, value)
            return
        self.scalars[path] = value

    def observable(self) -> Dict[str, object]:
        """Flatten to a comparable dictionary (the STF/PTF oracle format).

        Fields of invalid headers are reported as ``None`` ("invalid"), which
        matches the paper's header-validity semantics: if an invalid header
        is part of the final output, all of its fields are invalid too.
        """

        out: Dict[str, object] = dict(self.scalars)
        for header_name, header in self.headers.items():
            out[f"{header_name}.$valid"] = header.valid
            for field_name, _ in header.header_type.fields:
                key = f"{header_name}.{field_name}"
                out[key] = header.get(field_name) if header.valid else None
        return out


@dataclass(frozen=True)
class TableEntry:
    """One control-plane match-action entry (exact match only)."""

    table: str
    key: Tuple[int, ...]
    action: str
    action_args: Tuple[int, ...] = ()


def build_packet_state(
    program: ast.Program,
    struct_param_type: str,
    values: Optional[Dict[str, int]] = None,
    valid: bool = True,
) -> PacketState:
    """Construct a :class:`PacketState` for the given ``Headers`` struct type.

    ``values`` maps dotted field paths (``h.a``) to initial values; fields
    not mentioned start at zero.
    """

    checker = check_program(program)
    struct_type = checker.types.lookup(struct_param_type)
    if not isinstance(struct_type, StructType):
        raise KeyError(f"{struct_param_type!r} is not a declared struct")
    state = PacketState()
    for field_name, field_type in struct_type.fields:
        resolved = checker.types.resolve(field_type)
        if isinstance(resolved, HeaderType):
            state.headers[field_name] = HeaderInstance(resolved, valid=valid)
        elif isinstance(resolved, HeaderStackType):
            # One instance per element, addressed as ``<field>[<i>]`` --
            # the same dotted-path convention the symbolic semantics use.
            element_type = checker.types.resolve(resolved.element)
            for index in range(resolved.size):
                state.headers[f"{field_name}[{index}]"] = HeaderInstance(
                    element_type, valid=valid
                )
        elif isinstance(resolved, BitType):
            state.scalars[field_name] = 0
    for path, value in (values or {}).items():
        state.write(path, value)
    return state
