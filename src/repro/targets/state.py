"""Packet state and control-plane configuration shared by all targets.

The observable input/output of the programs in this reproduction is the
``Headers`` struct passed ``inout`` to the programmable blocks: a set of
header instances, each with a validity bit and named ``bit<N>`` fields.
:class:`PacketState` models exactly that, which is what the STF/PTF test
frameworks compare.

Control-plane state is a list of :class:`TableEntry` records, the
reproduction's stand-in for the P4Runtime table configuration of figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.p4 import ast
from repro.p4.registers import COUNTER_WIDTH, STATE_INDEX_WIDTH
from repro.p4.types import (
    BitType,
    HeaderStackType,
    HeaderType,
    StructType,
    TypeEnvironment,
)
from repro.p4.typecheck import check_program


def _mask(width: int) -> int:
    return (1 << width) - 1


@dataclass
class HeaderInstance:
    """A single header instance: validity plus field values."""

    header_type: HeaderType
    valid: bool = True
    fields: Dict[str, int] = field(default_factory=dict)

    def get(self, field_name: str) -> int:
        return self.fields.get(field_name, 0)

    def set(self, field_name: str, value: int) -> None:
        field_type = self.header_type.field_type(field_name)
        if field_type is None:
            raise KeyError(f"header {self.header_type.name} has no field {field_name!r}")
        self.fields[field_name] = value & _mask(field_type.width)

    def copy(self) -> "HeaderInstance":
        return HeaderInstance(self.header_type, self.valid, dict(self.fields))


@dataclass
class PacketState:
    """The contents of the ``Headers`` struct for one packet."""

    headers: Dict[str, HeaderInstance] = field(default_factory=dict)
    #: Scalar struct members (bit/bool fields directly inside the struct).
    scalars: Dict[str, int] = field(default_factory=dict)

    def copy(self) -> "PacketState":
        return PacketState(
            headers={name: header.copy() for name, header in self.headers.items()},
            scalars=dict(self.scalars),
        )

    # -- value access by dotted path -----------------------------------------

    def read(self, path: str) -> int:
        """Read ``<header>.<field>`` or a scalar member."""

        if "." in path:
            header_name, field_name = path.split(".", 1)
            header = self.headers.get(header_name)
            if header is None:
                raise KeyError(f"unknown header instance {header_name!r}")
            return header.get(field_name)
        return self.scalars.get(path, 0)

    def write(self, path: str, value: int) -> None:
        if "." in path:
            header_name, field_name = path.split(".", 1)
            header = self.headers.get(header_name)
            if header is None:
                raise KeyError(f"unknown header instance {header_name!r}")
            header.set(field_name, value)
            return
        self.scalars[path] = value

    def observable(self) -> Dict[str, object]:
        """Flatten to a comparable dictionary (the STF/PTF oracle format).

        Fields of invalid headers are reported as ``None`` ("invalid"), which
        matches the paper's header-validity semantics: if an invalid header
        is part of the final output, all of its fields are invalid too.
        """

        out: Dict[str, object] = dict(self.scalars)
        for header_name, header in self.headers.items():
            out[f"{header_name}.$valid"] = header.valid
            for field_name, _ in header.header_type.fields:
                key = f"{header_name}.{field_name}"
                out[key] = header.get(field_name) if header.valid else None
        return out


@dataclass
class SwitchState:
    """Register files and counter banks that survive across packets.

    A :class:`PacketState` lives for exactly one packet; a ``SwitchState``
    lives for a whole packet *sequence*.  Back ends hold one instance per
    installed program and thread it through every
    :meth:`~repro.targets.execution.ConcreteInterpreter.run` call, which is
    what makes multi-packet tests able to observe stateful miscompilations.

    Counters are stored as register banks of :data:`COUNTER_WIDTH`-bit
    cells under their declared name -- the same convention the
    ``StatefulLowering`` mid-end pass uses, so bank names (and therefore
    observable state keys) are identical before and after lowering.
    """

    #: bank name -> (cell width, cell values).
    banks: Dict[str, Tuple[int, List[int]]] = field(default_factory=dict)
    #: (bank, cell) pairs written since the last :meth:`commit` -- scratch
    #: bookkeeping for end-of-packet effects, never part of the comparison.
    _dirty: set = field(default_factory=set, repr=False, compare=False)

    @classmethod
    def for_program(cls, program: ast.Program) -> "SwitchState":
        """A zero-initialised state with one bank per declared register/counter."""

        state = cls()
        for control in program.controls():
            for local in control.locals:
                if isinstance(local, ast.RegisterDeclaration):
                    state.declare(local.name, local.width, local.size)
                elif isinstance(local, ast.CounterDeclaration):
                    state.declare(local.name, COUNTER_WIDTH, local.size)
        return state

    def declare(self, name: str, width: int, size: int) -> None:
        if name not in self.banks:
            self.banks[name] = (width, [0] * size)

    def _wrap(self, name: str, index: int) -> int:
        _width, values = self.banks[name]
        return (index & _mask(STATE_INDEX_WIDTH)) % len(values)

    def read(self, name: str, index: int) -> int:
        width, values = self.banks[name]
        return values[self._wrap(name, index)]

    def write(self, name: str, index: int, value: int) -> None:
        width, values = self.banks[name]
        cell = self._wrap(name, index)
        values[cell] = value & _mask(width)
        self._dirty.add((name, cell))

    def commit(self, drop_high_byte: bool = False) -> None:
        """End-of-packet flush of the cells written during the run.

        The correct flush is the identity.  With ``drop_high_byte`` (the
        seeded ``ebpf_register_write_drops_high_byte`` back-end defect) the
        persisted map value is one byte too small, so every written cell
        wider than a byte loses its high byte -- the in-packet read path
        used the still-correct scratch value, which is why only the *next*
        packet of a sequence can observe the loss.
        """

        if drop_high_byte:
            for name, cell in self._dirty:
                width, values = self.banks[name]
                if width > 8:
                    values[cell] &= _mask(width - 8)
        self._dirty.clear()

    def copy(self) -> "SwitchState":
        return SwitchState(
            banks={name: (width, list(values)) for name, (width, values) in self.banks.items()}
        )

    def reset(self) -> None:
        """Back to power-on: every cell zero (the start of a new sequence)."""

        for _width, values in self.banks.values():
            for index in range(len(values)):
                values[index] = 0
        self._dirty.clear()

    def observable(self) -> Dict[str, int]:
        """Flatten to the ``$state.<bank>[<i>]`` paths the oracles compare."""

        out: Dict[str, int] = {}
        for name, (_width, values) in self.banks.items():
            for index, value in enumerate(values):
                out[f"$state.{name}[{index}]"] = value
        return out


@dataclass(frozen=True)
class TableEntry:
    """One control-plane match-action entry (exact match only)."""

    table: str
    key: Tuple[int, ...]
    action: str
    action_args: Tuple[int, ...] = ()


def build_packet_state(
    program: ast.Program,
    struct_param_type: str,
    values: Optional[Dict[str, int]] = None,
    valid: bool = True,
) -> PacketState:
    """Construct a :class:`PacketState` for the given ``Headers`` struct type.

    ``values`` maps dotted field paths (``h.a``) to initial values; fields
    not mentioned start at zero.
    """

    checker = check_program(program)
    struct_type = checker.types.lookup(struct_param_type)
    if not isinstance(struct_type, StructType):
        raise KeyError(f"{struct_param_type!r} is not a declared struct")
    state = PacketState()

    def add_header(key: str, instance: HeaderInstance) -> None:
        # Stack elements share the flat header namespace under synthesised
        # ``<field>[<i>]`` keys, so a struct field literally named like one
        # (legal in a hand-built AST) would silently shadow -- or be
        # shadowed by -- the element.  Refuse instead of aliasing state.
        if key in state.headers:
            raise ValueError(
                f"packet-state key {key!r} already taken: a header field "
                "collides with a stack element's synthesised name"
            )
        state.headers[key] = instance

    for field_name, field_type in struct_type.fields:
        resolved = checker.types.resolve(field_type)
        if isinstance(resolved, HeaderType):
            add_header(field_name, HeaderInstance(resolved, valid=valid))
        elif isinstance(resolved, HeaderStackType):
            # One instance per element, addressed as ``<field>[<i>]`` --
            # the same dotted-path convention the symbolic semantics use.
            element_type = checker.types.resolve(resolved.element)
            for index in range(resolved.size):
                add_header(
                    f"{field_name}[{index}]", HeaderInstance(element_type, valid=valid)
                )
        elif isinstance(resolved, BitType):
            state.scalars[field_name] = 0
    for path, value in (values or {}).items():
        state.write(path, value)
    return state
