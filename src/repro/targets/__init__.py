"""P4 target back ends.

The back ends live behind one registry (:data:`BACKEND_REGISTRY`) and share
the concrete execution substrate; the paper's two evaluation platforms were
the first entries, and the registry has since grown (see ``README.md`` in
this package for the backend-author contract):

* :mod:`repro.targets.bmv2` -- an open back end modelled on the BMv2
  "simple switch": the lowered program is observable, and the STF-like test
  framework feeds packets and checks outputs.
* :mod:`repro.targets.tofino` -- a closed back end modelled on the Tofino
  compiler: intermediate programs are *not* exposed, so only packet-level
  testing (the PTF-like framework) can observe its behaviour.
* :mod:`repro.targets.ebpf` -- a closed eBPF/XDP-style back end with
  verifier-flavoured resource limits (instruction budget, bounded loops,
  stack cap); observed through a ``bpf_prog_test_run``-style harness.

All of them execute programs with the shared concrete interpreter in
:mod:`repro.targets.execution` over a :class:`repro.targets.state.PacketState`.
"""

from typing import Dict, NamedTuple, Type

from repro.targets.state import HeaderInstance, PacketState, TableEntry
from repro.targets.execution import ConcreteInterpreter, ExecutionError, TargetSemantics
from repro.targets.bmv2 import Bmv2Executable, Bmv2Target
from repro.targets.tofino import TofinoExecutable, TofinoTarget
from repro.targets.ebpf import EbpfExecutable, EbpfTarget, XdpRunner, XdpTest, XdpResult
from repro.targets.stf import StfRunner, StfTest, StfResult
from repro.targets.ptf import PtfRunner, PtfTest, PtfResult


class BackendSpec(NamedTuple):
    """Everything needed to compile for and packet-test one back end.

    The campaign engine ships work units to worker processes by *platform
    name* and resolves the classes there, so every entry must be importable
    and constructible from a bare :class:`~repro.compiler.CompilerOptions`
    (no sharing of compiler state across processes).
    """

    target_cls: Type
    runner_cls: Type
    test_cls: Type


#: Platform name -> backend classes, in deterministic platform order.
#: ``p4c`` is absent on purpose: the open toolchain is validated by
#: translation validation, not packet tests.
BACKEND_REGISTRY: Dict[str, BackendSpec] = {
    "bmv2": BackendSpec(Bmv2Target, StfRunner, StfTest),
    "tofino": BackendSpec(TofinoTarget, PtfRunner, PtfTest),
    "ebpf": BackendSpec(EbpfTarget, XdpRunner, XdpTest),
}


__all__ = [
    "BackendSpec",
    "BACKEND_REGISTRY",
    "HeaderInstance",
    "PacketState",
    "TableEntry",
    "ConcreteInterpreter",
    "ExecutionError",
    "TargetSemantics",
    "Bmv2Executable",
    "Bmv2Target",
    "TofinoExecutable",
    "TofinoTarget",
    "EbpfExecutable",
    "EbpfTarget",
    "StfRunner",
    "StfTest",
    "StfResult",
    "PtfRunner",
    "PtfTest",
    "PtfResult",
    "XdpRunner",
    "XdpTest",
    "XdpResult",
]
