"""P4 target back ends.

Two back ends are provided, mirroring the platforms the paper evaluates:

* :mod:`repro.targets.bmv2` -- an open back end modelled on the BMv2
  "simple switch": the lowered program is observable, and the STF-like test
  framework feeds packets and checks outputs.
* :mod:`repro.targets.tofino` -- a closed back end modelled on the Tofino
  compiler: intermediate programs are *not* exposed, so only packet-level
  testing (the PTF-like framework) can observe its behaviour.

Both execute programs with the shared concrete interpreter in
:mod:`repro.targets.execution` over a :class:`repro.targets.state.PacketState`.
"""

from repro.targets.state import HeaderInstance, PacketState, TableEntry
from repro.targets.execution import ConcreteInterpreter, ExecutionError, TargetSemantics
from repro.targets.bmv2 import Bmv2Executable, Bmv2Target
from repro.targets.tofino import TofinoExecutable, TofinoTarget
from repro.targets.stf import StfRunner, StfTest, StfResult
from repro.targets.ptf import PtfRunner, PtfTest, PtfResult

__all__ = [
    "HeaderInstance",
    "PacketState",
    "TableEntry",
    "ConcreteInterpreter",
    "ExecutionError",
    "TargetSemantics",
    "Bmv2Executable",
    "Bmv2Target",
    "TofinoExecutable",
    "TofinoTarget",
    "StfRunner",
    "StfTest",
    "StfResult",
    "PtfRunner",
    "PtfTest",
    "PtfResult",
]
