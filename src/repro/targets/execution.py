"""Concrete execution of P4 programs on a packet.

This is the behavioural-model substrate: it interprets a program from the
subset directly over a :class:`~repro.targets.state.PacketState`, applying
the target's conventions for undefined values.  Every registered back end
(BMv2, Tofino, eBPF, ...) executes through this interpreter with its own
:class:`TargetSemantics` seeded-bug flags, just as the hardware targets in
the paper all consume P4C's mid-end output.

Semantics notes (kept deliberately aligned with the symbolic interpreter in
:mod:`repro.core.interpreter` so that a correct compiler never produces
expected/observed mismatches):

* reading an uninitialised local or a field of an invalid header yields the
  target's undefined value (zero, like BMv2),
* writing a field of an invalid header is a no-op,
* ``setValid``/``setInvalid`` only toggle the validity bit; field contents
  are retained,
* division/remainder by zero follow the SMT-LIB convention (all-ones /
  dividend), and oversized shifts yield zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.p4 import ast
from repro.p4 import stacks as stack_lowering
from repro.p4.registers import COUNTER_WIDTH
from repro.p4.stacks import NEXT_INDEX_WIDTH
from repro.p4.typecheck import check_program
from repro.p4.types import (
    BitType,
    BoolType,
    HeaderStackType,
    HeaderType,
    P4Type,
    StructType,
)
from repro.targets.state import HeaderInstance, PacketState, SwitchState, TableEntry


class ExecutionError(Exception):
    """Raised when a program cannot be executed (malformed IR, bad config)."""


class _ExitSignal(Exception):
    """Internal: raised by ``exit`` statements to unwind the interpreter."""


class _ReturnSignal(Exception):
    """Internal: raised by ``return`` statements inside functions."""

    def __init__(self, value: Optional["Value"]) -> None:
        super().__init__("return")
        self.value = value


@dataclass(frozen=True)
class TargetSemantics:
    """Target-specific interpretation of undefined behaviour."""

    name: str = "bmv2"
    #: Value observed when reading uninitialised storage.
    undefined_value: int = 0
    #: Drop assignments to slices narrower than this many bits
    #: (the Tofino ``tofino_slice_assignment_drop`` seeded defect).
    drop_narrow_slice_writes_below: int = 0
    #: Invert negated if conditions (``tofino_ternary_condition_flip``).
    flip_negated_conditions: bool = False
    #: Truncate writes to fields wider than 32 bits
    #: (``bmv2_wide_field_truncation``).
    truncate_wide_fields: bool = False
    #: On a table lookup miss, fall through to the table's first action
    #: instead of the declared default (``ebpf_map_lookup_miss_action``).
    miss_runs_first_action: bool = False
    #: Narrowing casts keep the source's *high* bits -- the AND-mask after
    #: the register move is dropped, so the value is taken from the wrong
    #: end of the 64-bit register (``ebpf_narrowing_cast_drop``).
    narrowing_cast_high_bits: bool = False
    #: Reads of 16-bit header fields return the byte-swapped value -- a
    #: missing network-to-host conversion (``ebpf_byte_order_swap``).
    swap_16bit_field_reads: bool = False
    #: The end-of-packet flush that persists register cells into the
    #: target's map uses a value one byte too small, so written cells lose
    #: their high byte *between* packets while same-packet reads still see
    #: the full value (``ebpf_register_write_drops_high_byte``).
    register_write_drops_high_byte: bool = False


def _mask(width: int) -> int:
    return (1 << width) - 1


@dataclass
class Value:
    """A concrete bit-vector value with its width (or a Boolean)."""

    value: Union[int, bool]
    width: Optional[int] = None  # None for Booleans

    @property
    def as_int(self) -> int:
        return int(self.value)

    @property
    def as_bool(self) -> bool:
        return bool(self.value)


class ConcreteInterpreter:
    """Execute one program's parser + ingress control over a packet."""

    MAX_PARSER_STEPS = 256

    def __init__(
        self,
        program: ast.Program,
        semantics: Optional[TargetSemantics] = None,
        ingress_name: Optional[str] = None,
    ) -> None:
        self.program = program
        self.semantics = semantics or TargetSemantics()
        self.checker = check_program(program)
        self.controls = {control.name: control for control in program.controls()}
        self.parsers = {parser.name: parser for parser in program.parsers()}
        self.functions = {function.name: function for function in program.functions()}
        #: Header-stack struct fields: field name -> (element type, size).
        #: Collected only from the struct types bound as block parameters --
        #: the structs whose fields actually address the packet state --
        #: mirroring how the symbolic interpreter resolves stacks, so a
        #: same-named stack in an unused struct cannot shadow the real one.
        self.stacks: Dict[str, Tuple[HeaderType, int]] = {}
        for declaration in list(program.controls()) + list(program.parsers()):
            for parameter in declaration.params:
                param_type = self.checker.types.resolve(parameter.param_type)
                if not isinstance(param_type, StructType):
                    continue
                for field_name, field_type in param_type.fields:
                    if isinstance(field_type, HeaderStackType):
                        element = self.checker.types.resolve(field_type.element)
                        self.stacks[field_name] = (element, field_type.size)
        if ingress_name is None:
            if not self.controls:
                raise ExecutionError("program has no control block to execute")
            ingress_name = next(iter(self.controls))
        if ingress_name not in self.controls:
            raise ExecutionError(f"unknown control {ingress_name!r}")
        self.ingress = self.controls[ingress_name]

    # -- public API ---------------------------------------------------------

    def run(
        self,
        packet: PacketState,
        entries: Sequence[TableEntry] = (),
        run_parser: bool = True,
        switch_state: Optional[SwitchState] = None,
    ) -> PacketState:
        """Execute the program on ``packet`` and return the output packet.

        ``switch_state`` is the persistent register/counter state the packet
        runs against; passing the same instance to consecutive calls
        executes a multi-packet sequence.  ``None`` (the default, and the
        behaviour of every pre-stateful caller) runs against a fresh
        power-on state that is discarded afterwards.
        """

        state = packet.copy()
        if switch_state is None:
            switch_state = SwitchState.for_program(self.program)
        else:
            # Late-declare any bank the caller's state does not know yet so
            # a state built for the pre-lowering program keeps working.
            for control in self.program.controls():
                for local in control.locals:
                    if isinstance(local, ast.RegisterDeclaration):
                        switch_state.declare(local.name, local.width, local.size)
                    elif isinstance(local, ast.CounterDeclaration):
                        switch_state.declare(local.name, COUNTER_WIDTH, local.size)
        entries_by_table: Dict[str, List[TableEntry]] = {}
        for entry in entries:
            entries_by_table.setdefault(entry.table, []).append(entry)

        if run_parser and self.parsers:
            parser = next(iter(self.parsers.values()))
            self._run_parser(parser, state, entries_by_table)

        self._run_control(self.ingress, state, entries_by_table, switch_state)
        switch_state.commit(
            drop_high_byte=self.semantics.register_write_drops_high_byte
        )
        return state

    # -- block execution ---------------------------------------------------------

    def _run_parser(
        self,
        parser: ast.ParserDeclaration,
        state: PacketState,
        entries: Dict[str, List[TableEntry]],
    ) -> None:
        frame = _Frame(self, state, entries, control=None)
        current = "start"
        for _ in range(self.MAX_PARSER_STEPS):
            if current in ("accept", "reject"):
                return
            parser_state = parser.state(current)
            if parser_state is None:
                raise ExecutionError(f"parser transitions to unknown state {current!r}")
            try:
                for statement in parser_state.statements:
                    frame.execute(statement)
            except _ExitSignal:
                return
            current = self._next_state(parser_state, frame)
        raise ExecutionError("parser did not reach accept/reject within the step budget")

    def _next_state(self, parser_state: ast.ParserState, frame: "_Frame") -> str:
        if parser_state.select_expr is None:
            return parser_state.next_state or "accept"
        selector = frame.evaluate(parser_state.select_expr)
        default_target = "reject"
        for case in parser_state.cases:
            if case.value is None:
                default_target = case.next_state
                continue
            case_value = frame.evaluate(case.value)
            if case_value.as_int == selector.as_int:
                return case.next_state
        return default_target

    def _run_control(
        self,
        control: ast.ControlDeclaration,
        state: PacketState,
        entries: Dict[str, List[TableEntry]],
        switch_state: Optional[SwitchState] = None,
    ) -> None:
        frame = _Frame(self, state, entries, control=control, switch=switch_state)
        for local in control.locals:
            if isinstance(local, ast.VariableDeclaration):
                frame.declare(local)
        try:
            frame.execute(control.apply)
        except _ExitSignal:
            pass


class _Frame:
    """Execution state for one block: local variables plus the packet."""

    def __init__(
        self,
        interpreter: ConcreteInterpreter,
        state: PacketState,
        entries: Dict[str, List[TableEntry]],
        control: Optional[ast.ControlDeclaration],
        switch: Optional[SwitchState] = None,
    ) -> None:
        self.interpreter = interpreter
        self.state = state
        self.entries = entries
        self.control = control
        self.switch = switch
        self.locals: Dict[str, Value] = {}
        self.local_types: Dict[str, P4Type] = {}
        self.actions: Dict[str, ast.ActionDeclaration] = {}
        self.tables: Dict[str, ast.TableDeclaration] = {}
        if control is not None:
            for local in control.locals:
                if isinstance(local, ast.ActionDeclaration):
                    self.actions[local.name] = local
                elif isinstance(local, ast.TableDeclaration):
                    self.tables[local.name] = local
        # Per-stack nextIndex counters, kept as internal locals so the
        # lowered stack statement sequences (repro.p4.stacks) execute
        # unchanged.  The ``$`` keeps the slot out of program namespaces.
        for stack_name in interpreter.stacks:
            counter = f"{stack_name}.$nextIndex"
            self.locals[counter] = Value(0, NEXT_INDEX_WIDTH)
            self.local_types[counter] = BitType(NEXT_INDEX_WIDTH)

    # -- declarations ------------------------------------------------------------

    def declare(self, declaration: ast.VariableDeclaration) -> None:
        var_type = self.interpreter.checker.types.resolve(declaration.var_type)
        self.local_types[declaration.name] = var_type
        if declaration.initializer is not None:
            self.locals[declaration.name] = self._coerce(
                self.evaluate(declaration.initializer), var_type
            )
        else:
            self.locals[declaration.name] = self._default_value(var_type)

    def _default_value(self, var_type: P4Type) -> Value:
        undefined = self.interpreter.semantics.undefined_value
        if isinstance(var_type, BoolType):
            return Value(bool(undefined), None)
        if isinstance(var_type, BitType):
            return Value(undefined & _mask(var_type.width), var_type.width)
        raise ExecutionError(f"cannot create a local of type {var_type}")

    def _coerce(self, value: Value, var_type: P4Type) -> Value:
        if isinstance(var_type, BitType):
            return Value(value.as_int & _mask(var_type.width), var_type.width)
        if isinstance(var_type, BoolType):
            return Value(value.as_bool, None)
        return value

    # -- statements ---------------------------------------------------------------

    def execute(self, statement: ast.Statement) -> None:
        if isinstance(statement, ast.BlockStatement):
            for child in statement.statements:
                self.execute(child)
        elif isinstance(statement, ast.VariableDeclaration):
            self.declare(statement)
        elif isinstance(statement, ast.AssignmentStatement):
            self._assign(statement.lhs, self.evaluate(statement.rhs))
        elif isinstance(statement, ast.IfStatement):
            condition = self.evaluate(statement.cond).as_bool
            if self.interpreter.semantics.flip_negated_conditions and isinstance(
                statement.cond, ast.UnaryOp
            ) and statement.cond.op == "!":
                condition = not condition  # seeded Tofino gateway defect
            if condition:
                self.execute(statement.then_branch)
            elif statement.else_branch is not None:
                self.execute(statement.else_branch)
        elif isinstance(statement, ast.MethodCallStatement):
            self._execute_call(statement.call)
        elif isinstance(statement, ast.ExitStatement):
            raise _ExitSignal()
        elif isinstance(statement, ast.ReturnStatement):
            value = self.evaluate(statement.value) if statement.value is not None else None
            raise _ReturnSignal(value)
        elif isinstance(statement, ast.EmptyStatement):
            return
        else:
            raise ExecutionError(f"cannot execute statement {type(statement).__name__}")

    # -- l-values ---------------------------------------------------------------------

    def _assign(self, lhs: ast.Expression, value: Value) -> None:
        if isinstance(lhs, ast.PathExpression):
            if lhs.name in self.locals:
                var_type = self.local_types.get(lhs.name)
                self.locals[lhs.name] = (
                    self._coerce(value, var_type) if var_type is not None else value
                )
                return
            raise ExecutionError(f"assignment to unknown variable {lhs.name!r}")
        if isinstance(lhs, ast.Member):
            self._assign_member(lhs, value)
            return
        if isinstance(lhs, ast.Slice):
            narrow_limit = self.interpreter.semantics.drop_narrow_slice_writes_below
            width = lhs.high - lhs.low + 1
            if narrow_limit and width < narrow_limit:
                return  # seeded Tofino PHV defect: narrow slice writes vanish
            current = self.evaluate(lhs.expr)
            if current.width is None:
                raise ExecutionError("cannot slice a Boolean value")
            mask = _mask(width) << lhs.low
            new_value = (current.as_int & ~mask) | ((value.as_int & _mask(width)) << lhs.low)
            self._assign(lhs.expr, Value(new_value, current.width))
            return
        raise ExecutionError("unsupported assignment target")

    def _assign_member(self, lhs: ast.Member, value: Value) -> None:
        resolved = self._resolve_member(lhs)
        if resolved is None:
            raise ExecutionError(f"cannot resolve l-value {lhs}")
        kind, owner, field_name = resolved
        if kind == "header_field":
            header: HeaderInstance = owner
            if not header.valid:
                return  # writes to invalid headers are no-ops
            field_type = header.header_type.field_type(field_name)
            masked = value.as_int & _mask(field_type.width)
            if (
                self.interpreter.semantics.truncate_wide_fields
                and field_type.width > 32
            ):
                masked &= _mask(32)  # seeded BMv2 defect
            header.fields[field_name] = masked
            return
        if kind == "scalar":
            self.state.scalars[field_name] = value.as_int
            return
        raise ExecutionError(f"unsupported member assignment {lhs}")

    def _member_string(self, expr: ast.Expression) -> Optional[str]:
        """Dotted path of a member chain, stack elements as ``name[i]``.

        The root path expression (the Headers struct parameter) contributes
        nothing, so ``hdr.hs[1].a`` resolves to ``hs[1].a`` -- the key
        convention :class:`~repro.targets.state.PacketState` uses.
        """

        if isinstance(expr, ast.PathExpression):
            return ""
        if isinstance(expr, ast.Member):
            base = self._member_string(expr.expr)
            if base is None:
                return None
            return f"{base}.{expr.member}" if base else expr.member
        if isinstance(expr, ast.ArrayIndex):
            base = self._member_string(expr.expr)
            if base is None or not isinstance(expr.index, ast.Constant):
                return None
            return f"{base}[{expr.index.value}]"
        return None

    def _resolve_member(self, expr: ast.Member):
        """Resolve ``hdr.h.a``-style members to (kind, owner, field)."""

        path = self._member_string(expr)
        if not path:
            return None
        if "." in path:
            header_name, field_name = path.split(".", 1)
            header = self.state.headers.get(header_name)
            if header is not None and "." not in field_name:
                return ("header_field", header, field_name)
            return None
        if path in self.state.headers:
            return None  # a bare header instance is not a value
        # Any other single-segment member is a struct scalar.  Unknown names
        # resolve too (reads default to 0, writes create the slot): the
        # mid end may add scalar fields -- e.g. the flattened nextIndex
        # counters -- that the input program's packet layout predates.
        return ("scalar", None, path)

    # -- calls -----------------------------------------------------------------------------

    def _execute_call(self, call: ast.MethodCallExpression) -> Optional[Value]:
        target = call.target
        if isinstance(target, ast.Member):
            method = target.member
            if method in ("setValid", "setInvalid"):
                header = self._header_for(target.expr)
                header.valid = method == "setValid"
                return None
            if method == "isValid":
                header = self._header_for(target.expr)
                return Value(header.valid, None)
            if method == "apply":
                if isinstance(target.expr, ast.PathExpression):
                    self._apply_table(target.expr.name)
                    return None
                raise ExecutionError("apply() on a non-table expression")
            if method in ("extract", "emit"):
                # Byte-stream I/O is not modelled; extract marks the header
                # valid (its field values come from the input packet state).
                if call.args and isinstance(call.args[0], (ast.Member, ast.PathExpression)):
                    arg = call.args[0]
                    stack = (
                        self._stack_of(arg.expr)
                        if isinstance(arg, ast.Member) and arg.member == "next"
                        else None
                    )
                    if stack is not None:
                        if method == "extract":
                            self._extract_stack_next(arg.expr, stack)
                        return None
                    header = self._header_for(arg)
                    if method == "extract":
                        header.valid = True
                return None
            if method in ("push_front", "pop_front"):
                stack = self._stack_of(target.expr)
                if stack is None:
                    raise ExecutionError(f"{method} on a non-stack expression")
                if not call.args or not isinstance(call.args[0], ast.Constant):
                    raise ExecutionError(f"{method} needs a constant count")
                element_type, size = self.interpreter.stacks[stack]
                field_names = element_type.field_names()
                count = call.args[0].value
                if method == "push_front":
                    lowered = stack_lowering.lower_push_front(
                        target.expr, field_names, size, count
                    )
                else:
                    lowered = stack_lowering.lower_pop_front(
                        target.expr, field_names, size, count
                    )
                for statement in lowered:
                    self.execute(statement)
                return None
            if method in ("read", "write", "count"):
                self._execute_state_call(method, target, call)
                return None
            raise ExecutionError(f"unknown method {method!r}")
        if isinstance(target, ast.PathExpression):
            if target.name == "NoAction":
                return None
            action = self.actions.get(target.name)
            if action is not None:
                self._invoke_action(action, call.args, entry_args=None)
                return None
            function = self.interpreter.functions.get(target.name)
            if function is not None:
                return self._invoke_function(function, call.args)
            raise ExecutionError(f"call to unknown callee {target.name!r}")
        raise ExecutionError("unsupported call target")

    def _header_for(self, expr: ast.Expression) -> HeaderInstance:
        if isinstance(expr, (ast.Member, ast.ArrayIndex)):
            path = self._member_string(expr)
            if path:
                header = self.state.headers.get(path)
                if header is not None:
                    return header
        raise ExecutionError(f"expression {expr} does not name a header instance")

    # -- header stacks ----------------------------------------------------------------------
    #
    # Native stack operations run the exact statement sequences the correct
    # HeaderStackFlattening lowering emits (repro.p4.stacks), so running a
    # program before or after the (correct) pass gives identical packets.

    def _stack_of(self, expr: ast.Expression) -> Optional[str]:
        path = self._member_string(expr)
        if path and path in self.interpreter.stacks:
            return path
        return None

    def _counter_ref(self, stack: str) -> ast.PathExpression:
        return ast.PathExpression(f"{stack}.$nextIndex")

    def _extract_stack_next(self, stack_expr: ast.Expression, stack: str) -> None:
        _element_type, size = self.interpreter.stacks[stack]
        lowered = stack_lowering.lower_extract_next(
            stack_expr, self._counter_ref(stack), size
        )
        for statement in lowered:
            self.execute(statement)

    # -- registers and counters --------------------------------------------------
    #
    # Semantics deliberately mirror the symbolic interpreter: indices are
    # truncated to STATE_INDEX_WIDTH bits and wrapped modulo the bank size
    # (SwitchState does both), counts are 32-bit read-modify-write
    # increments, and writes are masked to the cell width.

    def _execute_state_call(
        self, method: str, target: ast.Member, call: ast.MethodCallExpression
    ) -> None:
        if self.switch is None or not (
            isinstance(target.expr, ast.PathExpression)
            and target.expr.name in self.switch.banks
        ):
            raise ExecutionError(f"{method} on a non-state expression")
        name = target.expr.name
        width, _values = self.switch.banks[name]
        if method == "count":
            if len(call.args) != 1:
                raise ExecutionError("count takes exactly one argument")
            index = self.evaluate(call.args[0]).as_int
            self.switch.write(name, index, self.switch.read(name, index) + 1)
            return
        if len(call.args) != 2:
            raise ExecutionError(f"{method} takes exactly two arguments")
        if method == "read":
            index = self.evaluate(call.args[1]).as_int
            self._assign(call.args[0], Value(self.switch.read(name, index), width))
            return
        index = self.evaluate(call.args[0]).as_int
        self.switch.write(name, index, self.evaluate(call.args[1]).as_int)

    def _invoke_action(
        self,
        action: ast.ActionDeclaration,
        call_args: Sequence[ast.Expression],
        entry_args: Optional[Sequence[int]],
    ) -> None:
        saved_locals = dict(self.locals)
        saved_types = dict(self.local_types)
        copy_out: List[Tuple[ast.Expression, str]] = []
        directional = [param for param in action.params if param.direction]
        dataplane = [param for param in action.params if not param.direction]

        if call_args:
            for param, arg in zip(action.params, call_args):
                param_type = self.interpreter.checker.types.resolve(param.param_type)
                if param.is_readable:
                    self.locals[param.name] = self._coerce(self.evaluate(arg), param_type)
                else:
                    self.locals[param.name] = self._default_value(param_type)
                self.local_types[param.name] = param_type
                if param.is_writable:
                    copy_out.append((arg, param.name))
        elif entry_args is not None:
            for param, raw in zip(dataplane, entry_args):
                param_type = self.interpreter.checker.types.resolve(param.param_type)
                self.locals[param.name] = self._coerce(Value(raw, None), param_type)
                self.local_types[param.name] = param_type
        elif directional or dataplane:
            for param in action.params:
                param_type = self.interpreter.checker.types.resolve(param.param_type)
                self.locals[param.name] = self._default_value(param_type)
                self.local_types[param.name] = param_type

        exited = False
        try:
            self.execute(action.body)
        except _ExitSignal:
            exited = True
        finally:
            # Copy-out still applies when the action exits (spec clarification
            # triggered by the bug in figure 5f).
            pending = [(arg, self.locals[name]) for arg, name in copy_out]
            self.locals = saved_locals
            self.local_types = saved_types
            for arg, value in pending:
                self._assign(arg, value)
        if exited:
            raise _ExitSignal()

    def _invoke_function(
        self, function: ast.FunctionDeclaration, call_args: Sequence[ast.Expression]
    ) -> Optional[Value]:
        saved_locals = dict(self.locals)
        saved_types = dict(self.local_types)
        copy_out: List[Tuple[ast.Expression, str]] = []
        for param, arg in zip(function.params, call_args):
            param_type = self.interpreter.checker.types.resolve(param.param_type)
            if param.is_readable:
                self.locals[param.name] = self._coerce(self.evaluate(arg), param_type)
            else:
                self.locals[param.name] = self._default_value(param_type)
            self.local_types[param.name] = param_type
            if param.is_writable:
                copy_out.append((arg, param.name))
        result: Optional[Value] = None
        try:
            self.execute(function.body)
        except _ReturnSignal as signal:
            result = signal.value
        finally:
            pending = [(arg, self.locals[name]) for arg, name in copy_out]
            self.locals = saved_locals
            self.local_types = saved_types
            for arg, value in pending:
                self._assign(arg, value)
        return result

    def _apply_table(self, table_name: str) -> None:
        table = self.tables.get(table_name)
        if table is None:
            raise ExecutionError(f"apply() on unknown table {table_name!r}")
        key_values = tuple(self.evaluate(key.expr).as_int for key in table.keys)
        chosen: Optional[TableEntry] = None
        for entry in self.entries.get(table_name, []):
            if tuple(entry.key) == key_values:
                chosen = entry
                break
        if chosen is not None:
            action_name = chosen.action
            entry_args: Optional[Sequence[int]] = chosen.action_args
        elif self.interpreter.semantics.miss_runs_first_action and table.actions:
            # Seeded eBPF defect: the jump table emitted for the lookup
            # result has no miss branch, so a miss falls through into the
            # first action's block with zeroed data-plane arguments.
            action_name = table.actions[0].name
            fallback = self.actions.get(action_name)
            entry_args = (
                tuple(0 for p in fallback.params if not p.direction)
                if fallback is not None
                else None
            )
        else:
            default = table.default_action or ast.ActionRef("NoAction")
            action_name = default.name
            entry_args = tuple(
                self.evaluate(arg).as_int for arg in default.args
            ) or None
        if action_name == "NoAction":
            return
        action = self.actions.get(action_name)
        if action is None:
            raise ExecutionError(
                f"table {table_name!r} selected unknown action {action_name!r}"
            )
        self._invoke_action(action, call_args=(), entry_args=entry_args or ())

    # -- expressions ------------------------------------------------------------------------

    def evaluate(self, expr: ast.Expression) -> Value:
        if isinstance(expr, ast.Constant):
            # Width-less literals behave like 32-bit values unless a binary
            # operator adapts them to its other operand (see
            # :meth:`_evaluate_binary`), matching the symbolic interpreter.
            return Value(expr.value, expr.width if expr.width is not None else 32)
        if isinstance(expr, ast.BoolLiteral):
            return Value(expr.value, None)
        if isinstance(expr, ast.PathExpression):
            if expr.name in self.locals:
                return self.locals[expr.name]
            raise ExecutionError(f"read of unknown variable {expr.name!r}")
        if isinstance(expr, ast.Member):
            return self._evaluate_member(expr)
        if isinstance(expr, ast.Slice):
            base = self.evaluate(expr.expr)
            width = expr.high - expr.low + 1
            return Value((base.as_int >> expr.low) & _mask(width), width)
        if isinstance(expr, ast.UnaryOp):
            return self._evaluate_unary(expr)
        if isinstance(expr, ast.BinaryOp):
            return self._evaluate_binary(expr)
        if isinstance(expr, ast.Ternary):
            if self.evaluate(expr.cond).as_bool:
                return self.evaluate(expr.then)
            return self.evaluate(expr.orelse)
        if isinstance(expr, ast.Cast):
            target = self.interpreter.checker.types.resolve(expr.target)
            value = self.evaluate(expr.expr)
            if isinstance(target, BitType):
                if (
                    self.interpreter.semantics.narrowing_cast_high_bits
                    and value.width is not None
                    and value.width > target.width
                ):
                    # Seeded eBPF defect: the narrowing move keeps the high
                    # end of the register instead of masking the low bits.
                    shifted = value.as_int >> (value.width - target.width)
                    return Value(shifted & _mask(target.width), target.width)
                return Value(value.as_int & _mask(target.width), target.width)
            if isinstance(target, BoolType):
                return Value(bool(value.as_int), None)
            raise ExecutionError(f"unsupported cast to {target}")
        if isinstance(expr, ast.MethodCallExpression):
            result = self._execute_call(expr)
            if result is None:
                raise ExecutionError("void call used as an expression")
            return result
        raise ExecutionError(f"cannot evaluate expression {type(expr).__name__}")

    def _evaluate_member(self, expr: ast.Member) -> Value:
        # ``stack.last.<field>``: evaluate the same constant-indexed ternary
        # chain the flattening pass emits, against the nextIndex counter.
        if isinstance(expr.expr, ast.Member) and expr.expr.member == "last":
            stack = self._stack_of(expr.expr.expr)
            if stack is not None:
                _element_type, size = self.interpreter.stacks[stack]
                chain = stack_lowering.last_field_expr(
                    expr.expr.expr, self._counter_ref(stack), expr.member, size
                )
                return self.evaluate(chain)
        resolved = self._resolve_member(expr)
        if resolved is None:
            raise ExecutionError(f"cannot evaluate member {expr}")
        kind, owner, field_name = resolved
        if kind == "header_field":
            header: HeaderInstance = owner
            field_type = header.header_type.field_type(field_name)
            if field_type is None:
                raise ExecutionError(
                    f"header {header.header_type.name} has no field {field_name!r}"
                )
            if not header.valid:
                undefined = self.interpreter.semantics.undefined_value
                return Value(undefined & _mask(field_type.width), field_type.width)
            raw = header.get(field_name)
            if (
                self.interpreter.semantics.swap_16bit_field_reads
                and field_type.width == 16
            ):
                # Seeded eBPF defect: a missing ntohs() on 16-bit loads.
                raw = ((raw & 0xFF) << 8) | (raw >> 8)
            return Value(raw, field_type.width)
        if kind == "scalar":
            return Value(self.state.scalars.get(field_name, 0), None)
        raise ExecutionError(f"unsupported member read {expr}")

    def _evaluate_unary(self, expr: ast.UnaryOp) -> Value:
        operand = self.evaluate(expr.expr)
        if expr.op == "!":
            return Value(not operand.as_bool, None)
        if operand.width is None:
            raise ExecutionError(f"operator {expr.op} needs a sized operand")
        if expr.op == "~":
            return Value((~operand.as_int) & _mask(operand.width), operand.width)
        if expr.op == "-":
            return Value((-operand.as_int) & _mask(operand.width), operand.width)
        raise ExecutionError(f"unknown unary operator {expr.op!r}")

    def _evaluate_binary(self, expr: ast.BinaryOp) -> Value:
        op = expr.op
        if op in ("&&", "||"):
            left = self.evaluate(expr.left).as_bool
            if op == "&&":
                return Value(left and self.evaluate(expr.right).as_bool, None)
            return Value(left or self.evaluate(expr.right).as_bool, None)

        left = self.evaluate(expr.left)
        right = self.evaluate(expr.right)
        # Width-less literals adapt to the width of the other operand, as in
        # P4-16's treatment of arbitrary-precision literals.
        if (
            isinstance(expr.left, ast.Constant)
            and expr.left.width is None
            and right.width is not None
        ):
            left = Value(left.as_int & _mask(right.width), right.width)
        elif (
            isinstance(expr.right, ast.Constant)
            and expr.right.width is None
            and left.width is not None
        ):
            right = Value(right.as_int & _mask(left.width), left.width)
        width = left.width if left.width is not None else right.width

        if op in ("==", "!="):
            equal = left.as_int == right.as_int
            return Value(equal if op == "==" else not equal, None)
        if op in ("<", "<=", ">", ">="):
            table = {
                "<": left.as_int < right.as_int,
                "<=": left.as_int <= right.as_int,
                ">": left.as_int > right.as_int,
                ">=": left.as_int >= right.as_int,
            }
            return Value(table[op], None)
        if op == "++":
            if left.width is None or right.width is None:
                raise ExecutionError("concatenation needs sized operands")
            return Value(
                (left.as_int << right.width) | right.as_int, left.width + right.width
            )

        a, b = left.as_int, right.as_int
        if op == "+":
            result = a + b
        elif op == "-":
            result = a - b
        elif op == "*":
            result = a * b
        elif op == "/":
            result = a // b if b != 0 else (_mask(width) if width else 0)
        elif op == "%":
            result = a % b if b != 0 else a
        elif op == "&":
            result = a & b
        elif op == "|":
            result = a | b
        elif op == "^":
            result = a ^ b
        elif op == "<<":
            result = 0 if (width is not None and b >= width) else a << b
        elif op == ">>":
            result = 0 if (width is not None and b >= width) else a >> b
        else:
            raise ExecutionError(f"unknown binary operator {op!r}")
        if width is not None:
            result &= _mask(width)
        return Value(result, width)
