"""The BMv2-style back end ("simple switch").

The BMv2 back end is an *open* target: the lowered program is observable, so
Gauntlet can apply translation validation to every pass, and the STF-like
test framework (:mod:`repro.targets.stf`) exercises the executable with
concrete packets.

Seeded defects (see :mod:`repro.compiler.bugs`):

* ``bmv2_table_key_order_crash`` -- the lowering pass crashes on tables with
  more keys than actions,
* ``bmv2_wide_field_truncation`` -- the executable truncates writes to
  fields wider than 32 bits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.compiler import CompilerOptions, P4Compiler
from repro.compiler.errors import CompilerCrash, CompilerError
from repro.compiler.pass_manager import CompilationResult
from repro.p4 import ast
from repro.targets.execution import ConcreteInterpreter, TargetSemantics
from repro.targets.state import PacketState, SwitchState, TableEntry


@dataclass
class Bmv2Executable:
    """A compiled program loaded into the software switch."""

    program: ast.Program
    semantics: TargetSemantics
    #: The front/mid-end snapshots (the open part of the toolchain).
    compilation: CompilationResult
    #: Lazily-built interpreter shared by every packet: construction
    #: typechecks the program, and per-packet state lives in the packet.
    _interpreter: Optional[ConcreteInterpreter] = field(
        default=None, init=False, repr=False, compare=False
    )
    #: Persistent register/counter state -- survives across :meth:`process`
    #: calls, exactly like a running switch (see the stateful-support
    #: section of the backend-author contract in ``targets/README.md``).
    _switch_state: Optional[SwitchState] = field(
        default=None, init=False, repr=False, compare=False
    )

    def process(self, packet: PacketState, entries: Sequence[TableEntry] = ()) -> PacketState:
        """Run one packet through the switch and return the output packet."""

        if self._interpreter is None:
            self._interpreter = ConcreteInterpreter(self.program, self.semantics)
        return self._interpreter.run(
            packet, entries, switch_state=self.switch_state()
        )

    def switch_state(self) -> SwitchState:
        """The live register/counter state (lazily created at power-on)."""

        if self._switch_state is None:
            self._switch_state = SwitchState.for_program(self.program)
        return self._switch_state

    def reset_state(self) -> None:
        """Power-cycle the switch: every register/counter cell back to zero."""

        if self._switch_state is not None:
            self._switch_state.reset()


class Bmv2Target:
    """Compile P4 programs for the BMv2 reference switch."""

    name = "bmv2"

    def __init__(self, options: Optional[CompilerOptions] = None) -> None:
        self.options = options or CompilerOptions(target=self.name)

    # -- compilation -----------------------------------------------------------

    def compile(self, program) -> Bmv2Executable:
        """Run the shared front/mid end, then the BMv2 lowering checks."""

        return self.link(P4Compiler(self.options).compile(program))

    def link(self, result: CompilationResult) -> Bmv2Executable:
        """Lower an already-compiled front/mid-end result.

        The campaign engine compiles the shared prefix once per program
        (:func:`repro.compiler.compile_prefix`) and hands the same
        ``CompilationResult`` to every back end, so the lowering must only
        *read* it.  Raises the recorded crash/rejection, exactly as
        :meth:`compile` does.
        """

        if result.crashed:
            raise result.crash
        if result.rejected:
            raise result.error
        lowered = result.final_program
        self._lower(lowered)
        semantics = TargetSemantics(
            name=self.name,
            truncate_wide_fields=self.options.bug_enabled("bmv2_wide_field_truncation"),
        )
        return Bmv2Executable(lowered, semantics, result)

    def compile_with_snapshots(self, program) -> CompilationResult:
        """Expose the per-pass snapshots (BMv2 is an open back end)."""

        return P4Compiler(self.options).compile(program)

    # -- lowering -----------------------------------------------------------------

    def _lower(self, program: ast.Program) -> None:
        """Back-end specific validation of the mid-end output."""

        for control in program.controls():
            tables = [
                local for local in control.locals if isinstance(local, ast.TableDeclaration)
            ]
            for table in tables:
                if self.options.bug_enabled("bmv2_table_key_order_crash") and len(
                    table.keys
                ) > max(1, len(table.actions)):
                    raise CompilerCrash(
                        f"table {table.name!r}: key/action invariant violated "
                        f"({len(table.keys)} keys, {len(table.actions)} actions)",
                        pass_name="Bmv2Lowering",
                        signature="bmv2-key-action-invariant",
                    )
                for key in table.keys:
                    if key.match_kind not in ("exact",):
                        raise CompilerError(
                            f"BMv2 subset only supports exact matches, got "
                            f"{key.match_kind!r} in table {table.name!r}"
                        )
