"""The Tofino-style back end (closed source, black box).

Like the real Tofino compiler, this back end reuses the shared front/mid end
(P4C) but applies its own proprietary lowering.  Crucially it does **not**
expose intermediate programs -- :meth:`TofinoTarget.compile` only returns an
opaque executable or raises -- which is why Gauntlet must fall back to
symbolic-execution-based packet testing for this target (paper §6).

Seeded defects (see :mod:`repro.compiler.bugs`):

* ``tofino_table_limit_crash`` -- more tables than one stage can hold,
* ``tofino_exit_in_action_crash`` -- exit statements in table actions,
* ``tofino_concat_width_crash`` -- wide concatenation expressions,
* ``tofino_slice_assignment_drop`` -- narrow slice writes are dropped,
* ``tofino_ternary_condition_flip`` -- negated branch conditions invert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.compiler import CompilerOptions, P4Compiler
from repro.compiler.errors import CompilerCrash, CompilerError
from repro.compiler.pass_manager import CompilationResult
from repro.p4 import ast
from repro.targets.execution import ConcreteInterpreter, TargetSemantics
from repro.targets.state import PacketState, SwitchState, TableEntry


#: Number of match-action tables a single stage can accommodate.
TABLES_PER_STAGE = 12


@dataclass
class TofinoExecutable:
    """An opaque compiled artifact for the Tofino software simulator."""

    _program: ast.Program
    _semantics: TargetSemantics
    #: Lazily-built interpreter shared by every packet.
    _interpreter: Optional[ConcreteInterpreter] = field(
        default=None, init=False, repr=False, compare=False
    )
    #: Persistent register/counter state across :meth:`process` calls (the
    #: simulated ASIC's stateful ALUs; see ``targets/README.md``).
    _switch_state: Optional[SwitchState] = field(
        default=None, init=False, repr=False, compare=False
    )

    def process(self, packet: PacketState, entries: Sequence[TableEntry] = ()) -> PacketState:
        """Run one packet through the simulator."""

        if self._interpreter is None:
            self._interpreter = ConcreteInterpreter(self._program, self._semantics)
        return self._interpreter.run(
            packet, entries, switch_state=self.switch_state()
        )

    def switch_state(self) -> SwitchState:
        """The live register/counter state (lazily created at power-on)."""

        if self._switch_state is None:
            self._switch_state = SwitchState.for_program(self._program)
        return self._switch_state

    def reset_state(self) -> None:
        """Power-cycle the simulator: every stateful cell back to zero."""

        if self._switch_state is not None:
            self._switch_state.reset()


class TofinoTarget:
    """Compile P4 programs for the Tofino switching ASIC (simulated)."""

    name = "tofino"

    def __init__(self, options: Optional[CompilerOptions] = None) -> None:
        self.options = options or CompilerOptions(target=self.name)

    def compile(self, program) -> TofinoExecutable:
        """Compile for Tofino.  Only the executable (or an error) is visible."""

        return self.link(P4Compiler(self.options).compile(program))

    def link(self, result: CompilationResult) -> TofinoExecutable:
        """Lower an already-compiled (shared, read-only) front/mid-end result."""

        if result.crashed:
            raise result.crash
        if result.rejected:
            raise result.error
        lowered = result.final_program
        self._backend_checks(lowered)
        semantics = TargetSemantics(
            name=self.name,
            drop_narrow_slice_writes_below=(
                8 if self.options.bug_enabled("tofino_slice_assignment_drop") else 0
            ),
            flip_negated_conditions=self.options.bug_enabled(
                "tofino_ternary_condition_flip"
            ),
        )
        return TofinoExecutable(lowered, semantics)

    # -- proprietary lowering (not observable from outside) -----------------------

    def _backend_checks(self, program: ast.Program) -> None:
        for control in program.controls():
            tables = [
                local for local in control.locals if isinstance(local, ast.TableDeclaration)
            ]
            actions = {
                local.name: local
                for local in control.locals
                if isinstance(local, ast.ActionDeclaration)
            }
            if self.options.bug_enabled("tofino_table_limit_crash") and len(
                tables
            ) > TABLES_PER_STAGE:
                raise CompilerCrash(
                    f"table placement failed: {len(tables)} tables do not fit "
                    f"into a stage",
                    pass_name="TofinoTablePlacement",
                    signature="tofino-table-placement",
                )
            if self.options.bug_enabled("tofino_exit_in_action_crash"):
                for table in tables:
                    for ref in table.actions:
                        action = actions.get(ref.name)
                        if action is None:
                            continue
                        if any(
                            isinstance(node, ast.ExitStatement)
                            for node in ast.walk(action.body)
                        ):
                            raise CompilerCrash(
                                f"action {action.name!r}: exit statements are "
                                "not supported by the action compiler",
                                pass_name="TofinoActionLowering",
                                signature="tofino-exit-in-action",
                            )
        if self.options.bug_enabled("tofino_concat_width_crash"):
            for node in ast.walk(program):
                if isinstance(node, ast.BinaryOp) and node.op == "++":
                    if self._concat_width(node) > 32:
                        raise CompilerCrash(
                            "PHV allocation failed for a concatenation wider "
                            "than 32 bits",
                            pass_name="TofinoPhvAllocation",
                            signature="tofino-concat-width",
                        )

    @staticmethod
    def _concat_width(node: ast.BinaryOp) -> int:
        def width_of(expr: ast.Expression) -> int:
            if isinstance(expr, ast.Constant) and expr.width is not None:
                return expr.width
            if isinstance(expr, ast.Slice):
                return expr.high - expr.low + 1
            if isinstance(expr, ast.BinaryOp) and expr.op == "++":
                return width_of(expr.left) + width_of(expr.right)
            # Without type information assume a conservative 16-bit container.
            return 16

        return width_of(node.left) + width_of(node.right)
