"""A Packet-Test-Framework (PTF) style runner for the Tofino simulator.

The interface intentionally mirrors :mod:`repro.targets.stf`: the difference
in the paper is operational (PTF injects packets into the Tofino simulator
or hardware, STF into BMv2), not conceptual.  Keeping both classes separate
preserves the structure of the original toolchain and lets the campaign
report per-target results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.targets.state import PacketState, TableEntry


@dataclass
class PtfTest:
    """One packet test for the Tofino back end."""

    name: str
    input_packet: PacketState
    expected: Dict[str, object]
    entries: List[TableEntry] = field(default_factory=list)
    ignore_paths: List[str] = field(default_factory=list)


@dataclass
class PtfResult:
    """Outcome of one PTF test."""

    test: PtfTest
    passed: bool
    observed: Dict[str, object]
    mismatches: Dict[str, Dict[str, object]] = field(default_factory=dict)
    error: Optional[str] = None


class PtfRunner:
    """Run PTF tests against a Tofino executable (the software simulator)."""

    def __init__(self, executable) -> None:
        self.executable = executable

    def run_test(self, test: PtfTest) -> PtfResult:
        try:
            output = self.executable.process(test.input_packet, test.entries)
        except Exception as exc:  # noqa: BLE001 - a target crash is a finding
            return PtfResult(test, passed=False, observed={}, error=str(exc))
        observed = output.observable()
        mismatches: Dict[str, Dict[str, object]] = {}
        for path, expected_value in test.expected.items():
            if path in test.ignore_paths:
                continue
            if observed.get(path) != expected_value:
                mismatches[path] = {
                    "expected": expected_value,
                    "observed": observed.get(path),
                }
        return PtfResult(test, passed=not mismatches, observed=observed, mismatches=mismatches)

    def run_all(self, tests: Sequence[PtfTest]) -> List[PtfResult]:
        return [self.run_test(test) for test in tests]
