"""A Simple-Test-Framework (STF) style packet test runner for BMv2.

An :class:`StfTest` describes one test case: the input packet (header field
values and validity), the table entries to install, and the expected output
packet.  The :class:`StfRunner` feeds the input through a compiled
:class:`~repro.targets.bmv2.Bmv2Executable` and diffs the observed output
against the expectation, which is exactly how Gauntlet detects semantic bugs
on targets (paper §6, figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.targets.state import PacketState, TableEntry


@dataclass
class StfTest:
    """One input/expected-output packet pair plus control-plane state."""

    name: str
    input_packet: PacketState
    expected: Dict[str, object]
    entries: List[TableEntry] = field(default_factory=list)
    #: Paths whose value the oracle could not predict (undefined reads); the
    #: runner does not compare them.
    ignore_paths: List[str] = field(default_factory=list)


@dataclass
class StfResult:
    """Outcome of one STF test."""

    test: StfTest
    passed: bool
    observed: Dict[str, object]
    mismatches: Dict[str, Dict[str, object]] = field(default_factory=dict)
    error: Optional[str] = None


class StfRunner:
    """Run STF tests against a compiled executable."""

    def __init__(self, executable) -> None:
        self.executable = executable

    def run_test(self, test: StfTest) -> StfResult:
        try:
            output = self.executable.process(test.input_packet, test.entries)
        except Exception as exc:  # noqa: BLE001 - a target crash is a finding
            return StfResult(test, passed=False, observed={}, error=str(exc))
        observed = output.observable()
        mismatches: Dict[str, Dict[str, object]] = {}
        for path, expected_value in test.expected.items():
            if path in test.ignore_paths:
                continue
            observed_value = observed.get(path)
            if observed_value != expected_value:
                mismatches[path] = {"expected": expected_value, "observed": observed_value}
        return StfResult(test, passed=not mismatches, observed=observed, mismatches=mismatches)

    def run_all(self, tests: Sequence[StfTest]) -> List[StfResult]:
        return [self.run_test(test) for test in tests]
