"""The eBPF/XDP-style back end (closed back end, verifier-constrained).

This target models a kernel-extension compiler in the style of p4c-ebpf /
p4c-xdp: the shared front/mid end (P4C) runs first, then a proprietary
lowering maps the program onto an XDP program — parsers become bounded
byte-stream loops over the packet buffer, match-action tables become BPF
hash-map lookups chained through tail calls, and header storage lives on
the 512-byte BPF stack.  Like the Tofino back end it is a *black box*:
:meth:`EbpfTarget.compile` only returns an opaque executable or raises, so
Gauntlet can only observe it through packet-level testing (paper §6) via
the :class:`XdpRunner` test framework (a ``bpf_prog_test_run``-style
harness).

What makes the target structurally different from a switch pipeline is the
in-kernel *verifier*: a static analysis that rejects programs exceeding
fixed resource budgets.  The lowering therefore enforces verifier-flavored
limits, and a program over budget is a **graceful rejection**
(:class:`~repro.compiler.errors.CompilerError`), never a finding:

* :data:`EBPF_MAX_INSNS` — an instruction-count budget on the lowered
  program (``BPF_MAXINSNS``-style),
* bounded loops — a parser whose state graph contains a cycle would lower
  to an unbounded packet loop; the verifier rejects it instead of
  unrolling 256 deep the way the switch targets do,
* no ``exit`` inside table actions — actions lower to tail-called
  sub-programs, and a program-wide exit cannot cross a tail-call boundary,
* :data:`EBPF_STACK_LIMIT_BYTES` — parsed header storage must fit the
  BPF stack frame, which caps programs with wide headers.

Seeded defects (see :mod:`repro.compiler.bugs`):

* ``ebpf_verifier_loop_crash`` — the loop-bound analysis aborts on cyclic
  parser graphs instead of reporting a clean bounded-loop rejection,
* ``ebpf_tail_call_limit_crash`` — the tail-call budget check uses the
  wrong constant and aborts on table counts the target actually supports,
* ``ebpf_map_lookup_miss_action`` — a map-lookup miss falls through into
  the first action instead of running the declared default,
* ``ebpf_narrowing_cast_drop`` — narrowing casts keep the high bits of
  the source register (the masking instruction is dropped),
* ``ebpf_byte_order_swap`` — 16-bit header-field loads miss their
  network-to-host byte swap,
* ``ebpf_register_write_drops_high_byte`` — the end-of-packet flush that
  persists register cells into their array map writes one byte too few,
  so written cells lose their high byte between packets (same-packet
  reads still see the full scratch value: only a multi-packet sequence
  can observe the loss).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Optional, Sequence, Set

from repro.compiler import CompilerOptions, P4Compiler
from repro.compiler.errors import CompilerCrash, CompilerError
from repro.compiler.pass_manager import CompilationResult
from repro.p4 import ast
from repro.p4.types import BitType, HeaderStackType, HeaderType, StructType
from repro.p4.typecheck import check_program
from repro.targets.execution import ConcreteInterpreter, TargetSemantics
from repro.targets.state import PacketState, SwitchState, TableEntry


#: Instruction budget of the lowered program (``BPF_MAXINSNS``-flavoured;
#: the estimate below counts IR nodes, not real bytecode, so the budget is
#: on the same scale).
EBPF_MAX_INSNS = 4096

#: BPF stack frame size; parsed header storage must fit it.
EBPF_STACK_LIMIT_BYTES = 512

#: Tail-call chain budget: each applied table becomes one tail call.
EBPF_TAIL_CALL_LIMIT = 32

#: The wrong budget the ``ebpf_tail_call_limit_crash`` defect checks
#: against (a stale constant from an earlier kernel).
_BUGGY_TAIL_CALL_LIMIT = 8


@dataclass
class EbpfExecutable:
    """An opaque XDP object file loaded into the (simulated) kernel.

    Like :class:`~repro.targets.tofino.TofinoExecutable` the lowered
    program is private: only packet-level behaviour is observable.
    """

    _program: ast.Program
    _semantics: TargetSemantics
    #: Lazily-built interpreter shared by every packet.
    _interpreter: Optional[ConcreteInterpreter] = dataclass_field(
        default=None, init=False, repr=False, compare=False
    )
    #: Persistent register/counter state across :meth:`process` calls --
    #: registers lower to BPF array maps, which outlive individual packets
    #: (see the stateful-support contract in ``targets/README.md``).
    _switch_state: Optional[SwitchState] = dataclass_field(
        default=None, init=False, repr=False, compare=False
    )

    def process(self, packet: PacketState, entries: Sequence[TableEntry] = ()) -> PacketState:
        """Run one packet through the XDP hook and return the output."""

        if self._interpreter is None:
            self._interpreter = ConcreteInterpreter(self._program, self._semantics)
        return self._interpreter.run(
            packet, entries, switch_state=self.switch_state()
        )

    def switch_state(self) -> SwitchState:
        """The live map-backed register state (lazily created at load time)."""

        if self._switch_state is None:
            self._switch_state = SwitchState.for_program(self._program)
        return self._switch_state

    def reset_state(self) -> None:
        """Reload the maps: every register/counter cell back to zero."""

        if self._switch_state is not None:
            self._switch_state.reset()


class EbpfTarget:
    """Compile P4 programs to an eBPF/XDP-style kernel extension."""

    name = "ebpf"

    def __init__(self, options: Optional[CompilerOptions] = None) -> None:
        self.options = options or CompilerOptions(target=self.name)

    def compile(self, program) -> EbpfExecutable:
        """Compile for XDP.  Only the executable (or an error) is visible."""

        return self.link(P4Compiler(self.options).compile(program))

    def link(self, result: CompilationResult) -> EbpfExecutable:
        """Lower an already-compiled (shared, read-only) front/mid-end result."""

        if result.crashed:
            raise result.crash
        if result.rejected:
            raise result.error
        lowered = result.final_program
        self._verifier_checks(lowered)
        semantics = TargetSemantics(
            name=self.name,
            miss_runs_first_action=self.options.bug_enabled(
                "ebpf_map_lookup_miss_action"
            ),
            narrowing_cast_high_bits=self.options.bug_enabled(
                "ebpf_narrowing_cast_drop"
            ),
            swap_16bit_field_reads=self.options.bug_enabled("ebpf_byte_order_swap"),
            register_write_drops_high_byte=self.options.bug_enabled(
                "ebpf_register_write_drops_high_byte"
            ),
        )
        return EbpfExecutable(lowered, semantics)

    # -- verifier-flavored lowering checks (not observable from outside) ------

    def _verifier_checks(self, program: ast.Program) -> None:
        self._check_parser_loops(program)
        self._check_tail_calls(program)
        self._check_exit_in_actions(program)
        self._check_stack_usage(program)
        self._check_instruction_budget(program)

    def _check_parser_loops(self, program: ast.Program) -> None:
        """Bounded-loop rejection: cyclic parser graphs cannot be unrolled.

        The switch targets unroll parsers up to 256 steps at run time; an
        XDP parser is a packet-buffer loop the verifier must prove bounded,
        and this subset carries no loop-bound annotations — so any state
        cycle (including the generator's ``stack.next`` extract loops) is
        rejected.  The seeded ``ebpf_verifier_loop_crash`` defect aborts in
        the analysis instead of reaching the clean rejection.
        """

        for parser in program.parsers():
            if not _parser_has_cycle(parser):
                continue
            if self.options.bug_enabled("ebpf_verifier_loop_crash"):
                raise CompilerCrash(
                    f"parser {parser.name!r}: back-edge bound analysis "
                    "recursed past the verifier state limit",
                    pass_name="EbpfVerifier",
                    signature="ebpf-verifier-loop-bound",
                )
            raise CompilerError(
                f"parser {parser.name!r}: unbounded loop (the verifier "
                "rejects cyclic parse graphs without a loop bound)"
            )

    def _check_tail_calls(self, program: ast.Program) -> None:
        """Each applied table is one tail call; the chain budget is fixed."""

        for control in program.controls():
            tables = [
                local for local in control.locals if isinstance(local, ast.TableDeclaration)
            ]
            if self.options.bug_enabled("ebpf_tail_call_limit_crash") and len(
                tables
            ) > _BUGGY_TAIL_CALL_LIMIT:
                raise CompilerCrash(
                    f"program-array setup failed: {len(tables)} table "
                    f"programs exceed the tail-call budget",
                    pass_name="EbpfTailCallLowering",
                    signature="ebpf-tail-call-limit",
                )
            if len(tables) > EBPF_TAIL_CALL_LIMIT:
                raise CompilerError(
                    f"control {control.name!r}: {len(tables)} tables exceed "
                    f"the tail-call chain limit of {EBPF_TAIL_CALL_LIMIT}"
                )

    def _check_exit_in_actions(self, program: ast.Program) -> None:
        """Actions lower to tail-called sub-programs; ``exit`` cannot cross
        a tail-call boundary, so programs using it are rejected."""

        for control in program.controls():
            for local in control.locals:
                if not isinstance(local, ast.ActionDeclaration):
                    continue
                if any(
                    isinstance(node, ast.ExitStatement)
                    for node in ast.walk(local.body)
                ):
                    raise CompilerError(
                        f"action {local.name!r}: exit is not supported inside "
                        "tail-called actions on this target"
                    )

    def _check_stack_usage(self, program: ast.Program) -> None:
        """Parsed headers live on the BPF stack; the frame is 512 bytes."""

        total_bits = 0
        checker = check_program(program)
        # The same struct type is typically bound to both the parser and
        # the control, so storage is deduplicated per struct *type* — two
        # distinct structs each contribute their own fields, even when
        # field names collide.
        seen_structs: Set[str] = set()
        for declaration in list(program.controls()) + list(program.parsers()):
            for parameter in declaration.params:
                param_type = checker.types.resolve(parameter.param_type)
                if not isinstance(param_type, StructType):
                    continue
                if param_type.name in seen_structs:
                    continue
                seen_structs.add(param_type.name)
                for _field_name, field_type in param_type.fields:
                    resolved = checker.types.resolve(field_type)
                    if isinstance(resolved, HeaderType):
                        total_bits += _header_bits(resolved)
                    elif isinstance(resolved, HeaderStackType):
                        element = checker.types.resolve(resolved.element)
                        total_bits += _header_bits(element) * resolved.size
                    elif isinstance(resolved, BitType):
                        total_bits += resolved.width
        if total_bits > EBPF_STACK_LIMIT_BYTES * 8:
            raise CompilerError(
                f"parsed header storage needs {(total_bits + 7) // 8} bytes, "
                f"over the {EBPF_STACK_LIMIT_BYTES}-byte BPF stack frame"
            )

    def _check_instruction_budget(self, program: ast.Program) -> None:
        """Reject programs whose lowered size exceeds the insn budget."""

        estimate = _instruction_estimate(program)
        if estimate > EBPF_MAX_INSNS:
            raise CompilerError(
                f"lowered program needs ~{estimate} instructions, over the "
                f"{EBPF_MAX_INSNS}-instruction budget"
            )


def _header_bits(header: HeaderType) -> int:
    return sum(field_type.width for _name, field_type in header.fields)


def _instruction_estimate(program: ast.Program) -> int:
    """A deterministic instruction-count estimate of the lowered program.

    Every statement and expression node costs one instruction; table
    applies cost a map lookup plus a tail call.  The estimate only has to
    be monotone in program size and stable across runs — it gates the
    budget rejection, nothing else.
    """

    count = 0
    for node in ast.walk(program):
        if isinstance(node, (ast.Statement, ast.Expression)):
            count += 1
        if isinstance(node, ast.TableDeclaration):
            count += 4  # key load, map lookup, branch, tail call
    return count


def _parser_has_cycle(parser: ast.ParserDeclaration) -> bool:
    edges: Dict[str, List[str]] = {}
    for state in parser.states:
        targets = [case.next_state for case in state.cases]
        if state.next_state is not None:
            targets.append(state.next_state)
        edges[state.name] = [t for t in targets if t not in ("accept", "reject")]

    visiting: Set[str] = set()
    visited: Set[str] = set()

    def dfs(name: str) -> bool:
        if name in visiting:
            return True
        if name in visited or name not in edges:
            return False
        visiting.add(name)
        for target in edges[name]:
            if dfs(target):
                return True
        visiting.discard(name)
        visited.add(name)
        return False

    return dfs("start")


# ----------------------------------------------------------------------
# The XDP test framework (a bpf_prog_test_run-style harness)
# ----------------------------------------------------------------------


@dataclass
class XdpTest:
    """One packet test for the eBPF back end."""

    name: str
    input_packet: PacketState
    expected: Dict[str, object]
    entries: List[TableEntry] = dataclass_field(default_factory=list)
    ignore_paths: List[str] = dataclass_field(default_factory=list)


@dataclass
class XdpResult:
    """Outcome of one XDP test."""

    test: XdpTest
    passed: bool
    observed: Dict[str, object]
    mismatches: Dict[str, Dict[str, object]] = dataclass_field(default_factory=dict)
    error: Optional[str] = None


class XdpRunner:
    """Run XDP tests against a compiled eBPF executable.

    The interface mirrors :class:`~repro.targets.stf.StfRunner` /
    :class:`~repro.targets.ptf.PtfRunner` — the campaign engine drives
    every back end's runner through the same duck type (see the
    backend-author contract in ``src/repro/targets/README.md``).
    """

    def __init__(self, executable) -> None:
        self.executable = executable

    def run_test(self, test: XdpTest) -> XdpResult:
        try:
            output = self.executable.process(test.input_packet, test.entries)
        except Exception as exc:  # noqa: BLE001 - a target crash is a finding
            return XdpResult(test, passed=False, observed={}, error=str(exc))
        observed = output.observable()
        mismatches: Dict[str, Dict[str, object]] = {}
        for path, expected_value in test.expected.items():
            if path in test.ignore_paths:
                continue
            if observed.get(path) != expected_value:
                mismatches[path] = {
                    "expected": expected_value,
                    "observed": observed.get(path),
                }
        return XdpResult(test, passed=not mismatches, observed=observed, mismatches=mismatches)

    def run_all(self, tests: Sequence[XdpTest]) -> List[XdpResult]:
        return [self.run_test(test) for test in tests]
