"""Gauntlet: the paper's primary contribution.

The package combines three techniques (paper §1):

* :mod:`repro.core.generator` -- random generation of well-typed P4 programs
  to provoke crash bugs,
* :mod:`repro.core.interpreter` + :mod:`repro.core.validation` -- a symbolic
  interpreter that converts P4 blocks into SMT formulas, and translation
  validation that compares the formulas before and after every compiler
  pass to find semantic bugs and pinpoint the defective pass,
* :mod:`repro.core.testgen` -- symbolic-execution-based test-case generation
  for closed back ends (Tofino) where intermediate programs are unavailable.

:mod:`repro.core.campaign` orchestrates all three into a bug-finding
campaign and produces the statistics reported in the paper's evaluation
(Tables 2 and 3).
"""

from repro.core.bugs import BugKind, BugLocation, BugReport, BugTracker
from repro.core.generator import GeneratorConfig, RandomProgramGenerator
from repro.core.interpreter import BlockSemantics, SymbolicInterpreter, TableInfo
from repro.core.validation import (
    TranslationValidator,
    ValidationOutcome,
    ValidationReport,
)
from repro.core.testgen import SymbolicTestGenerator, GeneratedTest
from repro.core.crash import CrashFinding, classify_compilation
from repro.core.campaign import Campaign, CampaignConfig, CampaignStatistics
from repro.core.engine import CampaignEngine, CampaignSpec, DetectionRecord
from repro.core.levels import ConformanceLevel, classify_input_level
from repro.core.reduce import ReductionResult, program_size, reduce_program
from repro.core.schedule import ARM_CATALOG, ArmProfile, BanditScheduler, KnobArm

__all__ = [
    "BugKind",
    "BugLocation",
    "BugReport",
    "BugTracker",
    "GeneratorConfig",
    "RandomProgramGenerator",
    "BlockSemantics",
    "SymbolicInterpreter",
    "TableInfo",
    "TranslationValidator",
    "ValidationOutcome",
    "ValidationReport",
    "SymbolicTestGenerator",
    "GeneratedTest",
    "CrashFinding",
    "classify_compilation",
    "Campaign",
    "CampaignConfig",
    "CampaignEngine",
    "CampaignSpec",
    "CampaignStatistics",
    "DetectionRecord",
    "ConformanceLevel",
    "classify_input_level",
    "ReductionResult",
    "program_size",
    "reduce_program",
    "ARM_CATALOG",
    "ArmProfile",
    "BanditScheduler",
    "KnobArm",
]
