"""Crash-bug detection (paper §4).

Crash bugs need no oracle beyond the compiler itself: any abnormal
termination while compiling a well-formed program is a finding.  The helper
here classifies a :class:`CompilationResult` and produces a deduplication
key from the crash signature, mirroring how Gauntlet distinguishes unique
p4c assertion messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.compiler.pass_manager import CompilationResult


@dataclass(frozen=True)
class CrashFinding:
    """A single crash observed while compiling a program."""

    signature: str
    pass_name: str
    message: str
    platform: str = "p4c"

    @property
    def dedup_key(self) -> str:
        return f"{self.platform}:{self.signature}"

    def to_dict(self) -> dict:
        """JSON-ready form, for the campaign engine's artifact store."""

        return {
            "signature": self.signature,
            "pass_name": self.pass_name,
            "message": self.message,
            "platform": self.platform,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CrashFinding":
        return cls(
            signature=payload["signature"],
            pass_name=payload["pass_name"],
            message=payload["message"],
            platform=payload.get("platform", "p4c"),
        )


def classify_compilation(
    result: CompilationResult, platform: str = "p4c"
) -> Optional[CrashFinding]:
    """Return a :class:`CrashFinding` when the compilation crashed.

    Graceful rejections (:class:`~repro.compiler.errors.CompilerError`) are
    not findings: the compiler is allowed -- indeed required -- to reject
    invalid programs with a useful message.
    """

    if not result.crashed:
        return None
    crash = result.crash
    return CrashFinding(
        signature=crash.signature,
        pass_name=crash.pass_name,
        message=str(crash),
        platform=platform,
    )


def crash_from_exception(exc: Exception, platform: str) -> CrashFinding:
    """Build a finding from an exception raised by a back end."""

    signature = getattr(exc, "signature", None) or f"unhandled-{type(exc).__name__}"
    pass_name = getattr(exc, "pass_name", "") or "backend"
    return CrashFinding(
        signature=signature, pass_name=pass_name, message=str(exc), platform=platform
    )
