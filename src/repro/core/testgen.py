"""Symbolic-execution test-case generation (paper §6).

For black-box back ends such as the Tofino compiler, translation validation
is impossible -- there is no intermediate P4 to compare.  Gauntlet instead
reuses the symbolic interpreter to compute, for the *input* program, pairs
of input and expected-output packets (plus the table entries needed to steer
execution), and feeds them to the target's packet test framework.

Path selection follows the paper: one test per reachable combination of
branch decisions (capped), with the solver asked for non-zero header values
so that targets which zero-initialise undefined data cannot mask bugs.
Undefined values in the oracle are fixed to the target's convention (zero)
when computing the expected output.

Stateful programs (registers/counters) are tested with *sequences*: the
symbolic interpreter threads packet ``i``'s final state into packet
``i + 1`` (:meth:`SymbolicInterpreter.interpret_sequence`), one solver
covers the whole sequence, and the expected values include the final
``$state.*`` cells.  Table symbols are shared across the sequence because
the control plane is installed once, before the first packet.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import smt
from repro.core.interpreter import BlockSemantics, InterpreterError, SymbolicInterpreter, TableInfo
from repro.p4 import ast
from repro.smt.solver import CheckResult, Model, Solver
from repro.targets.state import PacketState, SwitchState, TableEntry, build_packet_state


#: Default packet count of a stateful test sequence.  Three packets is
#: enough to observe every seeded stateful defect (a lost read-modify-write
#: needs two state updates, a flush-time truncation needs a packet *after*
#: the write) while keeping the solver's per-program work bounded; stateless
#: programs are always collapsed to length 1 (:func:`cached_sequences`).
DEFAULT_SEQUENCE_LENGTH = 3


@dataclass
class GeneratedTest:
    """One input/expected-output packet pair for a packet test framework."""

    name: str
    input_values: Dict[str, int]
    input_validity: Dict[str, bool]
    entries: List[TableEntry]
    expected: Dict[str, object]
    #: Output paths the oracle could not pin down (not compared).
    ignore_paths: List[str] = field(default_factory=list)

    def build_packet(self, program: ast.Program, struct_name: str = "Headers") -> PacketState:
        """Materialise the input packet for the given program."""

        packet = build_packet_state(program, struct_name, self.input_values)
        for header, valid in self.input_validity.items():
            if header in packet.headers:
                packet.headers[header].valid = valid
        return packet


@dataclass
class TestSequence:
    """An ordered multi-packet test sharing one switch state.

    The packets must be replayed in order against a freshly power-cycled
    executable (``reset_state()``), installing ``packets[0].entries`` once
    up front -- the control plane does not change mid-sequence.  After the
    last packet, the live ``$state.*`` cells are compared against
    ``expected_state``.
    """

    name: str
    packets: List[GeneratedTest]
    #: Expected final register/counter cells, keyed ``$state.<bank>[<i>]``.
    expected_state: Dict[str, int] = field(default_factory=dict)

    @property
    def entries(self) -> List[TableEntry]:
        """The sequence-wide control-plane configuration."""

        return self.packets[0].entries if self.packets else []


def program_has_state(program: ast.Program) -> bool:
    """True when any control declares a register or counter bank."""

    return bool(SwitchState.for_program(program).banks)


class SymbolicTestGenerator:
    """Generate packet tests for a program using its symbolic semantics."""

    def __init__(
        self,
        program: ast.Program,
        max_tests: int = 8,
        prefer_nonzero: bool = True,
        undefined_value: int = 0,
        require_valid_headers: bool = True,
        sequence_length: int = 1,
    ) -> None:
        self.program = program
        self.max_tests = max_tests
        self.prefer_nonzero = prefer_nonzero
        self.undefined_value = undefined_value
        #: Input packets arrive with their headers parsed and valid; allowing
        #: the solver to pick invalid input headers would make every output
        #: field "invalid" and mask real divergences (§8, environment problem).
        self.require_valid_headers = require_valid_headers
        #: One BlockSemantics per packet of the sequence, state threaded
        #: between them.  Packet 0 starts from the zero power-on state, which
        #: for stateless programs is exactly the single-packet pipeline view.
        self.packets: List[BlockSemantics] = SymbolicInterpreter(
            program
        ).interpret_sequence(max(1, sequence_length))
        self.semantics: BlockSemantics = self.packets[0]

    # -- public API ------------------------------------------------------------

    def generate(self) -> List[GeneratedTest]:
        """Produce up to ``max_tests`` tests covering distinct program paths.

        All path probes share one incremental solver: the environment
        constraints (parser unroll guards, valid input headers) are asserted
        once, and each path constraint — plus the non-zero preferences — is
        passed as an assumption, so the CNF and the learned clauses of
        earlier probes carry over instead of being rebuilt per path.  The
        probe sequence is fixed, so the generated tests are a deterministic
        function of the program alone.
        """

        solver = self._base_solver()
        preferences = self._preferences()
        tests: List[GeneratedTest] = []
        for index, constraint in enumerate(self._path_constraints()):
            if len(tests) >= self.max_tests:
                break
            model = self._solve(solver, constraint, preferences)
            if model is None:
                continue
            tests.append(self._build_test(f"path_{index}", model))
        if not tests:
            # Fall back to a single unconstrained test.
            model = self._solve(solver, smt.BoolVal(True), preferences)
            if model is not None:
                tests.append(self._build_test("default", model))
        return tests

    def generate_sequences(self) -> List[TestSequence]:
        """Produce up to ``max_tests`` multi-packet sequences.

        Same probe machinery as :meth:`generate`, but each model yields one
        :class:`TestSequence` of ``sequence_length`` packets plus the
        expected final state, all evaluated under the one model that covers
        the whole threaded sequence.
        """

        solver = self._base_solver()
        preferences = self._preferences()
        sequences: List[TestSequence] = []
        for index, constraint in enumerate(self._path_constraints()):
            if len(sequences) >= self.max_tests:
                break
            model = self._solve(solver, constraint, preferences)
            if model is None:
                continue
            sequences.append(self._build_sequence(f"path_{index}", model))
        if not sequences:
            model = self._solve(solver, smt.BoolVal(True), preferences)
            if model is not None:
                sequences.append(self._build_sequence("default", model))
        return sequences

    # -- path selection ------------------------------------------------------------

    def _path_constraints(self):
        """Yield constraints steering execution down distinct paths."""

        yield smt.BoolVal(True)
        conditions = [
            condition
            for packet in self.packets
            for condition in packet.branch_conditions
        ][:6]
        # Toggle each branch condition individually first, then pairs.
        for condition in conditions:
            yield condition
            yield smt.Not(condition)
        for left, right in itertools.combinations(conditions, 2):
            yield smt.And(left, right)
            yield smt.And(smt.Not(left), smt.Not(right))
        # Also aim for table hits: key symbol equals the key expression is
        # already the hit condition encoded by the interpreter, so asking for
        # a specific action choice is enough to exercise each action.
        for table in self.semantics.tables:
            for action_index in range(len(table.actions)):
                yield smt.Eq(
                    smt.BitVecSym(table.action_symbol, 8),
                    smt.BitVecVal(action_index + 1, 8),
                )

    def _base_solver(self) -> Solver:
        """One solver holding the environment constraints of every probe."""

        solver = Solver()
        # Exclude inputs that drive the parser past the symbolic unroll
        # budget: on those paths the model under-approximates the parser
        # while the concrete target keeps iterating, and the resulting
        # expectation mismatch would be a false alarm, not a finding.
        for packet in self.packets:
            for overflow in packet.parser_overflows:
                solver.add(smt.Not(overflow))
            if self.require_valid_headers:
                for path, symbol in packet.inputs.items():
                    if path.endswith(".$valid"):
                        solver.add(symbol)
        return solver

    def _preferences(self) -> List[smt.Term]:
        if not self.prefer_nonzero:
            return []
        return [
            smt.Ne(symbol, smt.BitVecVal(0, symbol.width))
            for packet in self.packets
            for path, symbol in packet.inputs.items()
            if symbol.sort.is_bv()
        ]

    def _solve(
        self, solver: Solver, constraint: smt.Term, preferences: List[smt.Term]
    ) -> Optional[Model]:
        # The path constraint rides along as an assumption so the shared
        # solver never accumulates path-specific assertions.
        if preferences and solver.check(constraint, *preferences) == CheckResult.SAT:
            return solver.model()
        if solver.check(constraint) == CheckResult.SAT:
            return solver.model()
        return None

    # -- test construction ----------------------------------------------------------

    def _build_test(
        self, name: str, model: Model, semantics: Optional[BlockSemantics] = None
    ) -> GeneratedTest:
        semantics = semantics if semantics is not None else self.semantics
        assignment: Dict[str, object] = {}
        for symbol_name, value in model.items():
            assignment[symbol_name] = value

        input_values: Dict[str, int] = {}
        input_validity: Dict[str, bool] = {}
        for path, symbol in semantics.inputs.items():
            value = assignment.get(symbol.name, 0)
            if path.endswith(".$valid"):
                input_validity[path[: -len(".$valid")]] = bool(value)
            elif symbol.sort.is_bv():
                input_values[path] = int(value)

        entries = self._entries_from_model(assignment, semantics)
        expected, ignore_paths = self._expected_output(assignment, semantics)
        return GeneratedTest(
            name=name,
            input_values=input_values,
            input_validity=input_validity,
            entries=entries,
            expected=expected,
            ignore_paths=ignore_paths,
        )

    def _build_sequence(self, name: str, model: Model) -> TestSequence:
        packets = [
            self._build_test(f"{name}.pkt{index}", model, semantics)
            for index, semantics in enumerate(self.packets)
        ]
        return TestSequence(
            name=name, packets=packets, expected_state=self._expected_state(model)
        )

    def _expected_state(self, model: Model) -> Dict[str, int]:
        """Final register/counter cells after the last packet of the sequence."""

        assignment = {
            symbol_name: value
            for symbol_name, value in model.items()
            if not symbol_name.startswith("undef_")
        }
        return {
            path: int(
                smt.evaluate(term, assignment, default=self.undefined_value)
            )
            for path, term in self.packets[-1].state_outputs.items()
        }

    def _entries_from_model(
        self, assignment: Dict[str, object], semantics: BlockSemantics
    ) -> List[TableEntry]:
        entries: List[TableEntry] = []
        for table in semantics.tables:
            key = tuple(int(assignment.get(symbol, 0)) for symbol in table.key_symbols)
            action_index = int(assignment.get(table.action_symbol, 0))
            if not (1 <= action_index <= len(table.actions)):
                continue  # the model picked "no entry": the default action runs
            action_name = table.actions[action_index - 1]
            if action_name == "NoAction":
                args: Tuple[int, ...] = ()
            else:
                args = tuple(
                    int(assignment.get(symbol, 0))
                    for symbol, _width in table.action_args.get(action_name, [])
                )
            entries.append(TableEntry(table.table, key, action_name, args))
        return entries

    def _expected_output(
        self, assignment: Dict[str, object], semantics: BlockSemantics
    ) -> Tuple[Dict[str, object], List[str]]:
        expected: Dict[str, object] = {}
        ignore: List[str] = []
        # Fix every undefined-read symbol to the target's convention before
        # evaluating the output terms.  The SAT model may assign ``undef_*``
        # symbols arbitrary values (a path constraint can even mention
        # them), but no packet or table entry can steer what the target
        # reads from an invalid header, so expectations must be computed
        # with the convention value -- not with whatever the model picked.
        assignment = {
            name: value
            for name, value in assignment.items()
            if not name.startswith("undef_")
        }
        validity: Dict[str, bool] = {}
        for path, term in semantics.outputs.items():
            if path.endswith(".$valid"):
                value = smt.evaluate(term, assignment, default=self.undefined_value)
                validity[path[: -len(".$valid")]] = bool(value)
                expected[path] = bool(value)
        for path, term in semantics.outputs.items():
            if path.endswith(".$valid"):
                continue
            header = path.split(".", 1)[0]
            if header in validity and not validity[header]:
                expected[path] = None
                continue
            value = smt.evaluate(term, assignment, default=self.undefined_value)
            expected[path] = int(value) if not isinstance(value, bool) else value
        return expected, ignore


# ----------------------------------------------------------------------
# Process-wide test cache
# ----------------------------------------------------------------------

#: Symbolic packet tests are a function of the *input* program and the
#: test budget alone (the oracle never sees the backend), so they are
#: shared between platforms, across the per-defect detection matrix, and
#: across campaign work units scheduled onto the same worker process,
#: keyed by ``(emitted source, max_tests)`` -- the budget is part of the
#: key because the cache outlives any single campaign.  ``None`` records
#: an oracle failure so it is not retried per platform.
_TESTGEN_CACHE: "OrderedDict[Tuple[str, int], Optional[List[GeneratedTest]]]" = OrderedDict()
_TESTGEN_CACHE_LIMIT = 256
_TESTGEN_STATS = {"testgen_hits": 0, "testgen_misses": 0}
_MISSING = object()


def cached_tests(
    program: ast.Program, source: str, max_tests: int
) -> Optional[List[GeneratedTest]]:
    """Generate (or recall) the symbolic packet tests for ``source``.

    Returns ``None`` when the symbolic oracle cannot handle the program
    (an oracle limitation, never a finding -- paper §5.2).
    """

    key = (source, max_tests)
    tests = _TESTGEN_CACHE.get(key, _MISSING)
    if tests is not _MISSING:
        _TESTGEN_CACHE.move_to_end(key)
        _TESTGEN_STATS["testgen_hits"] += 1
        return tests
    _TESTGEN_STATS["testgen_misses"] += 1
    try:
        tests = SymbolicTestGenerator(program, max_tests=max_tests).generate()
    except InterpreterError:
        tests = None
    _TESTGEN_CACHE[key] = tests
    while len(_TESTGEN_CACHE) > _TESTGEN_CACHE_LIMIT:
        _TESTGEN_CACHE.popitem(last=False)
    return tests


#: Sequence tests get their own cache: the key also carries the sequence
#: length, normalised to 1 for stateless programs so a campaign running
#: with ``sequence_length=3`` still shares entries across its (mostly
#: stateless) corpus instead of tripling the solver work.
_SEQGEN_CACHE: "OrderedDict[Tuple[str, int, int], Optional[List[TestSequence]]]" = OrderedDict()


def cached_sequences(
    program: ast.Program, source: str, max_tests: int, sequence_length: int = 1
) -> Optional[List[TestSequence]]:
    """Generate (or recall) multi-packet test sequences for ``source``.

    Stateless programs always get length-1 sequences -- without registers
    there is nothing a later packet could observe, so the extra packets
    would only multiply solver and replay cost.  Returns ``None`` when the
    symbolic oracle cannot handle the program (an oracle limitation, never
    a finding -- paper §5.2).
    """

    length = max(1, sequence_length)
    if length > 1 and not program_has_state(program):
        length = 1
    key = (source, max_tests, length)
    sequences = _SEQGEN_CACHE.get(key, _MISSING)
    if sequences is not _MISSING:
        _SEQGEN_CACHE.move_to_end(key)
        _TESTGEN_STATS["testgen_hits"] += 1
        return sequences
    _TESTGEN_STATS["testgen_misses"] += 1
    try:
        sequences = SymbolicTestGenerator(
            program, max_tests=max_tests, sequence_length=length
        ).generate_sequences()
    except InterpreterError:
        sequences = None
    _SEQGEN_CACHE[key] = sequences
    while len(_SEQGEN_CACHE) > _TESTGEN_CACHE_LIMIT:
        _SEQGEN_CACHE.popitem(last=False)
    return sequences


def testgen_cache_stats() -> Dict[str, int]:
    """Hit/miss counters of the process-wide test cache."""

    return dict(
        _TESTGEN_STATS,
        testgen_entries=len(_TESTGEN_CACHE),
        seqgen_entries=len(_SEQGEN_CACHE),
    )


def clear_testgen_cache() -> None:
    """Drop the test caches (memory bound for long-lived services)."""

    _TESTGEN_CACHE.clear()
    _SEQGEN_CACHE.clear()
    _TESTGEN_STATS["testgen_hits"] = 0
    _TESTGEN_STATS["testgen_misses"] = 0
