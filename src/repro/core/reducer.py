"""Best-effort test-case reduction.

The paper lists automatic reduction as future work (§8) and describes a
manual pruning workflow.  This module provides a simple delta-debugging
style reducer over statements: it repeatedly tries to delete apply-block
statements and control locals, keeping a deletion only when the
caller-supplied predicate still reports the bug.  It is intentionally
simple -- the aim is a smaller attachment for a bug report, not minimality.
"""

from __future__ import annotations

from typing import Callable, List

from repro.p4 import ast


Predicate = Callable[[ast.Program], bool]


def reduce_program(program: ast.Program, still_fails: Predicate, max_rounds: int = 8) -> ast.Program:
    """Shrink ``program`` while ``still_fails`` keeps returning True.

    ``still_fails`` receives a candidate program and must return True when
    the bug of interest still reproduces on it.  The original program is
    returned unchanged if it does not satisfy the predicate.
    """

    if not still_fails(program):
        return program

    current = program.clone()
    for _ in range(max_rounds):
        changed = False
        for control in current.controls():
            changed |= _shrink_block(current, control.apply, still_fails)
            changed |= _shrink_locals(current, control, still_fails)
        if not changed:
            break
    return current


def _shrink_block(
    program: ast.Program, block: ast.BlockStatement, still_fails: Predicate
) -> bool:
    """Try to drop each statement of ``block`` in turn."""

    changed = False
    index = 0
    while index < len(block.statements):
        removed = block.statements[index]
        del block.statements[index]
        if still_fails(program):
            changed = True
            continue  # keep the deletion, do not advance
        block.statements.insert(index, removed)
        # Recurse into compound statements before moving on.
        if isinstance(removed, ast.IfStatement):
            changed |= _shrink_block(program, removed.then_branch, still_fails)
            if removed.else_branch is not None:
                changed |= _shrink_block(program, removed.else_branch, still_fails)
        elif isinstance(removed, ast.BlockStatement):
            changed |= _shrink_block(program, removed, still_fails)
        index += 1
    return changed


def _shrink_locals(
    program: ast.Program, control: ast.ControlDeclaration, still_fails: Predicate
) -> bool:
    """Try to drop control-local declarations (tables, actions, variables)."""

    changed = False
    index = 0
    while index < len(control.locals):
        removed = control.locals[index]
        del control.locals[index]
        if still_fails(program):
            changed = True
            continue
        control.locals.insert(index, removed)
        if isinstance(removed, ast.ActionDeclaration):
            changed |= _shrink_block(program, removed.body, still_fails)
        index += 1
    return changed
