"""Bug-report bookkeeping for the campaign (paper §7 methodology).

Gauntlet filed every finding with the compiler developers; this module is
the reproduction's stand-in for that workflow: findings become
:class:`BugReport` records, get deduplicated (crashes by signature, semantic
bugs by defective pass + block), and are tallied into the per-platform /
per-location statistics behind Tables 2 and 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Tuple

#: Serialisation schema of :meth:`BugReport.to_dict`.  Version 2 added the
#: triage fields (``reduced_source``, ``reduction_ratio``,
#: ``reduction_rounds``, ``localized_pass``, ``pass_pair``).  Version 3
#: added ``sequence_length`` — the packet count of the replay vector that
#: reproduces the bug (``1`` for single-packet oracles, which is also the
#: default a v1/v2 record loads with: every pre-stateful finding was a
#: one-packet finding).  Version 4 added the knob-vector provenance fields
#: (``knob_arm``, ``knob_overrides``) stamped by scheduled campaigns: which
#: generator arm produced the triggering program (empty for static
#: campaigns).  :meth:`BugReport.from_dict` accepts any version
#: ``<= BUG_REPORT_SCHEMA`` by defaulting the missing keys, so artifact
#: stores written before the triage stage still load.
BUG_REPORT_SCHEMA = 4


class BugKind(Enum):
    """Crash vs. semantic (paper §2.1)."""

    CRASH = "crash"
    SEMANTIC = "semantic"
    INVALID_TRANSFORMATION = "invalid_transformation"


class BugLocation(Enum):
    """Where the defect lives (Table 3)."""

    FRONT_END = "front_end"
    MID_END = "mid_end"
    BACK_END = "back_end"
    UNKNOWN = "unknown"


class BugStatus(Enum):
    """Life cycle of a filed bug (Table 2 rows)."""

    FILED = "filed"
    CONFIRMED = "confirmed"
    FIXED = "fixed"


@dataclass
class BugReport:
    """One distinct bug found by the campaign."""

    identifier: str
    kind: BugKind
    platform: str
    location: BugLocation
    pass_name: str
    description: str
    status: BugStatus = BugStatus.FILED
    #: The program (source text) that triggered the bug.
    trigger_source: str = ""
    #: Witness input assignment for semantic bugs.
    witness: Dict[str, object] = field(default_factory=dict)
    #: Which seeded defect this corresponds to, when known.
    seeded_bug_id: Optional[str] = None
    #: Triage results (schema v2) — filled in by the engine's triage stage
    #: when the campaign runs with ``reduce=True``.  ``reduced_source`` is
    #: the minimized trigger (still failing the original oracle),
    #: ``reduction_ratio`` the fraction of statements removed, and
    #: ``pass_pair`` the ``(before, after)`` snapshot pair the defect was
    #: localized between.
    reduced_source: str = ""
    reduction_ratio: float = 0.0
    reduction_rounds: int = 0
    localized_pass: str = ""
    pass_pair: Optional[Tuple[str, str]] = None
    #: Packets needed to reproduce (schema v3): ``1`` for single-packet
    #: oracles, the minimized sequence length for stateful backend bugs.
    sequence_length: int = 1
    #: Knob-vector provenance (schema v4) — which scheduler arm generated
    #: the triggering program, and the generator overrides it applied.
    #: Empty for campaigns that ran without the feedback scheduler.
    knob_arm: str = ""
    knob_overrides: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (enum members become their values).

        Used by the campaign engine to compare trackers across executors
        (serial vs. sharded runs must file identical reports) and to export
        findings from worker processes.
        """

        return {
            "schema_version": BUG_REPORT_SCHEMA,
            "identifier": self.identifier,
            "kind": self.kind.value,
            "platform": self.platform,
            "location": self.location.value,
            "pass_name": self.pass_name,
            "description": self.description,
            "status": self.status.value,
            "trigger_source": self.trigger_source,
            "witness": dict(self.witness),
            "seeded_bug_id": self.seeded_bug_id,
            "reduced_source": self.reduced_source,
            "reduction_ratio": self.reduction_ratio,
            "reduction_rounds": self.reduction_rounds,
            "localized_pass": self.localized_pass,
            "pass_pair": list(self.pass_pair) if self.pass_pair else None,
            "sequence_length": self.sequence_length,
            "knob_arm": self.knob_arm,
            "knob_overrides": dict(self.knob_overrides),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "BugReport":
        version = payload.get("schema_version", 1)
        if version > BUG_REPORT_SCHEMA:
            raise ValueError(
                f"bug report schema {version} is newer than supported "
                f"({BUG_REPORT_SCHEMA}); upgrade the reader"
            )
        pair = payload.get("pass_pair")
        return cls(
            identifier=payload["identifier"],
            kind=BugKind(payload["kind"]),
            platform=payload["platform"],
            location=BugLocation(payload["location"]),
            pass_name=payload["pass_name"],
            description=payload["description"],
            status=BugStatus(payload.get("status", BugStatus.FILED.value)),
            trigger_source=payload.get("trigger_source", ""),
            witness=dict(payload.get("witness", {})),
            seeded_bug_id=payload.get("seeded_bug_id"),
            reduced_source=payload.get("reduced_source", ""),
            reduction_ratio=payload.get("reduction_ratio", 0.0),
            reduction_rounds=payload.get("reduction_rounds", 0),
            localized_pass=payload.get("localized_pass", ""),
            pass_pair=(pair[0], pair[1]) if pair else None,
            sequence_length=payload.get("sequence_length", 1),
            knob_arm=payload.get("knob_arm", ""),
            knob_overrides=dict(payload.get("knob_overrides", {})),
        )


class BugTracker:
    """Deduplicating collection of bug reports."""

    def __init__(self) -> None:
        self._reports: Dict[str, BugReport] = {}

    # -- filing -----------------------------------------------------------------

    def file(self, report: BugReport) -> bool:
        """File a report; returns False when it duplicates an existing one."""

        if report.identifier in self._reports:
            return False
        self._reports[report.identifier] = report
        return True

    def confirm(self, identifier: str) -> None:
        report = self._reports.get(identifier)
        if report is not None and report.status == BugStatus.FILED:
            report.status = BugStatus.CONFIRMED

    def fix(self, identifier: str) -> None:
        report = self._reports.get(identifier)
        if report is not None:
            report.status = BugStatus.FIXED

    # -- queries -------------------------------------------------------------------

    def get(self, identifier: str) -> Optional[BugReport]:
        return self._reports.get(identifier)

    @property
    def reports(self) -> List[BugReport]:
        return list(self._reports.values())

    def __len__(self) -> int:
        return len(self._reports)

    def by_kind(self, kind: BugKind) -> List[BugReport]:
        return [report for report in self.reports if report.kind == kind]

    def by_platform(self, platform: str) -> List[BugReport]:
        return [report for report in self.reports if report.platform == platform]

    def by_location(self, location: BugLocation) -> List[BugReport]:
        return [report for report in self.reports if report.location == location]

    # -- tables ----------------------------------------------------------------------

    def summary_table(self, platforms: Optional[Iterable[str]] = None) -> Dict:
        """The shape of Table 2: kind x status x platform counts.

        ``platforms`` defaults to the canonical platform order plus any
        other platform the filed reports mention, so the table grows with
        the back-end registry instead of silently dropping columns.
        """

        platforms = self._platforms_or_default(platforms)
        table: Dict[str, Dict[str, Dict[str, int]]] = {}
        for kind in (BugKind.CRASH, BugKind.SEMANTIC):
            table[kind.value] = {}
            for status in (BugStatus.FILED, BugStatus.CONFIRMED, BugStatus.FIXED):
                row = {}
                for platform in platforms:
                    row[platform] = sum(
                        1
                        for report in self.reports
                        if report.kind == kind
                        and report.platform == platform
                        and self._status_at_least(report.status, status)
                    )
                table[kind.value][status.value] = row
        table["total"] = {
            platform: len(self.by_platform(platform)) for platform in platforms
        }
        table["total"]["all"] = len(self.reports)
        return table

    def location_table(self, platforms: Optional[Iterable[str]] = None) -> Dict:
        """The shape of Table 3: location x platform counts."""

        platforms = self._platforms_or_default(platforms)
        table: Dict[str, Dict[str, int]] = {}
        for location in (BugLocation.FRONT_END, BugLocation.MID_END, BugLocation.BACK_END):
            row = {}
            for platform in platforms:
                row[platform] = sum(
                    1
                    for report in self.reports
                    if report.location == location and report.platform == platform
                )
            row["total"] = sum(row.values())
            table[location.value] = row
        table["total"] = {
            platform: len(self.by_platform(platform)) for platform in platforms
        }
        table["total"]["total"] = len(self.reports)
        return table

    #: Canonical column order of the platform tables; mirrors the engine's
    #: merge rank (``repro.core.engine.units.PLATFORM_ORDER``) without
    #: importing it, to keep this module dependency-free.
    _CANONICAL_PLATFORMS = ("p4c", "bmv2", "tofino", "ebpf")

    def _platforms_or_default(self, platforms: Optional[Iterable[str]]) -> Tuple[str, ...]:
        if platforms is not None:
            return tuple(platforms)
        extra = sorted(
            {report.platform for report in self.reports}
            - set(self._CANONICAL_PLATFORMS)
        )
        return self._CANONICAL_PLATFORMS + tuple(extra)

    @staticmethod
    def _status_at_least(actual: BugStatus, queried: BugStatus) -> bool:
        order = [BugStatus.FILED, BugStatus.CONFIRMED, BugStatus.FIXED]
        return order.index(actual) >= order.index(queried)
