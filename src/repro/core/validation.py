"""Translation validation (paper §5).

Given the sequence of per-pass snapshots produced by the compiler, the
validator converts every snapshot into SMT formulas (one per programmable
block and output field) and checks consecutive snapshots for equivalence.
A satisfiable inequality query yields both the defective pass and a witness
assignment (input packet + table configuration) that triggers the
miscompilation -- exactly the workflow of figure 2.

The validator also re-parses every emitted snapshot, which catches the
"invalid transformation" bugs of §7.2 where a pass emits syntactically
broken P4.

Both the reparse check and the symbolic interpretation are memoised by
snapshot *source* in bounded process-wide caches: the pass manager already
treats the emitted source as a snapshot's identity (snapshots with an
unchanged source are skipped, §5.2), and campaigns revisit the same sources
constantly -- the per-defect detection matrix regenerates the same programs
for every defect, and most passes leave most programs untouched -- so each
distinct snapshot is lexed/parsed/interpreted exactly once per campaign.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Generic, List, Optional, Tuple, TypeVar

from repro import smt
from repro.compiler.pass_manager import CompilationResult, PassSnapshot
from repro.core.interpreter import BlockSemantics, InterpreterError, SymbolicInterpreter
from repro.p4 import parse_program
from repro.p4.lexer import LexerError
from repro.p4.parser import ParserError

_V = TypeVar("_V")


class _SourceCache(Generic[_V]):
    """A small LRU keyed by program source.

    CPython caches ``str.__hash__``, so using the source text itself as the
    key costs one hash per *string object*, cheaper than digesting.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        self.maxsize = maxsize
        self._entries: "OrderedDict[str, _V]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, source: str) -> Optional[_V]:
        entry = self._entries.get(source)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(source)
        self.hits += 1
        return entry

    def put(self, source: str, value: _V) -> None:
        self._entries[source] = value
        self._entries.move_to_end(source)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:  # pragma: no cover - trivial
        return len(self._entries)


#: source -> reparse verdict (None when the snapshot reparses cleanly,
#: otherwise the error message).
_REPARSE_CACHE: _SourceCache[Tuple[Optional[str]]] = _SourceCache()

#: source -> symbolic semantics of every block.  Consumers only read the
#: cached ``BlockSemantics`` (terms are immutable), so sharing is safe.
_INTERP_CACHE: _SourceCache[Dict[str, BlockSemantics]] = _SourceCache()

#: source -> term-shape histogram of the program's symbolic semantics.
_SHAPE_CACHE: _SourceCache[Dict[str, int]] = _SourceCache()


def clear_validation_caches() -> None:
    """Drop the reparse and interpretation caches (memory bound for services)."""

    _REPARSE_CACHE.clear()
    _INTERP_CACHE.clear()
    _SHAPE_CACHE.clear()


def validation_cache_stats() -> Dict[str, int]:
    """Hit/miss counters (and entry-count gauges) for the validation caches.

    The campaign engine snapshots these around every work unit and ships
    the per-unit deltas of the monotone counters back to the parent, so
    campaign-level totals stay truthful when validation runs in worker
    processes (each with its own caches).
    """

    return {
        "reparse_hits": _REPARSE_CACHE.hits,
        "reparse_misses": _REPARSE_CACHE.misses,
        "interp_hits": _INTERP_CACHE.hits,
        "interp_misses": _INTERP_CACHE.misses,
        "reparse_entries": len(_REPARSE_CACHE),
        "interp_entries": len(_INTERP_CACHE),
        "shape_entries": len(_SHAPE_CACHE),
    }


def term_shape_histogram(snapshot: PassSnapshot) -> Dict[str, int]:
    """``term op -> node count`` over the snapshot's symbolic semantics.

    Walks the output (and state-output) term DAGs of every block once,
    memoised on ``id()``: hash-consing interns structurally equal terms to
    one object, so the walk touches each distinct subterm exactly once and
    the histogram is near-free on top of an interpretation that validation
    performs (and caches) anyway.  Programs whose semantics cannot be
    interpreted yield an empty histogram — shape coverage is best-effort
    feedback, never an oracle.
    """

    cached = _SHAPE_CACHE.get(snapshot.source)
    if cached is None:
        cached = _compute_shape_histogram(snapshot)
        _SHAPE_CACHE.put(snapshot.source, cached)
    return dict(cached)


def _compute_shape_histogram(snapshot: PassSnapshot) -> Dict[str, int]:
    try:
        semantics = TranslationValidator._interpret(snapshot)
    except Exception:  # noqa: BLE001 - coverage must never fail a unit
        return {}
    histogram: Dict[str, int] = {}
    seen: set = set()
    stack: List["smt.Term"] = []
    for block in semantics.values():
        stack.extend(block.outputs.values())
        stack.extend(block.state_outputs.values())
    while stack:
        term = stack.pop()
        if id(term) in seen:
            continue
        seen.add(id(term))
        histogram[term.op] = histogram.get(term.op, 0) + 1
        stack.extend(term.children)
    return dict(sorted(histogram.items()))


class ValidationOutcome(Enum):
    """Verdict for one compilation run."""

    EQUIVALENT = "equivalent"
    SEMANTIC_BUG = "semantic_bug"
    INVALID_TRANSFORMATION = "invalid_transformation"
    CRASH = "crash"
    REJECTED = "rejected"
    ORACLE_ERROR = "oracle_error"


@dataclass
class PassDivergence:
    """A semantic difference introduced by one specific pass.

    ``before_pass`` names the last pass whose snapshot still agreed with
    the input semantics, so ``(before_pass, pass_name)`` is the diverging
    snapshot pair — the localisation signal the triage stage stores on
    :class:`~repro.core.bugs.BugReport`.
    """

    pass_name: str
    block: str
    output_path: str
    witness: Dict[str, object]
    before_source: str
    after_source: str
    before_pass: str = ""


@dataclass
class ValidationReport:
    """Everything translation validation learned about one program."""

    outcome: ValidationOutcome
    divergences: List[PassDivergence] = field(default_factory=list)
    invalid_pass: Optional[str] = None
    detail: str = ""

    @property
    def found_bug(self) -> bool:
        return self.outcome in (
            ValidationOutcome.SEMANTIC_BUG,
            ValidationOutcome.INVALID_TRANSFORMATION,
            ValidationOutcome.CRASH,
        )


class TranslationValidator:
    """Check that every compiler pass preserved program semantics."""

    def __init__(self, stop_at_first_divergence: bool = True) -> None:
        self.stop_at_first_divergence = stop_at_first_divergence

    # -- entry points ---------------------------------------------------------

    def validate_compilation(self, result: CompilationResult) -> ValidationReport:
        """Validate a full compilation result (all snapshots)."""

        if result.crashed:
            return ValidationReport(
                ValidationOutcome.CRASH, detail=str(result.crash)
            )
        if result.rejected:
            return ValidationReport(
                ValidationOutcome.REJECTED, detail=str(result.error)
            )

        snapshots = result.changed_snapshots()
        # Reparse every emitted program first: a snapshot that no longer
        # parses is an invalid transformation, and later passes cannot be
        # validated meaningfully.
        for snapshot in snapshots[1:]:
            error = self._reparse_error(snapshot.source)
            if error is not None:
                return ValidationReport(
                    ValidationOutcome.INVALID_TRANSFORMATION,
                    invalid_pass=snapshot.pass_name,
                    detail=f"emitted program does not reparse: {error}",
                )

        divergences: List[PassDivergence] = []
        # One incremental solver for the whole chain: consecutive pairs
        # share most of their term DAG, so each batch reuses the previous
        # pairs' Tseitin encoding and learned clauses.  The solver dies
        # with the chain — scoping it wider (per campaign) makes every
        # query pay for every other program's variable space.
        chain_solver = smt.Solver()
        try:
            previous = snapshots[0]
            previous_semantics = self._interpret(previous)
            for snapshot in snapshots[1:]:
                current_semantics = self._interpret(snapshot)
                # Gang every output-field check of this pair into one
                # incremental UNSAT probe (with the per-pair syntactic
                # fast paths and the campaign-lifetime equivalence memo
                # in front).  Only a pair that fails the batch is
                # re-walked field by field on fresh solvers, so the
                # reported first divergence and its witness stay
                # byte-identical to the pre-batching validator — witness
                # models are solver-history-dependent, verdicts are not.
                if not smt.all_equivalent(
                    self._pair_terms(previous_semantics, current_semantics),
                    solver=chain_solver,
                ):
                    divergences.extend(
                        self._compare(
                            previous, snapshot, previous_semantics, current_semantics
                        )
                    )
                if divergences and self.stop_at_first_divergence:
                    break
                previous = snapshot
                previous_semantics = current_semantics
        except InterpreterError as exc:
            # A failure of our own interpreter must never be reported as a
            # compiler bug (paper §5.2: false alarms are interpreter bugs).
            return ValidationReport(ValidationOutcome.ORACLE_ERROR, detail=str(exc))

        if divergences:
            return ValidationReport(ValidationOutcome.SEMANTIC_BUG, divergences=divergences)
        return ValidationReport(ValidationOutcome.EQUIVALENT)

    def validate_pair(self, before: PassSnapshot, after: PassSnapshot) -> List[PassDivergence]:
        """Check a single pair of snapshots."""

        return self._compare(
            before, after, self._interpret(before), self._interpret(after)
        )

    # -- internals ----------------------------------------------------------------

    @staticmethod
    def _reparse_error(source: str) -> Optional[str]:
        cached = _REPARSE_CACHE.get(source)
        if cached is not None:
            return cached[0]
        try:
            parse_program(source)
            error: Optional[str] = None
        except (ParserError, LexerError) as exc:
            error = str(exc)
        _REPARSE_CACHE.put(source, (error,))
        return error

    @staticmethod
    def _pair_terms(
        before_semantics: Dict[str, BlockSemantics],
        after_semantics: Dict[str, BlockSemantics],
    ) -> List[Tuple["smt.Term", "smt.Term"]]:
        """The (before, after) output terms one snapshot pair must preserve."""

        pairs: List[Tuple["smt.Term", "smt.Term"]] = []
        for block_name, before_block in before_semantics.items():
            after_block = after_semantics.get(block_name)
            if after_block is None:
                continue
            for path, before_term in before_block.outputs.items():
                after_term = after_block.outputs.get(path)
                if after_term is None:
                    continue
                pairs.append((before_term, after_term))
            # State-aware equivalence: the final register/counter state is
            # as observable as the packet outputs (it feeds the next packet).
            # Cell paths survive lowering (counters keep their bank name),
            # and both snapshots share the initial-state input symbols, so
            # this quantifies over every reachable and unreachable state.
            for path, before_term in before_block.state_outputs.items():
                after_term = after_block.state_outputs.get(path)
                if after_term is None:
                    continue
                pairs.append((before_term, after_term))
        return pairs

    @staticmethod
    def _interpret(snapshot: PassSnapshot) -> Dict[str, BlockSemantics]:
        semantics = _INTERP_CACHE.get(snapshot.source)
        if semantics is None:
            semantics = SymbolicInterpreter(snapshot.program).interpret()
            _INTERP_CACHE.put(snapshot.source, semantics)
        return semantics

    def _compare(
        self,
        before: PassSnapshot,
        after: PassSnapshot,
        before_semantics: Dict[str, BlockSemantics],
        after_semantics: Dict[str, BlockSemantics],
    ) -> List[PassDivergence]:
        divergences: List[PassDivergence] = []
        for block_name, before_block in before_semantics.items():
            after_block = after_semantics.get(block_name)
            if after_block is None:
                continue
            compared = list(before_block.outputs.items()) + list(
                before_block.state_outputs.items()
            )
            for path, before_term in compared:
                after_term = after_block.outputs.get(
                    path, after_block.state_outputs.get(path)
                )
                if after_term is None:
                    continue
                witness = smt.find_divergence(before_term, after_term)
                if witness is None:
                    continue
                divergences.append(
                    PassDivergence(
                        pass_name=after.pass_name,
                        block=block_name,
                        output_path=path,
                        witness=dict(witness.items()),
                        before_source=before.source,
                        after_source=after.source,
                        before_pass=before.pass_name,
                    )
                )
                if self.stop_at_first_divergence:
                    return divergences
        return divergences
