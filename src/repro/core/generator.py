"""Random generation of well-typed P4 programs (paper §4).

The generator grows an abstract syntax tree probabilistically, steering the
node-type probabilities towards the language constructs of interest, and is
required to emit only programs that pass the parser and the type checker --
a rejected program is a bug in the generator itself, not a finding.

Like the original tool, the generator is biased towards the constructs the
compiler is most likely to get wrong: copy-in/copy-out calls, slices used as
``inout`` arguments, exits inside actions, header-validity changes, nested
conditionals, tables, and arithmetic idioms (power-of-two multiplications,
over-wide shifts, literal underflow) that exercise the optimisation passes.
Every one of these "idioms" corresponds to a trigger feature of a seeded bug
in :mod:`repro.compiler.bugs`.

Header stacks are opt-in via :attr:`GeneratorConfig.p_header_stack` (the
default of ``0.0`` draws no extra randomness, keeping pre-stack corpora
byte-identical).  When enabled, programs grow the stack workloads behind a
disproportionate share of the paper's real compiler bugs: parser extract
loops over ``stack.next``/``stack.last``, ``push_front``/``pop_front``
bursts, and constant-indexed element writes under branches -- the trigger
features of the seeded ``HeaderStackFlattening`` defects.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.p4 import ast
from repro.p4 import registers as reg
from repro.p4.builder import (
    action,
    assign,
    binop,
    block,
    call,
    call_stmt,
    const,
    control,
    extract_next,
    header_decl,
    header_stack,
    if_,
    index_,
    is_valid,
    member,
    param,
    path,
    pop_front,
    program,
    push_front,
    set_invalid,
    set_valid,
    slice_,
    struct_decl,
    table,
    var_decl,
)
from repro.p4.types import BitType, BoolType, VoidType


@dataclass
class GeneratorConfig:
    """Tunable knobs of the random program generator."""

    seed: int = 0
    #: Number of statements in the control's apply block.
    max_apply_statements: int = 6
    #: Maximum expression nesting depth.  Depth two already yields nested
    #: ternaries/shifts; deeper trees mostly grow the SMT formulas without
    #: covering new compiler behaviour.
    max_expression_depth: int = 2
    #: Probability of emitting a helper function.
    p_function: float = 0.5
    #: Probability of emitting a match-action table (per table slot).
    p_table: float = 0.6
    #: Number of table slots to consider.
    max_tables: int = 2
    #: Probability of a "many tables" burst: more single-key tables than a
    #: Tofino stage can hold (``tofino_table_limit_crash`` trigger).
    p_many_tables: float = 0.1
    #: Probability of emitting a parser block.
    p_parser: float = 0.3
    #: Probability that the parser contains a state cycle.  High enough
    #: that a 20-program battery reliably reaches the parser-graph
    #: analysis defect (``parser_loop_unroll_crash``).
    p_parser_cycle: float = 0.3
    #: Probability of emitting a wide (48-bit) header field.
    p_wide_field: float = 0.4
    #: Probability of an "interesting idiom" statement vs. a plain one.
    p_idiom: float = 0.45
    #: Probability that an if statement gets an else branch.
    p_else: float = 0.5
    #: Probability of using exit inside an action.
    p_exit_in_action: float = 0.3
    #: Probability that a program declares a header stack (``Hdr_t hs[N]``)
    #: and grows stack idioms: extract loops, push/pop bursts, indexed
    #: writes under branches.  The default of ``0.0`` draws *no* extra
    #: random numbers, so pre-stack corpora stay byte-identical.
    p_header_stack: float = 0.0
    #: Largest generated stack size (sizes are drawn from 2..max).
    max_stack_size: int = 3
    #: Probability that the parser is a stack extract loop, given that the
    #: program has both a stack and a parser.
    p_stack_parser_loop: float = 0.7
    #: When positive, register the figure-5a idiom: declare a local, pass
    #: it ``inout`` through a helper function, and reuse it afterwards --
    #: the trigger shape of ``def_use_return_clears_scope``.  Default 0.0
    #: keeps historical corpora byte-identical (no extra random draws).
    p_local_arg_idiom: float = 0.0
    #: When positive, register the narrowing-cast idiom
    #: (``hdr.x.a = (bit<8>) <16-bit expr>``) -- the trigger shape of the
    #: eBPF ``ebpf_narrowing_cast_drop`` defect.  The corpus's only other
    #: cast (the figure-5b shape) widens under the literal-adaptation
    #: rules, so narrowing casts need their own idiom.  Like
    #: ``p_local_arg_idiom``, this is an enable gate, not a per-statement
    #: probability: any positive value adds the idiom to the pool at
    #: uniform weight (drawing against the magnitude would perturb the
    #: rng stream).  Default 0.0 keeps historical corpora byte-identical
    #: (no extra random draws).
    p_narrowing_cast: float = 0.0
    #: Probability that a program declares register/counter banks and ends
    #: its apply block with the stateful idiom block: a double count on one
    #: counter cell (the lost-RMW trigger), a write-then-read pair on an
    #: 8-bit register (the reorder trigger), and a wide read-modify-write
    #: with a read-back on a 16-bit register (the spill-narrowing and
    #: flush-truncation triggers).  Stateful programs are the ones the
    #: campaign replays as multi-packet sequences.  The gate is checked
    #: *before* drawing, so the default of 0.0 consumes no randomness and
    #: register-free corpora stay byte-identical.
    p_register: float = 0.0
    #: Largest register/counter bank (sizes are drawn from 2..max).
    max_register_size: int = 4


def derive_child_seed(base_seed: int, index: int) -> int:
    """A per-program seed derived from ``(base_seed, index)``.

    Campaigns shard program generation across worker processes, so the
    corpus must not depend on how many programs any single RNG stream has
    already produced.  Hashing (rather than e.g. ``base_seed + index``)
    decorrelates neighbouring streams, and sha256 -- unlike ``hash()`` --
    is stable across processes and interpreter runs, which is what makes
    serial and parallel campaigns byte-identical.
    """

    digest = hashlib.sha256(f"{base_seed}:{index}".encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass
class _Shape:
    """The fixed data layout every generated program shares."""

    header_fields: List[Tuple[str, int]]
    wide_field: Optional[str]
    instances: List[str] = field(default_factory=lambda: ["h", "eth"])
    #: Header-stack field name (``None`` when the program has no stack).
    stack: Optional[str] = None
    stack_size: int = 0
    #: Register banks as ``(name, cell width, size)`` (empty: stateless).
    registers: List[Tuple[str, int, int]] = field(default_factory=list)
    #: Counter bank name (``None`` when the program has no counter).
    counter: Optional[str] = None
    counter_size: int = 0


class RandomProgramGenerator:
    """Grow random, well-typed programs for the BMv2/Tofino packages."""

    def __init__(self, config: Optional[GeneratorConfig] = None) -> None:
        self.config = config or GeneratorConfig()
        self.rng = random.Random(self.config.seed)
        self._fresh = 0

    # -- public API --------------------------------------------------------------

    def generate(self) -> ast.Program:
        """Generate one program."""

        self._fresh = 0
        shape = self._make_shape()
        declarations: List[ast.Declaration] = list(self._type_declarations(shape))

        functions = self._maybe_functions(shape)
        declarations.extend(functions)

        if self.rng.random() < self.config.p_parser:
            declarations.append(self._make_parser(shape))

        declarations.append(self._make_ingress(shape, functions))
        return program(*declarations)

    def generate_indexed(self, index: int) -> ast.Program:
        """Generate program ``index`` of this generator's corpus.

        Unlike :meth:`generate`, the result depends only on
        ``(config.seed, index)`` -- not on how many programs were generated
        before -- so any shard of the corpus can be produced independently
        in any process and the overall corpus stays byte-identical.
        """

        self.rng.seed(derive_child_seed(self.config.seed, index))
        return self.generate()

    def generate_many(self, count: int) -> List[ast.Program]:
        """Generate a batch of programs (the weekly 10000-program runs of §5.2)."""

        return [self.generate() for _ in range(count)]

    # -- program shape --------------------------------------------------------------

    def _fresh_name(self, prefix: str) -> str:
        self._fresh += 1
        return f"{prefix}{self._fresh}"

    def _make_shape(self) -> _Shape:
        fields = [("a", 8), ("b", 8), ("c", 16), ("d", 4)]
        wide_field = None
        if self.rng.random() < self.config.p_wide_field:
            wide_field = "addr"
            fields.append((wide_field, 48))
        stack = None
        stack_size = 0
        # The probability gate is checked *before* drawing, so configs with
        # the default of 0.0 consume no randomness here and the rest of the
        # stream -- and therefore the whole corpus -- stays byte-identical.
        if self.config.p_header_stack > 0 and self.rng.random() < self.config.p_header_stack:
            stack = "hs"
            stack_size = self.rng.randint(2, max(2, self.config.max_stack_size))
        registers: List[Tuple[str, int, int]] = []
        counter = None
        counter_size = 0
        # Same gate-before-draw discipline as the stack knob above.
        if self.config.p_register > 0 and self.rng.random() < self.config.p_register:
            max_size = max(2, self.config.max_register_size)
            registers = [
                ("r8", 8, self.rng.randint(2, max_size)),
                ("r16", 16, self.rng.randint(2, max_size)),
            ]
            counter = "cnt"
            counter_size = self.rng.randint(2, max_size)
        return _Shape(
            header_fields=fields,
            wide_field=wide_field,
            stack=stack,
            stack_size=stack_size,
            registers=registers,
            counter=counter,
            counter_size=counter_size,
        )

    def _type_declarations(self, shape: _Shape):
        yield header_decl("Hdr_t", shape.header_fields)
        fields: List[Tuple[str, object]] = [(name, "Hdr_t") for name in shape.instances]
        if shape.stack is not None:
            fields.append((shape.stack, header_stack("Hdr_t", shape.stack_size)))
        yield struct_decl("Headers", fields)

    # -- expression generation ----------------------------------------------------------

    def _field_paths(self, shape: _Shape, width: int) -> List[ast.Expression]:
        paths = []
        for instance in shape.instances:
            for name, field_width in shape.header_fields:
                if field_width == width:
                    paths.append(member("hdr", instance, name))
        if shape.stack is not None:
            # Stack elements join the operand pool: constant-indexed element
            # fields are ordinary l-values/r-values after flattening.
            for index in range(shape.stack_size):
                for name, field_width in shape.header_fields:
                    if field_width == width:
                        paths.append(
                            ast.Member(self._stack_element(shape, index), name)
                        )
        return paths

    def _stack_ref(self, shape: _Shape) -> ast.Expression:
        return member("hdr", shape.stack)

    def _stack_element(self, shape: _Shape, index: int) -> ast.ArrayIndex:
        return index_(self._stack_ref(shape), index)

    def _bit_expr(
        self, shape: _Shape, width: int, depth: int, locals_: Dict[str, int]
    ) -> ast.Expression:
        """A random bit<width> expression."""

        rng = self.rng
        leaves: List[Callable[[], ast.Expression]] = [
            lambda: const(rng.randrange(1 << min(width, 16)), width)
        ]
        fields = self._field_paths(shape, width)
        if fields:
            leaves.append(lambda: rng.choice(fields))
        matching_locals = [name for name, local_width in locals_.items() if local_width == width]
        if matching_locals:
            leaves.append(lambda: path(rng.choice(matching_locals)))
        wider = [
            (name, field_width)
            for name, field_width in shape.header_fields
            if field_width > width
        ]
        if wider:
            def slice_leaf() -> ast.Expression:
                name, field_width = rng.choice(wider)
                low = rng.randrange(field_width - width + 1)
                instance = rng.choice(shape.instances)
                return slice_(member("hdr", instance, name), low + width - 1, low)

            leaves.append(slice_leaf)

        if depth <= 0:
            return rng.choice(leaves)()

        choice = rng.random()
        if choice < 0.45:
            # Multiplication is restricted to constant multipliers: general
            # variable-by-variable products blow up the bit-blasted formulas
            # without exercising additional compiler behaviour.
            op = rng.choice(["+", "-", "&", "|", "^", "*"])
            left = self._bit_expr(shape, width, depth - 1, locals_)
            if op == "*":
                right: ast.Expression = const(rng.randrange(0, 8), width)
            else:
                right = self._bit_expr(shape, width, depth - 1, locals_)
            return binop(op, left, right)
        if choice < 0.6:
            op = rng.choice(["<<", ">>"])
            amount = const(rng.randrange(0, width), width)
            return binop(op, self._bit_expr(shape, width, depth - 1, locals_), amount)
        if choice < 0.7:
            return ast.UnaryOp("~", self._bit_expr(shape, width, depth - 1, locals_))
        if choice < 0.85:
            return ast.Ternary(
                self._bool_expr(shape, depth - 1, locals_),
                self._bit_expr(shape, width, depth - 1, locals_),
                self._bit_expr(shape, width, depth - 1, locals_),
            )
        return rng.choice(leaves)()

    def _bool_expr(
        self, shape: _Shape, depth: int, locals_: Dict[str, int]
    ) -> ast.Expression:
        rng = self.rng
        width = rng.choice([8, 8, 16, 4])
        comparison = binop(
            rng.choice(["==", "!=", "<", "<=", ">", ">="]),
            self._bit_expr(shape, width, max(depth - 1, 0), locals_),
            self._bit_expr(shape, width, max(depth - 1, 0), locals_),
        )
        if depth <= 0:
            return comparison
        choice = rng.random()
        if choice < 0.2:
            return is_valid(member("hdr", rng.choice(shape.instances)))
        if choice < 0.4:
            return ast.UnaryOp("!", self._bool_expr(shape, depth - 1, locals_))
        if choice < 0.6:
            return binop(
                rng.choice(["&&", "||"]),
                self._bool_expr(shape, depth - 1, locals_),
                self._bool_expr(shape, depth - 1, locals_),
            )
        return comparison

    # -- statement generation ---------------------------------------------------------------

    def _assignment(self, shape: _Shape, locals_: Dict[str, int]) -> ast.Statement:
        rng = self.rng
        width = rng.choice([8, 8, 16, 4])
        targets = self._field_paths(shape, width)
        matching_locals = [name for name, local_width in locals_.items() if local_width == width]
        if matching_locals and rng.random() < 0.3:
            lhs: ast.Expression = path(rng.choice(matching_locals))
        elif targets:
            lhs = rng.choice(targets)
        else:
            lhs = member("hdr", "h", "a")
            width = 8
        rhs = self._bit_expr(shape, width, self.config.max_expression_depth, locals_)
        return assign(lhs, rhs)

    def _plain_statement(
        self, shape: _Shape, locals_: Dict[str, int], depth: int = 1
    ) -> List[ast.Statement]:
        rng = self.rng
        roll = rng.random()
        if roll < 0.55:
            return [self._assignment(shape, locals_)]
        if roll < 0.7 and depth > 0:
            then_branch = [self._assignment(shape, locals_)]
            else_branch = (
                [self._assignment(shape, locals_)]
                if rng.random() < self.config.p_else
                else None
            )
            return [if_(self._bool_expr(shape, 1, locals_), then_branch, else_branch)]
        if roll < 0.8:
            name = self._fresh_name("tmp")
            width = rng.choice([8, 16])
            # Build the initialiser before registering the local so the new
            # variable cannot appear in its own initialiser.
            initializer = self._bit_expr(shape, width, 1, locals_)
            locals_[name] = width
            return [var_decl(name, BitType(width), initializer)]
        if roll < 0.9:
            instance = rng.choice(shape.instances)
            toggler = set_valid if rng.random() < 0.5 else set_invalid
            return [toggler(member("hdr", instance))]
        return [self._assignment(shape, locals_)]

    # -- "interesting idiom" statements (bug-trigger features) --------------------------------

    def _idiom_statement(
        self,
        shape: _Shape,
        locals_: Dict[str, int],
        functions: Sequence[ast.FunctionDeclaration],
    ) -> List[ast.Statement]:
        rng = self.rng
        idioms: List[Callable[[], List[ast.Statement]]] = [
            lambda: self._idiom_arith_corner(shape),
            lambda: self._idiom_validity_chain(shape),
            lambda: self._idiom_validity_branch(shape, locals_),
            lambda: self._idiom_empty_then(shape, locals_),
            lambda: self._idiom_narrow_slice(shape),
            lambda: self._idiom_nested_if(shape, locals_),
        ]
        if shape.wide_field is not None:
            idioms.append(lambda: self._idiom_wide_field(shape))
        if self.config.p_narrowing_cast > 0:
            idioms.append(lambda: self._idiom_narrowing_cast(shape, locals_))
        if shape.stack is not None:
            idioms.append(lambda: self._idiom_stack_shift(shape, locals_))
            idioms.append(lambda: self._idiom_stack_indexed_branch(shape, locals_))
        if functions:
            idioms.append(lambda: self._idiom_function_call(shape, locals_, functions))
            idioms.append(lambda: self._idiom_aliased_call(shape, functions))
            if self.config.p_local_arg_idiom > 0:
                idioms.append(
                    lambda: self._idiom_local_through_function(shape, locals_, functions)
                )
        return rng.choice(idioms)()

    def _idiom_arith_corner(self, shape: _Shape) -> List[ast.Statement]:
        """Constant underflow, power-of-two multiply, over-wide shift."""

        rng = self.rng
        target = member("hdr", rng.choice(shape.instances), "a")
        choice = rng.random()
        if choice < 0.25:
            lhs_value = rng.randrange(0, 4)
            rhs_value = rng.randrange(lhs_value + 1, lhs_value + 8)
            return [assign(target, binop("-", const(lhs_value, 8), const(rhs_value, 8)))]
        if choice < 0.5:
            power = rng.choice([2, 4, 8])
            return [assign(target, binop("*", member("hdr", "h", "b"), const(power, 8)))]
        if choice < 0.75:
            amount = rng.randrange(8, 12)
            return [assign(target, binop("<<", member("hdr", "h", "b"), const(amount, 8)))]
        # A width-less literal shifted by a run-time value (figure 5b).
        shifted = binop("+", binop("<<", const(1), member("hdr", "h", "d")), const(2))
        return [assign(target, ast.Cast(BitType(8), shifted))]

    def _idiom_validity_chain(self, shape: _Shape) -> List[ast.Statement]:
        """setInvalid / write / read-through chains (figure 5e)."""

        instance = self.rng.choice(shape.instances)
        other = "eth" if instance == "h" else "h"
        return [
            set_invalid(member("hdr", instance)),
            assign(member("hdr", instance, "a"), const(self.rng.randrange(1, 255), 8)),
            assign(member("hdr", other, "a"), member("hdr", instance, "a")),
        ]

    def _idiom_validity_branch(
        self, shape: _Shape, locals_: Dict[str, int]
    ) -> List[ast.Statement]:
        """A validity toggle *inside* a conditional branch.

        ``dead_code_removes_validity_call`` only strips ``setValid()`` /
        ``setInvalid()`` statements from if branches, so top-level toggles
        never reach the defect.
        """

        rng = self.rng
        instance = rng.choice(shape.instances)
        toggler = set_valid if rng.random() < 0.5 else set_invalid
        then_branch: List[ast.Statement] = [
            toggler(member("hdr", instance)),
            self._assignment(shape, locals_),
        ]
        else_branch = (
            [self._assignment(shape, locals_)]
            if rng.random() < self.config.p_else
            else None
        )
        return [if_(self._bool_expr(shape, 1, locals_), then_branch, else_branch)]

    def _idiom_empty_then(self, shape: _Shape, locals_: Dict[str, int]) -> List[ast.Statement]:
        """``if (c) { } else { ... }`` -- the SimplifyControlFlow trigger."""

        return [
            ast.IfStatement(
                self._bool_expr(shape, 1, locals_),
                ast.BlockStatement([]),
                ast.BlockStatement([self._assignment(shape, locals_)]),
            )
        ]

    def _idiom_nested_if(self, shape: _Shape, locals_: Dict[str, int]) -> List[ast.Statement]:
        inner = if_(
            self._bool_expr(shape, 1, locals_),
            [self._assignment(shape, locals_)],
            [self._assignment(shape, locals_)],
        )
        outer = ast.IfStatement(
            self._bool_expr(shape, 1, locals_),
            ast.BlockStatement([inner]),
            None,
        )
        return [outer]

    def _idiom_narrowing_cast(
        self, shape: _Shape, locals_: Dict[str, int]
    ) -> List[ast.Statement]:
        """``hdr.x.a = (bit<8>) <16-bit expr>`` -- a genuinely narrowing cast.

        The expression is built at width 16 (so the cast discards a real
        high byte) and the result lands in an 8-bit field, where a back end
        that keeps the wrong register half diverges observably.
        """

        rng = self.rng
        target = member("hdr", rng.choice(shape.instances), "a")
        source = self._bit_expr(shape, 16, 1, locals_)
        return [assign(target, ast.Cast(BitType(8), source))]

    def _idiom_narrow_slice(self, shape: _Shape) -> List[ast.Statement]:
        instance = self.rng.choice(shape.instances)
        low = self.rng.randrange(0, 5)
        high = min(low + self.rng.randrange(0, 3), 7)
        width = high - low + 1
        return [
            assign(
                slice_(member("hdr", instance, "a"), high, low),
                const(self.rng.randrange(1 << width), width),
            )
        ]

    def _idiom_wide_field(self, shape: _Shape) -> List[ast.Statement]:
        value = self.rng.randrange(1 << 33, 1 << 48)
        statements = [
            assign(member("hdr", "eth", shape.wide_field), const(value, 48))
        ]
        if self.rng.random() < 0.5:
            statements.append(
                assign(
                    member("hdr", "eth", shape.wide_field),
                    binop(
                        "++",
                        member("hdr", "h", "c"),
                        slice_(member("hdr", "eth", shape.wide_field), 31, 0),
                    ),
                )
            )
        return statements

    def _idiom_stack_shift(
        self, shape: _Shape, locals_: Dict[str, int]
    ) -> List[ast.Statement]:
        """A push/pop burst around an indexed element write.

        ``push_front`` and ``pop_front`` are the trigger features of the two
        seeded ``HeaderStackFlattening`` defects, so the burst always
        carries both (order randomised) plus a validity toggle and a field
        write on random elements -- the writes keep the shifted contents
        observable through the element outputs.
        """

        rng = self.rng
        size = shape.stack_size
        statements: List[ast.Statement] = [
            set_valid(self._stack_element(shape, rng.randrange(size))),
            assign(
                ast.Member(self._stack_element(shape, rng.randrange(size)), "a"),
                self._bit_expr(shape, 8, 1, locals_),
            ),
        ]
        push = push_front(self._stack_ref(shape), rng.randrange(1, min(size, 2) + 1))
        pop = pop_front(self._stack_ref(shape), 1)
        statements.extend([push, pop] if rng.random() < 0.5 else [pop, push])
        if rng.random() < 0.5:
            statements.append(
                assign(
                    ast.Member(self._stack_element(shape, rng.randrange(size)), "b"),
                    ast.Member(self._stack_element(shape, rng.randrange(size)), "b"),
                )
            )
        return statements

    def _idiom_stack_indexed_branch(
        self, shape: _Shape, locals_: Dict[str, int]
    ) -> List[ast.Statement]:
        """Indexed element writes (and validity toggles) under branches."""

        rng = self.rng
        size = shape.stack_size
        then_branch: List[ast.Statement] = [
            assign(
                ast.Member(self._stack_element(shape, rng.randrange(size)), "a"),
                self._bit_expr(shape, 8, 1, locals_),
            )
        ]
        if rng.random() < 0.5:
            toggler = set_valid if rng.random() < 0.5 else set_invalid
            then_branch.insert(0, toggler(self._stack_element(shape, rng.randrange(size))))
        else_branch = (
            [
                assign(
                    ast.Member(self._stack_element(shape, rng.randrange(size)), "b"),
                    self._bit_expr(shape, 8, 1, locals_),
                )
            ]
            if rng.random() < self.config.p_else
            else None
        )
        return [if_(self._bool_expr(shape, 1, locals_), then_branch, else_branch)]

    def _idiom_function_call(
        self,
        shape: _Shape,
        locals_: Dict[str, int],
        functions: Sequence[ast.FunctionDeclaration],
    ) -> List[ast.Statement]:
        """A call whose result feeds a larger expression (nested-call trigger).

        Arguments prefer control-local variables when any are in scope: the
        ``def_use_return_clears_scope`` defect deletes the *declarations* of
        locals passed to the poisoned function, so header-field arguments
        can never reach it.
        """

        rng = self.rng
        function = rng.choice(list(functions))
        byte_locals = [
            name for name, local_width in locals_.items() if local_width == 8
        ]

        def argument() -> ast.Expression:
            if byte_locals and rng.random() < 0.5:
                return path(rng.choice(byte_locals))
            return member("hdr", "h", "a")

        args = [argument() for _ in function.params]
        call_expr = call(function.name, *args)
        if isinstance(function.return_type, VoidType):
            return [ast.MethodCallStatement(call_expr)]
        target = member("hdr", rng.choice(shape.instances), "b")
        if rng.random() < 0.35:
            return [assign(target, call_expr)]
        # The common shape nests the call inside a binary expression -- the
        # ``inline_missing_function`` snowball only fires on nested calls.
        return [assign(target, binop("+", call_expr, const(rng.randrange(1, 16), 8)))]

    def _idiom_local_through_function(
        self,
        shape: _Shape,
        locals_: Dict[str, int],
        functions: Sequence[ast.FunctionDeclaration],
    ) -> List[ast.Statement]:
        """Figure 5a: a local flows ``inout`` through a call and is reused.

        ``def_use_return_clears_scope`` deletes the *declarations* of
        locals passed to inout+return functions, so the shape needs all
        three pieces in one place: the declaration, the call, and a
        post-call use of the local.
        """

        rng = self.rng
        candidates = [
            function
            for function in functions
            if any(p.direction == "inout" for p in function.params)
        ]
        if not candidates:
            return [self._assignment(shape, locals_)]
        function = rng.choice(candidates)
        name = self._fresh_name("tmp")
        statements: List[ast.Statement] = [
            var_decl(name, BitType(8), member("hdr", "h", "a"))
        ]
        args: List[ast.Expression] = [path(name)]
        args.extend(member("hdr", "h", "b") for _ in function.params[1:])
        call_expr = call(function.name, *args)
        if isinstance(function.return_type, VoidType):
            statements.append(ast.MethodCallStatement(call_expr))
        else:
            statements.append(
                assign(member("hdr", rng.choice(shape.instances), "b"), call_expr)
            )
        statements.append(assign(member("hdr", "h", "a"), path(name)))
        locals_[name] = 8
        return statements

    def _idiom_aliased_call(
        self, shape: _Shape, functions: Sequence[ast.FunctionDeclaration]
    ) -> List[ast.Statement]:
        """Pass the same l-value for several parameters (copy-out ordering)."""

        candidates = [f for f in functions if len(f.params) >= 2]
        if not candidates:
            return [self._assignment(shape, {})]
        function = self.rng.choice(candidates)
        same = member("hdr", "h", "a")
        args = [same.clone() for _ in function.params]
        return [call_stmt(function.name, *args)]

    # -- functions -------------------------------------------------------------------------------

    def _maybe_functions(self, shape: _Shape) -> List[ast.FunctionDeclaration]:
        if self.rng.random() >= self.config.p_function:
            return []
        rng = self.rng
        functions = []
        name = self._fresh_name("func")
        if rng.random() < 0.5:
            # One inout parameter, with a return (the figure 5a shape).
            body = [
                assign(path("x"), binop("+", path("x"), const(rng.randrange(1, 9), 8))),
                ast.ReturnStatement(path("x")),
            ]
            functions.append(
                ast.FunctionDeclaration(
                    name, BitType(8), [param("inout", BitType(8), "x")], block(*body)
                )
            )
        else:
            # Two inout parameters (copy-out ordering shape).
            body = [
                assign(path("x"), binop("+", path("x"), const(1, 8))),
                assign(path("y"), binop("+", path("y"), const(2, 8))),
            ]
            functions.append(
                ast.FunctionDeclaration(
                    name,
                    VoidType(),
                    [param("inout", BitType(8), "x"), param("inout", BitType(8), "y")],
                    block(*body),
                )
            )
        return functions

    # -- actions and tables ------------------------------------------------------------------------

    def _make_actions(self, shape: _Shape) -> List[ast.ActionDeclaration]:
        rng = self.rng
        actions: List[ast.ActionDeclaration] = []

        # A data-plane action (bound by table entries).
        actions.append(
            action(
                self._fresh_name("set_field"),
                [param("", BitType(8), "val")],
                assign(member("hdr", "h", "b"), path("val")),
            )
        )

        # An action with a conditional body (the Predication trigger).  Half
        # of the time the then branch nests a second if/else: the
        # ``predication_nested_else_lost`` defect only drops assignments
        # from *nested* else branches, so flat conditionals never reach it.
        if rng.random() < 0.5:
            then_branch: List[ast.Statement] = [
                if_(
                    binop("==", member("hdr", "h", "b"), const(rng.randrange(256), 8)),
                    [assign(member("hdr", "h", "b"), const(rng.randrange(256), 8))],
                    [assign(member("hdr", "h", "b"), const(rng.randrange(256), 8))],
                )
            ]
        else:
            then_branch = [assign(member("hdr", "h", "b"), const(rng.randrange(256), 8))]
        body_statements: List[ast.Statement] = [
            if_(
                binop("==", member("hdr", "h", "a"), const(rng.randrange(4), 8)),
                then_branch,
                [assign(member("hdr", "h", "b"), const(rng.randrange(256), 8))]
                if rng.random() < 0.7
                else None,
            )
        ]
        if rng.random() < self.config.p_exit_in_action:
            body_statements.append(ast.ExitStatement())
        actions.append(action(self._fresh_name("cond_set"), [], *body_statements))

        # An action taking an inout slice-compatible parameter (figure 5d).
        # A conditional exit sometimes follows the parameter write: P4-16
        # requires copy-out even when the callee exits, which is exactly
        # what the ``exit_ignores_copy_out`` defect gets wrong (figure 5f).
        adjust_body: List[ast.Statement] = [
            assign(slice_(member("hdr", "h", "a"), 0, 0), const(rng.randrange(2), 1)),
            assign(path("val"), const(rng.randrange(1 << 7), 7)),
        ]
        if rng.random() < self.config.p_exit_in_action:
            adjust_body.append(
                if_(
                    binop("<", member("hdr", "h", "d"), const(rng.randrange(1, 16), 4)),
                    [ast.ExitStatement()],
                )
            )
        actions.append(
            action(
                self._fresh_name("adjust"),
                [param("inout", BitType(7), "val")],
                *adjust_body,
            )
        )
        return actions

    def _make_tables(
        self, shape: _Shape, actions: Sequence[ast.ActionDeclaration]
    ) -> List[ast.TableDeclaration]:
        rng = self.rng
        tables: List[ast.TableDeclaration] = []
        # Actions whose parameters are all directionless can be bound from
        # table entries (data-plane arguments).
        bindable = [a.name for a in actions if all(not p.direction for p in a.params)]
        for _ in range(self.config.max_tables):
            if rng.random() >= self.config.p_table:
                continue
            keys: List[Tuple[ast.Expression, str]] = [(member("hdr", "h", "a"), "exact")]
            if rng.random() < 0.4:
                keys.append((member("hdr", "h", "b"), "exact"))
            chosen = list(bindable[: rng.randrange(0, len(bindable) + 1)])
            if "NoAction" not in chosen:
                chosen.append("NoAction")
            tables.append(
                table(self._fresh_name("t"), keys, chosen, default_action="NoAction")
            )
        if rng.random() < self.config.p_many_tables:
            # Burst of trivial tables: more than one hardware stage holds
            # (13+ against Tofino's 12-per-stage budget).  Single key, only
            # NoAction, so the symbolic formulas stay small.
            for _ in range(13 + rng.randrange(0, 4)):
                tables.append(
                    table(
                        self._fresh_name("t"),
                        [(member("hdr", "h", "b"), "exact")],
                        ["NoAction"],
                        default_action="NoAction",
                    )
                )
        return tables

    # -- the control block ------------------------------------------------------------------------------

    def _make_ingress(
        self, shape: _Shape, functions: Sequence[ast.FunctionDeclaration]
    ) -> ast.ControlDeclaration:
        rng = self.rng
        actions = self._make_actions(shape)
        tables = self._make_tables(shape, actions)
        locals_: Dict[str, int] = {}

        statements: List[ast.Statement] = []
        slice_action = actions[2]
        if rng.random() < 0.5:
            statements.append(
                call_stmt(slice_action.name, slice_(member("hdr", "h", "a"), 7, 1))
            )
        for table_decl in tables:
            statements.append(call_stmt(ast.Member(path(table_decl.name), "apply")))

        for _ in range(self.config.max_apply_statements):
            if rng.random() < self.config.p_idiom:
                statements.extend(self._idiom_statement(shape, locals_, functions))
            else:
                statements.extend(self._plain_statement(shape, locals_))

        # The stateful block sits *after* the random statements but *before*
        # the observability trailer: its read-backs land in header fields the
        # trailer only xor-folds (never overwrites), so a divergence that is
        # visible only through a read-back value -- the read/write-reorder
        # defect leaves the final register state intact -- survives to the
        # output packet.
        statements.extend(self._stateful_block(shape))
        statements.extend(self._observability_trailer(shape))

        state_decls: List[ast.Declaration] = [
            ast.RegisterDeclaration(name, width, size)
            for name, width, size in shape.registers
        ]
        if shape.counter is not None:
            state_decls.append(
                ast.CounterDeclaration(shape.counter, shape.counter_size)
            )

        return control(
            "ingress",
            [param("inout", "Headers", "hdr")],
            state_decls + list(actions) + list(tables),
            *statements,
        )

    def _stateful_block(self, shape: _Shape) -> List[ast.Statement]:
        """The deterministic register/counter idiom block of stateful programs.

        One fixed statement sequence covers every seeded stateful trigger:

        * two ``count`` calls on the same counter cell — the second RMW reads
          the value the first just wrote (``repeated_count``),
        * a write-then-read pair on the 8-bit register, read back into
          ``hdr.h.b`` — a hoisted read crossing the write changes only the
          read-back value, not the final state (``write_then_read``), and
        * a read-modify-write with read-back on the 16-bit register — wide
          enough that a truncating spill or a narrow flush loses high bits
          (``wide_register``).

        Only the index/operand constants are drawn from the rng (inside the
        caller's gate, so stateless corpora draw nothing); the statement
        shapes themselves are fixed, which keeps trigger coverage independent
        of the random statement mix around them.
        """

        if not shape.registers:
            return []
        rng = self.rng
        statements: List[ast.Statement] = []

        def state_index(bank_size: int) -> ast.Constant:
            return const(rng.randrange(bank_size), reg.STATE_INDEX_WIDTH)

        if shape.counter is not None:
            cell = state_index(shape.counter_size)
            statements.append(reg.count_call(shape.counter, cell))
            statements.append(reg.count_call(shape.counter, cell))

        (r8_name, r8_width, r8_size), (r16_name, r16_width, r16_size) = shape.registers

        # r8: write an accumulating value, then read it straight back.
        r8_index = state_index(r8_size)
        statements.append(
            reg.write_call(
                r8_name,
                r8_index,
                binop("+", member("hdr", "h", "b"), const(rng.randrange(1, 64), r8_width)),
            )
        )
        statements.append(reg.read_call(r8_name, member("hdr", "h", "b"), r8_index))

        # r16: wide RMW folding hdr.h.c into the cell, with a read-back.
        r16_index = state_index(r16_size)
        temp = "rmw16"
        statements.append(
            ast.VariableDeclaration(temp, BitType(r16_width), None)
        )
        statements.append(reg.read_call(r16_name, path(temp), r16_index))
        statements.append(
            reg.write_call(
                r16_name,
                r16_index,
                binop("+", path(temp), member("hdr", "h", "c")),
            )
        )
        statements.append(reg.read_call(r16_name, member("hdr", "h", "c"), r16_index))
        return statements

    def _observability_trailer(self, shape: _Shape) -> List[ast.Statement]:
        """Trigger idioms that every program carries at the end of its apply.

        Randomly placed idioms are frequently rendered unobservable -- a
        later write clobbers the folded constant, or a ``setInvalid()``
        makes the whole header's output undefined -- which leaves seeded
        defects like ``constant_folding_no_mask`` and
        ``bmv2_wide_field_truncation`` untriggered in small batches.  The
        trailer re-emits the two cheapest high-yield triggers as the *last*
        statements of the block, where nothing can overwrite them: a
        constant-underflow operand (mid-end arithmetic folding) and, when
        the layout has one, a wide-field write whose value needs more than
        32 bits (back-end truncation).  Both are *xor-folded into* the
        field's previous value rather than overwriting it: xor is
        invertible, so every divergence already present in the field stays
        observable through the trailer.
        """

        rng = self.rng
        lhs_value = rng.randrange(0, 4)
        rhs_value = rng.randrange(lhs_value + 1, lhs_value + 8)
        statements = [
            assign(
                member("hdr", instance, "a"),
                binop(
                    "^",
                    member("hdr", instance, "a"),
                    binop("-", const(lhs_value, 8), const(rhs_value, 8)),
                ),
            )
            for instance in shape.instances
        ]
        if shape.wide_field is not None:
            wide = member("hdr", "eth", shape.wide_field)
            statements.append(
                assign(
                    wide,
                    binop("^", wide, const(rng.randrange(1 << 33, 1 << 48), 48)),
                )
            )
        return statements

    # -- parsers ------------------------------------------------------------------------------------------

    def _make_parser(self, shape: _Shape) -> ast.ParserDeclaration:
        rng = self.rng
        if shape.stack is not None and rng.random() < self.config.p_stack_parser_loop:
            return self._make_stack_parser(shape)
        cyclic = rng.random() < self.config.p_parser_cycle
        start = ast.ParserState(
            "start",
            statements=[],
            select_expr=member("hdr", "h", "a"),
            cases=[
                ast.SelectCase(const(rng.randrange(4), 8), "middle"),
                ast.SelectCase(None, "accept"),
            ],
        )
        middle = ast.ParserState(
            "middle",
            statements=[
                assign(
                    member("hdr", "h", "b"),
                    binop("+", member("hdr", "h", "b"), const(1, 8)),
                )
            ],
        )
        if cyclic:
            middle.select_expr = member("hdr", "h", "b")
            middle.cases = [
                ast.SelectCase(const(rng.randrange(4, 8), 8), "accept"),
                ast.SelectCase(None, "middle"),
            ]
        else:
            middle.next_state = "accept"
        return ast.ParserDeclaration(
            "prs", [param("inout", "Headers", "hdr")], [start, middle]
        )

    def _make_stack_parser(self, shape: _Shape) -> ast.ParserDeclaration:
        """An extract loop: ``fill`` keeps extracting while ``last`` matches.

        The loop is the canonical stack workload (TLV/MPLS-style parsing):
        each iteration advances ``nextIndex``, and the continue condition
        reads a field of the most recently extracted element.  Iterations
        past the stack capacity are recorded as overflow path conditions,
        which the packet-test oracle excludes.
        """

        rng = self.rng
        start = ast.ParserState(
            "start",
            statements=[],
            select_expr=member("hdr", "h", "a"),
            cases=[
                ast.SelectCase(const(rng.randrange(4), 8), "fill"),
                ast.SelectCase(None, "accept"),
            ],
        )
        fill = ast.ParserState(
            "fill",
            statements=[extract_next(self._stack_ref(shape))],
            select_expr=ast.Member(
                ast.Member(self._stack_ref(shape), "last"), "a"
            ),
            cases=[
                ast.SelectCase(const(rng.randrange(1, 4), 8), "fill"),
                ast.SelectCase(None, "accept"),
            ],
        )
        return ast.ParserDeclaration(
            "prs", [param("inout", "Headers", "hdr")], [start, fill]
        )
