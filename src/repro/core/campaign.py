"""Bug-finding campaign orchestration (paper §7 methodology).

Two modes are provided:

* :meth:`Campaign.run` -- the "weekly batch" workflow: generate N random
  programs, compile them for each platform with a given set of seeded
  defects enabled, and collect deduplicated bug reports using all three
  techniques (crash detection, translation validation, symbolic-execution
  packet tests).
* :meth:`Campaign.run_detection_matrix` -- the reproduction-oriented view:
  for every seeded defect, run a small campaign with only that defect
  enabled and record whether Gauntlet detects it and with which technique.
  The Table 2/3 benchmarks are built from this matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.compiler import CompilerOptions, P4Compiler
from repro.compiler.bugs import (
    BUG_CATALOG,
    KIND_CRASH,
    LOCATION_BACKEND,
    LOCATION_FRONTEND,
    LOCATION_MIDEND,
    SeededBug,
)
from repro.compiler.errors import CompilerCrash, CompilerError
from repro.core.bugs import BugKind, BugLocation, BugReport, BugStatus, BugTracker
from repro.core.crash import classify_compilation, crash_from_exception
from repro.core.generator import GeneratorConfig, RandomProgramGenerator
from repro.core.interpreter import InterpreterError
from repro.core.testgen import SymbolicTestGenerator
from repro.core.validation import TranslationValidator, ValidationOutcome
from repro.p4 import ast, emit_program
from repro.targets.bmv2 import Bmv2Target
from repro.targets.ptf import PtfRunner, PtfTest
from repro.targets.stf import StfRunner, StfTest
from repro.targets.tofino import TofinoTarget


_LOCATION_MAP = {
    LOCATION_FRONTEND: BugLocation.FRONT_END,
    LOCATION_MIDEND: BugLocation.MID_END,
    LOCATION_BACKEND: BugLocation.BACK_END,
}

#: Pass name -> location, used to localise findings that are not attributed
#: to a seeded defect.
_PASS_LOCATIONS = {
    "TypeChecking": BugLocation.FRONT_END,
    "SimplifyDefUse": BugLocation.FRONT_END,
    "InlineFunctions": BugLocation.FRONT_END,
    "RemoveActionParameters": BugLocation.FRONT_END,
    "ParserGraphs": BugLocation.FRONT_END,
    "TypeCheckingPost": BugLocation.MID_END,
    "CheckNoFunctionCalls": BugLocation.MID_END,
    "ConstantFolding": BugLocation.MID_END,
    "StrengthReduction": BugLocation.MID_END,
    "Predication": BugLocation.MID_END,
    "LocalCopyPropagation": BugLocation.MID_END,
    "DeadCodeElimination": BugLocation.MID_END,
    "SimplifyControlFlow": BugLocation.MID_END,
}


@dataclass
class CampaignConfig:
    """How many programs to generate and which defects to enable."""

    programs: int = 25
    seed: int = 0
    enabled_bugs: Sequence[str] = ()
    max_tests_per_program: int = 4
    platforms: Sequence[str] = ("p4c", "bmv2", "tofino")
    generator: Optional[GeneratorConfig] = None


@dataclass
class DetectionRecord:
    """Whether one seeded defect was detected, and how."""

    bug: SeededBug
    detected: bool
    technique: str = ""
    programs_tried: int = 0


@dataclass
class CampaignStatistics:
    """Aggregate results of one campaign run."""

    programs_generated: int = 0
    programs_rejected: int = 0
    oracle_errors: int = 0
    crash_findings: int = 0
    semantic_findings: int = 0
    tracker: BugTracker = field(default_factory=BugTracker)

    def summary_table(self) -> Dict:
        return self.tracker.summary_table()

    def location_table(self) -> Dict:
        return self.tracker.location_table()


class Campaign:
    """Run Gauntlet end to end over randomly generated programs."""

    def __init__(self, config: Optional[CampaignConfig] = None) -> None:
        self.config = config or CampaignConfig()
        generator_config = self.config.generator or GeneratorConfig(seed=self.config.seed)
        self.generator = RandomProgramGenerator(generator_config)
        self.validator = TranslationValidator()
        #: Symbolic test cases are a function of the *input* program alone
        #: (the oracle never sees the backend), so they are shared between
        #: platforms and across the per-defect detection matrix, keyed by
        #: emitted source.  ``None`` records an oracle failure.
        self._testgen_cache: Dict[str, Optional[list]] = {}

    # ------------------------------------------------------------------
    # Full campaign
    # ------------------------------------------------------------------

    def run(self) -> CampaignStatistics:
        statistics = CampaignStatistics()
        enabled = set(self.config.enabled_bugs)
        for _ in range(self.config.programs):
            program = self.generator.generate()
            statistics.programs_generated += 1
            self._test_program(program, enabled, statistics)
        return statistics

    def _test_program(
        self, program: ast.Program, enabled: set, statistics: CampaignStatistics
    ) -> None:
        source = emit_program(program)

        # --- P4C: crash detection + translation validation -------------------
        if "p4c" in self.config.platforms:
            p4c_bugs = {
                bug_id
                for bug_id in enabled
                if BUG_CATALOG[bug_id].location != LOCATION_BACKEND
            }
            options = CompilerOptions(enabled_bugs=p4c_bugs)
            result = P4Compiler(options).compile(program.clone())
            if result.rejected:
                statistics.programs_rejected += 1
                return
            crash = classify_compilation(result, platform="p4c")
            if crash is not None:
                statistics.crash_findings += 1
                self._file_crash(crash, source, statistics, enabled)
            else:
                report = self.validator.validate_compilation(result)
                if report.outcome == ValidationOutcome.ORACLE_ERROR:
                    statistics.oracle_errors += 1
                elif report.outcome == ValidationOutcome.INVALID_TRANSFORMATION:
                    statistics.semantic_findings += 1
                    self._file_semantic(
                        platform="p4c",
                        pass_name=report.invalid_pass or "ToP4",
                        description=report.detail,
                        source=source,
                        witness={},
                        statistics=statistics,
                        enabled=enabled,
                        kind=BugKind.INVALID_TRANSFORMATION,
                    )
                elif report.outcome == ValidationOutcome.SEMANTIC_BUG:
                    statistics.semantic_findings += 1
                    divergence = report.divergences[0]
                    self._file_semantic(
                        platform="p4c",
                        pass_name=divergence.pass_name,
                        description=(
                            f"pass {divergence.pass_name} changed {divergence.output_path} "
                            f"in block {divergence.block}"
                        ),
                        source=source,
                        witness=divergence.witness,
                        statistics=statistics,
                        enabled=enabled,
                    )

        # --- Back ends: crash detection + packet tests ------------------------
        for platform, target_cls, runner_cls, test_cls in (
            ("bmv2", Bmv2Target, StfRunner, StfTest),
            ("tofino", TofinoTarget, PtfRunner, PtfTest),
        ):
            if platform not in self.config.platforms:
                continue
            platform_bugs = {
                bug_id
                for bug_id in enabled
                if BUG_CATALOG[bug_id].platform in (platform,)
            }
            target = target_cls(CompilerOptions(enabled_bugs=platform_bugs, target=platform))
            try:
                executable = target.compile(program.clone())
            except CompilerCrash as crash_exc:
                statistics.crash_findings += 1
                self._file_crash(
                    crash_from_exception(crash_exc, platform), source, statistics, enabled
                )
                continue
            except CompilerError:
                statistics.programs_rejected += 1
                continue
            mismatch = self._packet_test(
                program, executable, runner_cls, test_cls, source=source
            )
            if mismatch is not None:
                statistics.semantic_findings += 1
                self._file_semantic(
                    platform=platform,
                    pass_name="backend",
                    description=mismatch,
                    source=source,
                    witness={},
                    statistics=statistics,
                    enabled=enabled,
                )

    def _packet_test(
        self, program, executable, runner_cls, test_cls, source: Optional[str] = None
    ) -> Optional[str]:
        if source is None:
            source = emit_program(program)
        if source in self._testgen_cache:
            tests = self._testgen_cache[source]
            if tests is None:
                return None
        else:
            try:
                generator = SymbolicTestGenerator(
                    program, max_tests=self.config.max_tests_per_program
                )
                tests = generator.generate()
            except InterpreterError:
                self._testgen_cache[source] = None
                return None
            self._testgen_cache[source] = tests
        runner = runner_cls(executable)
        for generated in tests:
            packet = generated.build_packet(program)
            test = test_cls(
                name=generated.name,
                input_packet=packet,
                expected=generated.expected,
                entries=generated.entries,
                ignore_paths=generated.ignore_paths,
            )
            result = runner.run_test(test)
            if not result.passed:
                detail = result.error or str(result.mismatches)
                return f"packet test {generated.name} failed: {detail}"
        return None

    # ------------------------------------------------------------------
    # Filing helpers
    # ------------------------------------------------------------------

    def _attribute(
        self, enabled: Iterable[str], pass_name: str, kind: BugKind, platform: str
    ) -> Optional[SeededBug]:
        """Best-effort attribution of a finding to an enabled seeded defect."""

        candidates = [BUG_CATALOG[bug_id] for bug_id in enabled]
        expected_kind = KIND_CRASH if kind == BugKind.CRASH else "semantic"
        for bug in candidates:
            if bug.pass_name == pass_name and bug.kind == expected_kind:
                return bug
        for bug in candidates:
            if bug.platform == platform and bug.kind == expected_kind:
                return bug
        return None

    def _file_crash(self, crash, source: str, statistics: CampaignStatistics, enabled) -> None:
        seeded = self._attribute(enabled, crash.pass_name, BugKind.CRASH, crash.platform)
        identifier = (
            f"{crash.platform}:{seeded.bug_id}" if seeded else crash.dedup_key
        )
        location = (
            _LOCATION_MAP[seeded.location]
            if seeded
            else _PASS_LOCATIONS.get(crash.pass_name, BugLocation.BACK_END)
        )
        report = BugReport(
            identifier=identifier,
            kind=BugKind.CRASH,
            platform=crash.platform,
            location=location,
            pass_name=crash.pass_name,
            description=crash.message,
            status=BugStatus.CONFIRMED,
            trigger_source=source,
            seeded_bug_id=seeded.bug_id if seeded else None,
        )
        statistics.tracker.file(report)

    def _file_semantic(
        self,
        platform: str,
        pass_name: str,
        description: str,
        source: str,
        witness: Dict[str, object],
        statistics: CampaignStatistics,
        enabled,
        kind: BugKind = BugKind.SEMANTIC,
    ) -> None:
        seeded = self._attribute(enabled, pass_name, BugKind.SEMANTIC, platform)
        identifier = (
            f"{platform}:{seeded.bug_id}" if seeded else f"{platform}:{kind.value}:{pass_name}"
        )
        location = (
            _LOCATION_MAP[seeded.location]
            if seeded
            else _PASS_LOCATIONS.get(pass_name, BugLocation.BACK_END)
        )
        report = BugReport(
            identifier=identifier,
            kind=kind,
            platform=platform,
            location=location,
            pass_name=pass_name,
            description=description,
            status=BugStatus.CONFIRMED,
            trigger_source=source,
            witness=witness,
            seeded_bug_id=seeded.bug_id if seeded else None,
        )
        statistics.tracker.file(report)

    # ------------------------------------------------------------------
    # Per-defect detection matrix
    # ------------------------------------------------------------------

    def run_detection_matrix(
        self,
        bug_ids: Optional[Sequence[str]] = None,
        programs_per_bug: int = 20,
    ) -> List[DetectionRecord]:
        """For each seeded defect, check whether Gauntlet detects it."""

        records: List[DetectionRecord] = []
        targets = bug_ids if bug_ids is not None else list(BUG_CATALOG)
        for bug_id in targets:
            bug = BUG_CATALOG[bug_id]
            records.append(self._detect_single(bug, programs_per_bug))
        return records

    def _detect_single(self, bug: SeededBug, programs_per_bug: int) -> DetectionRecord:
        generator = RandomProgramGenerator(
            self.config.generator or GeneratorConfig(seed=self.config.seed)
        )
        for attempt in range(1, programs_per_bug + 1):
            program = generator.generate()
            detected, technique = self._try_detect(bug, program)
            if detected:
                return DetectionRecord(bug, True, technique, attempt)
        return DetectionRecord(bug, False, "", programs_per_bug)

    def _try_detect(self, bug: SeededBug, program: ast.Program) -> tuple:
        options = CompilerOptions(enabled_bugs={bug.bug_id})
        if bug.location != LOCATION_BACKEND:
            result = P4Compiler(options).compile(program.clone())
            if result.rejected:
                return False, ""
            if result.crashed:
                return True, "crash"
            report = self.validator.validate_compilation(result)
            if report.outcome in (
                ValidationOutcome.SEMANTIC_BUG,
                ValidationOutcome.INVALID_TRANSFORMATION,
            ):
                return True, "translation_validation"
            return False, ""

        target_cls = Bmv2Target if bug.platform == "bmv2" else TofinoTarget
        runner_cls = StfRunner if bug.platform == "bmv2" else PtfRunner
        test_cls = StfTest if bug.platform == "bmv2" else PtfTest
        target = target_cls(options)
        try:
            executable = target.compile(program.clone())
        except CompilerCrash:
            return True, "crash"
        except CompilerError:
            return False, ""
        mismatch = self._packet_test(program, executable, runner_cls, test_cls)
        if mismatch is not None:
            return True, "symbolic_execution"
        return False, ""
