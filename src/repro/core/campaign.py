"""Bug-finding campaign orchestration (paper §7 methodology).

Two modes are provided:

* :meth:`Campaign.run` -- the "weekly batch" workflow: generate N random
  programs, compile them for each platform with a given set of seeded
  defects enabled, and collect deduplicated bug reports using all three
  techniques (crash detection, translation validation, symbolic-execution
  packet tests).
* :meth:`Campaign.run_detection_matrix` -- the reproduction-oriented view:
  for every seeded defect, run a small campaign with only that defect
  enabled and record whether Gauntlet detects it and with which technique.
  The Table 2/3 benchmarks are built from this matrix.

Since the staged-engine refactor this module is a thin facade: the actual
pipeline lives in :mod:`repro.core.engine`, which decomposes the campaign
into ``(program_index, platform)`` work units, shards them across worker
processes when ``CampaignConfig.jobs > 1``, persists every unit outcome to
a JSONL artifact store when ``CampaignConfig.artifact_path`` is set (so an
interrupted campaign resumes where it stopped), and merges results
deterministically — a fixed seed files byte-identical bug reports whether
the campaign ran on one core or eight.

Two behavioural notes relative to the historical serial loop:

* program corpora are sharded deterministically — program ``i`` depends
  only on ``(seed, i)``, not on how many programs were generated before —
  so serial and parallel runs see the same programs, and
* a program rejected by p4c still gets compiled and packet-tested on the
  back-end platforms (rejection is per-platform; the back ends compile
  with a different defect set, so a front-end rejection says nothing
  about them).  ``programs_rejected`` therefore counts *unit* rejections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.engine import (
    CampaignEngine,
    CampaignSpec,
    CampaignStatistics,
    DetectionRecord,
)
from repro.core.generator import GeneratorConfig

__all__ = [
    "Campaign",
    "CampaignConfig",
    "CampaignStatistics",
    "DetectionRecord",
]


@dataclass
class CampaignConfig:
    """How many programs to generate and which defects to enable."""

    programs: int = 25
    seed: int = 0
    enabled_bugs: Sequence[str] = ()
    max_tests_per_program: int = 4
    #: Packets per §6 test sequence.  Stateful programs are replayed as
    #: multi-packet sequences against one persistent switch state; stateless
    #: programs always collapse to single-packet tests, so the default costs
    #: nothing on a register-free corpus.
    sequence_length: int = 3
    platforms: Sequence[str] = ("p4c", "bmv2", "tofino")
    generator: Optional[GeneratorConfig] = None
    #: Worker processes to shard ``(program, platform)`` units across.
    #: ``1`` runs everything in-process (no pool).
    jobs: int = 1
    #: JSONL artifact store path.  When set, every finished unit is
    #: appended there and a re-run with the same config resumes from the
    #: completed units instead of recomputing them.
    artifact_path: Optional[str] = None
    #: Triage the findings: after the merge, shrink every deduplicated
    #: report's trigger program with the delta-debugging reducer (the
    #: reduced program still fails the report's original oracle) and
    #: localize the defect to a compiler pass.  Triage units shard across
    #: the same worker pool and resume from the same artifact store.
    reduce: bool = False
    #: Round budget per reduction (each round cycles every transformation
    #: class to a fixpoint check).
    reduce_rounds: int = 8
    #: Run the campaign on a coordinator/worker fleet instead of the fork
    #: pool: that many worker processes are spawned locally and lease unit
    #: ranges from an in-process coordinator over TCP.  Overrides ``jobs``.
    distributed: int = 0
    #: Serve-only deployment: bind the coordinator on this ``host:port``
    #: and wait for externally started workers (``bug_campaign.py
    #: --worker``) to drain the campaign.  Overrides ``distributed``.
    serve: Optional[str] = None
    #: Feedback-directed generation: split the program budget into
    #: ``schedule_rounds`` rounds and let the coverage bandit
    #: (:mod:`repro.core.schedule`) pick each round's generator knob arm.
    #: Off by default — the static corpus stays byte-identical.
    schedule: bool = False
    schedule_rounds: int = 4


class Campaign:
    """Run Gauntlet end to end over randomly generated programs."""

    def __init__(self, config: Optional[CampaignConfig] = None) -> None:
        self.config = config or CampaignConfig()

    def _spec(self) -> CampaignSpec:
        config = self.config
        generator = config.generator or GeneratorConfig(seed=config.seed)
        return CampaignSpec(
            programs=config.programs,
            generator=generator,
            enabled_bugs=tuple(config.enabled_bugs),
            platforms=tuple(config.platforms),
            max_tests=config.max_tests_per_program,
            sequence_length=config.sequence_length,
            jobs=config.jobs,
            artifact_path=config.artifact_path,
            reduce=config.reduce,
            reduce_rounds=config.reduce_rounds,
            distributed=config.distributed,
            serve=config.serve,
            schedule=config.schedule,
            schedule_rounds=config.schedule_rounds,
        )

    # ------------------------------------------------------------------
    # Full campaign
    # ------------------------------------------------------------------

    def run(self) -> CampaignStatistics:
        return CampaignEngine(self._spec()).run()

    # ------------------------------------------------------------------
    # Per-defect detection matrix
    # ------------------------------------------------------------------

    def run_detection_matrix(
        self,
        bug_ids: Optional[Sequence[str]] = None,
        programs_per_bug: int = 20,
        schedule: bool = False,
    ) -> List[DetectionRecord]:
        """For each seeded defect, check whether Gauntlet detects it.

        ``schedule=True`` steers each defect with the profile-calibrated
        knob arm from :mod:`repro.core.schedule` (margin-guarded; falls
        back to the static steering table per defect).
        """

        return CampaignEngine(self._spec()).run_detection_matrix(
            bug_ids=bug_ids, programs_per_bug=programs_per_bug, schedule=schedule
        )
