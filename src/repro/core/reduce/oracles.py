"""Oracle-faithful predicates: is the *original* bug still present?

A reduction is only useful if the shrunken program still triggers the bug
the finding recorded — not merely *a* bug.  Each builder here closes over
the identity the campaign's oracles assigned to the finding:

* crash bugs       — the crash **signature** must match (the paper's §4
  dedup key), on the same platform, with the same enabled defects;
* invalid passes   — the same pass must emit a non-reparsing program;
* semantic bugs    — translation validation must report its first
  divergence in the **same defective pass**;
* black-box bugs   — the symbolic packet tests (regenerated for the
  candidate) must still produce a mismatch on the same back end.

Predicates never raise: any infrastructure failure while checking a
candidate reads as "the bug is gone", so the reducer keeps the statement
and moves on.  Compilation always works on a clone — the reducer owns the
working tree and keeps mutating it between calls.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from repro.compiler import CompilerOptions, compile_prefix
from repro.compiler.bugs import BUG_CATALOG, LOCATION_BACKEND
from repro.compiler.errors import CompilerCrash, CompilerError
from repro.core.crash import crash_from_exception
from repro.core.testgen import DEFAULT_SEQUENCE_LENGTH, cached_sequences
from repro.core.validation import TranslationValidator, ValidationOutcome
from repro.p4 import ast, emit_program
from repro.targets import BACKEND_REGISTRY

from repro.core.engine.units import (
    FINDING_CRASH,
    FINDING_INVALID,
    FindingRecord,
)
from repro.core.reduce.reducer import Predicate

#: Monotone replay tallies (merged across workers like the cache stats):
#: how many §6 sequences and individual packets the campaign actually
#: drove through back-end executables.  ``sequences/sec`` in ``make
#: bench-stateful`` is derived from these.
_REPLAY_STATS = {"sequences_replayed": 0, "packets_replayed": 0}


def replay_stats() -> dict:
    """Snapshot of the process-wide sequence-replay counters."""

    return dict(_REPLAY_STATS)


def p4c_bug_set(enabled_bugs: Iterable[str]) -> Set[str]:
    """The open-toolchain share of the campaign's enabled defects."""

    return {
        bug_id
        for bug_id in enabled_bugs
        if BUG_CATALOG[bug_id].location != LOCATION_BACKEND
    }


def backend_bug_set(enabled_bugs: Iterable[str], platform: str) -> Set[str]:
    """The enabled defects living in one closed back end."""

    return {
        bug_id
        for bug_id in enabled_bugs
        if BUG_CATALOG[bug_id].platform == platform
    }


def packet_mismatch(
    program: ast.Program,
    source: str,
    executable,
    spec,
    max_tests: int,
    sequence_length: int = DEFAULT_SEQUENCE_LENGTH,
) -> Optional[str]:
    """Replay the symbolic test sequences against a compiled executable.

    Returns a human-readable mismatch description, or ``None`` when every
    test passes (or the oracle could not produce tests for this program).
    This is the §6 oracle shared by the campaign's backend stage, the
    per-defect bisection and the triage predicates — every consumer replays
    the *full* sequence: state is reset once per sequence, the packets run
    in order against the live switch state, and after the last packet the
    final ``$state.*`` cells are compared too.  Stateless programs collapse
    to single-packet sequences, so their behaviour (and their cached tests)
    is unchanged.
    """

    sequences = cached_sequences(program, source, max_tests, sequence_length)
    if sequences is None:
        return None
    runner = spec.runner_cls(executable)
    for sequence in sequences:
        _REPLAY_STATS["sequences_replayed"] += 1
        reset = getattr(executable, "reset_state", None)
        if reset is not None:
            reset()
        for generated in sequence.packets:
            _REPLAY_STATS["packets_replayed"] += 1
            packet = generated.build_packet(program)
            test = spec.test_cls(
                name=generated.name,
                input_packet=packet,
                expected=generated.expected,
                entries=sequence.entries,
                ignore_paths=generated.ignore_paths,
            )
            result = runner.run_test(test)
            if not result.passed:
                detail = result.error or str(result.mismatches)
                return f"packet test {generated.name} failed: {detail}"
        if sequence.expected_state:
            state_of = getattr(executable, "switch_state", None)
            if state_of is None:
                continue  # backend claims no stateful support; nothing to diff
            observed = state_of().observable()
            for path, expected_value in sorted(sequence.expected_state.items()):
                if observed.get(path) != expected_value:
                    return (
                        f"sequence {sequence.name}: final state diverged at "
                        f"{path}: expected {expected_value}, observed "
                        f"{observed.get(path)}"
                    )
    return None


# ----------------------------------------------------------------------
# Predicate builders
# ----------------------------------------------------------------------

def _p4c_crash_predicate(signature: str, enabled_bugs: Iterable[str]) -> Predicate:
    bugs = p4c_bug_set(enabled_bugs)

    def still_fails(candidate: ast.Program) -> bool:
        options = CompilerOptions(enabled_bugs=set(bugs))
        result = compile_prefix(candidate, emit_program(candidate), options)
        return result.crashed and result.crash.signature == signature

    return still_fails


def _backend_crash_predicate(
    platform: str, signature: str, enabled_bugs: Iterable[str]
) -> Predicate:
    spec = BACKEND_REGISTRY[platform]
    bugs = backend_bug_set(enabled_bugs, platform)

    def still_fails(candidate: ast.Program) -> bool:
        options = CompilerOptions(enabled_bugs=set(bugs), target=platform)
        try:
            result = compile_prefix(candidate, emit_program(candidate), options)
            spec.target_cls(options).link(result)
        except CompilerCrash as crash_exc:
            return crash_from_exception(crash_exc, platform).signature == signature
        except CompilerError:
            return False
        return False

    return still_fails


def _invalid_predicate(pass_name: str, enabled_bugs: Iterable[str]) -> Predicate:
    bugs = p4c_bug_set(enabled_bugs)

    def still_fails(candidate: ast.Program) -> bool:
        options = CompilerOptions(enabled_bugs=set(bugs))
        result = compile_prefix(candidate, emit_program(candidate), options)
        if not result.succeeded:
            return False
        report = TranslationValidator().validate_compilation(result)
        return (
            report.outcome == ValidationOutcome.INVALID_TRANSFORMATION
            and report.invalid_pass == pass_name
        )

    return still_fails


def _divergence_predicate(pass_name: str, enabled_bugs: Iterable[str]) -> Predicate:
    bugs = p4c_bug_set(enabled_bugs)

    def still_fails(candidate: ast.Program) -> bool:
        options = CompilerOptions(enabled_bugs=set(bugs))
        result = compile_prefix(candidate, emit_program(candidate), options)
        if not result.succeeded:
            return False
        report = TranslationValidator().validate_compilation(result)
        if report.outcome != ValidationOutcome.SEMANTIC_BUG or not report.divergences:
            return False
        # The *defective pass* is the bug's identity; the before-pass of
        # the snapshot pair may legitimately shift as earlier passes stop
        # changing the shrinking program.
        return report.divergences[0].pass_name == pass_name

    return still_fails


def _packet_predicate(
    platform: str,
    enabled_bugs: Iterable[str],
    max_tests: int,
    attributed_bugs: Iterable[str] = (),
    sequence_length: int = DEFAULT_SEQUENCE_LENGTH,
) -> Predicate:
    spec = BACKEND_REGISTRY[platform]
    bugs = backend_bug_set(enabled_bugs, platform)
    # When the finding was bisected down to individual defects, reduce
    # against exactly those: a candidate that only still trips some *other*
    # same-platform defect is a different bug, and accepting it would walk
    # the reduction away from the report being triaged.
    attributed = backend_bug_set(attributed_bugs, platform)
    if attributed:
        bugs = attributed

    def still_fails(candidate: ast.Program) -> bool:
        options = CompilerOptions(enabled_bugs=set(bugs), target=platform)
        source = emit_program(candidate)
        try:
            result = compile_prefix(candidate, source, options)
            executable = spec.target_cls(options).link(result)
        except (CompilerCrash, CompilerError):
            return False
        return (
            packet_mismatch(
                candidate, source, executable, spec, max_tests, sequence_length
            )
            is not None
        )

    return still_fails


def build_predicate(
    finding: FindingRecord,
    platform: str,
    enabled_bugs: Iterable[str],
    max_tests: int = 4,
    sequence_length: int = DEFAULT_SEQUENCE_LENGTH,
) -> Predicate:
    """The ``still_fails`` predicate matching one finding's original oracle."""

    if finding.kind == FINDING_CRASH:
        if platform == "p4c":
            return _p4c_crash_predicate(finding.signature, enabled_bugs)
        return _backend_crash_predicate(platform, finding.signature, enabled_bugs)
    if finding.kind == FINDING_INVALID:
        return _invalid_predicate(finding.pass_name, enabled_bugs)
    if platform == "p4c":
        return _divergence_predicate(finding.pass_name, enabled_bugs)
    return _packet_predicate(
        platform, enabled_bugs, max_tests, finding.attributed_bugs, sequence_length
    )
