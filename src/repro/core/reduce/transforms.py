"""Transformation classes for the reducer.

Every transformation has the signature ``transform(program, accept) ->
bool``: it mutates ``program`` in place, calls ``accept(program)`` after
each candidate edit, keeps the edit when the oracle accepts it and undoes
it otherwise, and returns whether anything was kept.  Edits are enumerated
in program order with no randomness, so a reduction is a deterministic
function of (program, oracle).

The classes go beyond plain statement deletion — the paper's manual
pruning workflow also strips tables, actions, parser states and header
fields, and each of those needs its own edit shape:

* ``prune_declarations``    — drop whole top-level declarations,
* ``prune_control_locals``  — drop control-local tables/actions/variables,
* ``delete_statements``     — ddmin-style chunked statement deletion,
  recursing into ``if`` branches and nested blocks,
* ``prune_table_properties``— drop table keys, action refs and the
  default action,
* ``shrink_parsers``        — drop parser states, flatten ``select``
  transitions, prune select cases,
* ``simplify_expressions``  — hoist operands over their operators and try
  literal replacements, walking the live tree top-down,
* ``shrink_stacks``         — shrink header-stack sizes towards one element,
* ``shrink_registers``      — shrink register/counter bank sizes towards
  one cell (the oracle replays the finding's full packet sequence),
* ``shrink_headers``        — drop header/struct fields (including whole
  stack fields).

A structurally invalid edit (dangling reference, type mismatch) is simply
rejected by the oracle's typecheck gate — transformations never reason
about uses, which keeps each edit shape a few lines.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Tuple

from repro.p4 import ast
from repro.p4.types import HeaderStackType

Accept = Callable[[ast.Program], bool]


# ----------------------------------------------------------------------
# Shared list shrinkers
# ----------------------------------------------------------------------

def _shrink_plain_list(program: ast.Program, items: List, accept: Accept) -> bool:
    """Try to delete each item of ``items`` in turn (no recursion)."""

    changed = False
    index = 0
    while index < len(items):
        removed = items[index]
        del items[index]
        if accept(program):
            changed = True
            continue  # keep the deletion; the next item shifted into index
        items.insert(index, removed)
        index += 1
    return changed


def _shrink_statement_list(
    program: ast.Program, statements: List[ast.Statement], accept: Accept
) -> bool:
    """Chunked (ddmin-style) deletion over one statement list.

    Large contiguous chunks go first — most of a random program is
    irrelevant to any one bug, so halving passes remove it in O(log n)
    oracle calls instead of one call per statement — then a singleton pass
    recurses into the compound statements that had to stay.
    """

    changed = False
    chunk = len(statements) // 2
    while chunk >= 2:
        index = 0
        while index < len(statements):
            removed = statements[index : index + chunk]
            del statements[index : index + chunk]
            if accept(program):
                changed = True
                continue
            # Re-insert, don't overwrite: after the deletion the following
            # statements slid into [index, index + chunk), and a slice
            # *assignment* there would silently drop them — an edit the
            # oracle never approved.
            statements[index:index] = removed
            index += chunk
        chunk //= 2
    index = 0
    while index < len(statements):
        removed = statements[index]
        del statements[index]
        if accept(program):
            changed = True
            continue
        statements.insert(index, removed)
        if isinstance(removed, ast.IfStatement):
            changed |= _shrink_statement_list(
                program, removed.then_branch.statements, accept
            )
            if removed.else_branch is not None:
                changed |= _shrink_statement_list(
                    program, removed.else_branch.statements, accept
                )
        elif isinstance(removed, ast.BlockStatement):
            changed |= _shrink_statement_list(program, removed.statements, accept)
        index += 1
    return changed


# ----------------------------------------------------------------------
# Declaration-level pruning
# ----------------------------------------------------------------------

def prune_declarations(program: ast.Program, accept: Accept) -> bool:
    """Try to drop whole top-level declarations (headers, parsers, ...)."""

    return _shrink_plain_list(program, program.declarations, accept)


def prune_control_locals(program: ast.Program, accept: Accept) -> bool:
    """Try to drop control-local declarations (tables, actions, variables)."""

    changed = False
    for control in program.controls():
        changed |= _shrink_plain_list(program, control.locals, accept)
    return changed


def prune_table_properties(program: ast.Program, accept: Accept) -> bool:
    """Shrink tables in place: keys, action refs, the default action."""

    changed = False
    for control in program.controls():
        for table in control.locals:
            if not isinstance(table, ast.TableDeclaration):
                continue
            changed |= _shrink_plain_list(program, table.keys, accept)
            changed |= _shrink_plain_list(program, table.actions, accept)
            if table.default_action is not None:
                saved = table.default_action
                table.default_action = None
                if accept(program):
                    changed = True
                else:
                    table.default_action = saved
    return changed


# ----------------------------------------------------------------------
# Statement deletion
# ----------------------------------------------------------------------

def delete_statements(program: ast.Program, accept: Accept) -> bool:
    """Delete statements from every executable body in the program."""

    changed = False
    for control in program.controls():
        changed |= _shrink_statement_list(program, control.apply.statements, accept)
        for local in control.locals:
            if isinstance(local, ast.ActionDeclaration):
                changed |= _shrink_statement_list(
                    program, local.body.statements, accept
                )
    for function in program.functions():
        changed |= _shrink_statement_list(program, function.body.statements, accept)
    for parser in program.parsers():
        for state in parser.states:
            changed |= _shrink_statement_list(program, state.statements, accept)
    return changed


# ----------------------------------------------------------------------
# Parser shrinking
# ----------------------------------------------------------------------

def shrink_parsers(program: ast.Program, accept: Accept) -> bool:
    """Drop parser states and collapse ``select`` transitions."""

    changed = False
    for parser in program.parsers():
        # States first ("start" must survive: it is the entry point).
        index = 0
        while index < len(parser.states):
            state = parser.states[index]
            if state.name == "start":
                index += 1
                continue
            del parser.states[index]
            if accept(program):
                changed = True
                continue
            parser.states.insert(index, state)
            index += 1
        for state in parser.states:
            changed |= _flatten_select(program, state, accept)
    return changed


def _flatten_select(
    program: ast.Program, state: ast.ParserState, accept: Accept
) -> bool:
    """Replace a ``select`` with a direct transition, or prune its cases."""

    if state.select_expr is None:
        return False
    saved = (state.select_expr, list(state.cases), state.next_state)
    targets: List[str] = []
    for case in saved[1]:
        if case.next_state not in targets:
            targets.append(case.next_state)
    for target in targets:
        state.select_expr = None
        state.cases = []
        state.next_state = target
        if accept(program):
            return True
        state.select_expr, state.cases, state.next_state = (
            saved[0],
            list(saved[1]),
            saved[2],
        )
    return _shrink_plain_list(program, state.cases, accept)


# ----------------------------------------------------------------------
# Expression simplification
# ----------------------------------------------------------------------

def _is_atomic(expr: ast.Expression) -> bool:
    return isinstance(expr, (ast.Constant, ast.BoolLiteral, ast.PathExpression))


def _replacements(expr: ast.Expression) -> Iterator[ast.Expression]:
    """Smaller expressions that could stand in for ``expr``.

    Operand hoisting preserves types most of the time; the literal
    fallbacks rely on the typecheck gate to throw out the wrong-typed one.
    Method calls are never rewritten — ``isValid()``/``apply()`` have
    effects the oracle may depend on; deleting the enclosing statement is
    the only safe shrink for those.
    """

    if isinstance(expr, ast.MethodCallExpression):
        return
    if isinstance(expr, ast.BinaryOp):
        yield expr.left
        yield expr.right
    elif isinstance(expr, ast.UnaryOp):
        yield expr.expr
    elif isinstance(expr, ast.Ternary):
        yield expr.then
        yield expr.orelse
    elif isinstance(expr, (ast.Cast, ast.Slice)):
        yield expr.expr
    yield ast.Constant(0)
    yield ast.BoolLiteral(False)


def _shrink_slot(program: ast.Program, get, put, accept: Accept) -> bool:
    """Repeatedly shrink the expression behind one (get, put) slot."""

    changed = False
    while True:
        expr = get()
        if expr is None or _is_atomic(expr):
            return changed
        for candidate in _replacements(expr):
            put(candidate)
            if accept(program):
                changed = True
                break  # restart from the (smaller) accepted expression
            put(expr)
        else:
            return changed


def _simplify_attr(
    program: ast.Program, holder: ast.Node, attr: str, accept: Accept
) -> bool:
    return _shrink_slot(
        program,
        lambda: getattr(holder, attr),
        lambda expr: setattr(holder, attr, expr),
        accept,
    )


def _simplify_statements(
    program: ast.Program, statements: List[ast.Statement], accept: Accept
) -> bool:
    """Simplify expression slots of a statement list, walking the live tree."""

    changed = False
    for statement in statements:
        if isinstance(statement, ast.AssignmentStatement):
            changed |= _simplify_attr(program, statement, "rhs", accept)
        elif isinstance(statement, ast.IfStatement):
            changed |= _simplify_attr(program, statement, "cond", accept)
            changed |= _simplify_statements(
                program, statement.then_branch.statements, accept
            )
            if statement.else_branch is not None:
                changed |= _simplify_statements(
                    program, statement.else_branch.statements, accept
                )
        elif isinstance(statement, ast.BlockStatement):
            changed |= _simplify_statements(program, statement.statements, accept)
        elif isinstance(statement, ast.VariableDeclaration):
            changed |= _simplify_attr(program, statement, "initializer", accept)
        elif isinstance(statement, ast.ReturnStatement):
            changed |= _simplify_attr(program, statement, "value", accept)
        elif isinstance(statement, ast.MethodCallStatement):
            call = statement.call
            for index in range(len(call.args)):
                changed |= _simplify_index(program, call.args, index, accept)
    return changed


def _simplify_index(
    program: ast.Program, items: List[ast.Expression], index: int, accept: Accept
) -> bool:
    return _shrink_slot(
        program,
        lambda: items[index],
        lambda expr: items.__setitem__(index, expr),
        accept,
    )


def simplify_expressions(program: ast.Program, accept: Accept) -> bool:
    """Shrink expressions everywhere statements or tables hold them."""

    changed = False
    for control in program.controls():
        changed |= _simplify_statements(program, control.apply.statements, accept)
        for local in control.locals:
            if isinstance(local, ast.ActionDeclaration):
                changed |= _simplify_statements(
                    program, local.body.statements, accept
                )
            elif isinstance(local, ast.VariableDeclaration):
                changed |= _simplify_attr(program, local, "initializer", accept)
            elif isinstance(local, ast.TableDeclaration):
                for key in local.keys:
                    changed |= _simplify_attr(program, key, "expr", accept)
    for function in program.functions():
        changed |= _simplify_statements(program, function.body.statements, accept)
    for parser in program.parsers():
        for state in parser.states:
            changed |= _simplify_statements(program, state.statements, accept)
            changed |= _simplify_attr(program, state, "select_expr", accept)
    return changed


# ----------------------------------------------------------------------
# Header shrinking
# ----------------------------------------------------------------------

def shrink_headers(program: ast.Program, accept: Accept) -> bool:
    """Drop fields from header and struct declarations."""

    changed = False
    for declaration in program.declarations:
        if isinstance(declaration, (ast.HeaderDeclaration, ast.StructDeclaration)):
            changed |= _shrink_plain_list(program, declaration.fields, accept)
    return changed


# ----------------------------------------------------------------------
# Register/counter shrinking
# ----------------------------------------------------------------------

def shrink_registers(program: ast.Program, accept: Accept) -> bool:
    """Shrink register and counter bank sizes towards one cell.

    Same smallest-first ladder as :func:`shrink_stacks` (1, then half,
    then size - 1): most stateful triggers only ever touch one cell, so
    the bank usually collapses in a single oracle call.  The oracle behind
    ``accept`` replays the finding's full multi-packet sequence, so an
    aliasing change introduced by the shrink (two indices wrapping onto
    one cell) is kept only when the bug still reproduces across packets.
    Dropping an unused bank entirely is :func:`prune_control_locals`' job.
    """

    changed = False
    for control in program.controls():
        for declaration in control.locals:
            if not isinstance(
                declaration, (ast.RegisterDeclaration, ast.CounterDeclaration)
            ):
                continue
            while declaration.size > 1:
                for new_size in sorted(
                    {1, declaration.size // 2, declaration.size - 1}
                ):
                    if not 1 <= new_size < declaration.size:
                        continue
                    old_size = declaration.size
                    declaration.size = new_size
                    if accept(program):
                        changed = True
                        break
                    declaration.size = old_size
                else:
                    break
    return changed


# ----------------------------------------------------------------------
# Header-stack shrinking
# ----------------------------------------------------------------------

def shrink_stacks(program: ast.Program, accept: Accept) -> bool:
    """Shrink header-stack sizes towards one element.

    Candidate sizes go smallest-first (1, then half, then size - 1), so a
    bug that fits a single element collapses in one oracle call.  Edits
    that leave an out-of-range constant index (or a push/pop the smaller
    capacity can no longer satisfy the typing rules for) are rejected by
    the oracle's typecheck gate; a later statement-deletion round usually
    removes the offending access and lets the shrink land.  Dropping the
    stack field entirely is :func:`shrink_headers`' job.
    """

    changed = False
    for declaration in program.declarations:
        if not isinstance(declaration, ast.StructDeclaration):
            continue
        for index in range(len(declaration.fields)):
            name, field_type = declaration.fields[index]
            if not isinstance(field_type, HeaderStackType):
                continue
            while field_type.size > 1:
                for new_size in sorted({1, field_type.size // 2, field_type.size - 1}):
                    if not 1 <= new_size < field_type.size:
                        continue
                    declaration.fields[index] = (
                        name, HeaderStackType(field_type.element, new_size)
                    )
                    if accept(program):
                        changed = True
                        field_type = declaration.fields[index][1]
                        break
                    declaration.fields[index] = (name, field_type)
                else:
                    break
    return changed


#: The statement-removing pipeline, coarsest edits first: whole
#: declarations, then locals, then statements, then the fine-grained
#: shapes.  Ordering only affects how fast the fixpoint is reached, not
#: where it lands — the round loop in the reducer re-runs the full list
#: until nothing changes.
PRIMARY_TRANSFORMS: Tuple[Callable[[ast.Program, Accept], bool], ...] = (
    prune_declarations,
    prune_control_locals,
    delete_statements,
    shrink_parsers,
    simplify_expressions,
    shrink_stacks,
    shrink_registers,
)

#: Cosmetic shrinkers that almost never remove *statements* (table
#: property lists and header field widths are not counted by
#: :func:`~repro.core.reduce.reducer.program_size`) yet each burn dozens
#: of oracle calls per round.  The reducer holds them back until the
#: primary pipeline reaches its fixpoint, so their budget is spent once
#: per reduction instead of once per round.
POLISH_TRANSFORMS: Tuple[Callable[[ast.Program, Accept], bool], ...] = (
    prune_table_properties,
    shrink_headers,
)

#: The full pipeline in legacy order — callers passing an explicit
#: ``transforms`` list to :func:`~repro.core.reduce.reducer.reduce_program`
#: get exactly this flat per-round behaviour.
DEFAULT_TRANSFORMS: Tuple[Callable[[ast.Program, Accept], bool], ...] = (
    prune_declarations,
    prune_control_locals,
    delete_statements,
    prune_table_properties,
    shrink_parsers,
    simplify_expressions,
    shrink_stacks,
    shrink_registers,
    shrink_headers,
)
