"""Pass-level bug localization.

The translation-validation design already pins a semantic bug to the pass
pair whose snapshots first disagree (paper §5); this module extracts that
signal and adds the analogue for crash bugs: a binary search over pass
pipeline *prefixes*.  A compilation crash is prefix-monotone — the
pipeline runs sequentially and stops at the crash, so every prefix that
includes the crashing pass crashes with the same signature and no shorter
prefix does — which makes the bisection sound and costs O(log n) compiles
instead of one per pass.

Black-box back ends cannot be localized past the platform boundary: for
backend crashes the crash exception already names the proprietary pass,
and for packet-test mismatches the defect is attributed to ``backend``,
exactly the granularity the paper reports for Tofino findings.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.compiler import CompilerOptions, P4Compiler
from repro.compiler.pass_manager import PassManager
from repro.core.validation import TranslationValidator, ValidationOutcome
from repro.p4 import ast

from repro.core.engine.units import FINDING_CRASH, FINDING_INVALID, FindingRecord
from repro.core.reduce.oracles import p4c_bug_set

#: ``(localized pass, optional (before, after) snapshot/pipeline pair)``.
Localization = Tuple[str, Optional[Tuple[str, str]]]


def bisect_crash_pass(
    program: ast.Program, signature: str, enabled_bugs: Iterable[str]
) -> Localization:
    """Find the shortest pipeline prefix that still crashes with ``signature``."""

    bugs = p4c_bug_set(enabled_bugs)

    def crashes(prefix: int) -> bool:
        options = CompilerOptions(enabled_bugs=set(bugs))
        passes = P4Compiler(options).passes()[:prefix]
        result = PassManager(passes, options).run(program.clone())
        return result.crashed and result.crash.signature == signature

    total = len(P4Compiler(CompilerOptions(enabled_bugs=set(bugs))).passes())
    if not crashes(total):
        return "", None
    low, high = 1, total
    while low < high:
        mid = (low + high) // 2
        if crashes(mid):
            high = mid
        else:
            low = mid + 1
    pipeline = P4Compiler(CompilerOptions(enabled_bugs=set(bugs))).passes()
    culprit = pipeline[low - 1].name
    before = pipeline[low - 2].name if low >= 2 else "input"
    return culprit, (before, culprit)


def first_divergence_pair(
    program: ast.Program, enabled_bugs: Iterable[str]
) -> Localization:
    """The first diverging snapshot pair of a semantic p4c finding."""

    options = CompilerOptions(enabled_bugs=p4c_bug_set(enabled_bugs))
    result = P4Compiler(options).compile(program.clone())
    if not result.succeeded:
        return "", None
    report = TranslationValidator().validate_compilation(result)
    if report.outcome != ValidationOutcome.SEMANTIC_BUG or not report.divergences:
        return "", None
    divergence = report.divergences[0]
    return divergence.pass_name, (
        divergence.before_pass or "input",
        divergence.pass_name,
    )


def localize_finding(
    finding: FindingRecord,
    program: ast.Program,
    platform: str,
    enabled_bugs: Iterable[str],
) -> Localization:
    """Localize one (already reduced) finding to a compiler pass.

    Falls back to the pass the original oracle named whenever the bisect /
    revalidation cannot reproduce on this program — a localization must
    never erase the information the campaign already had.
    """

    if platform != "p4c":
        # Closed back end: the crash exception names the proprietary pass;
        # packet mismatches stop at the platform boundary.
        return (finding.pass_name or "backend"), None
    if finding.kind == FINDING_CRASH:
        localized, pair = bisect_crash_pass(program, finding.signature, enabled_bugs)
    elif finding.kind == FINDING_INVALID:
        # The reparse check already names the pass that emitted the broken
        # program; its predecessor snapshot is not tracked for reparses.
        return finding.pass_name, None
    else:
        localized, pair = first_divergence_pair(program, enabled_bugs)
    if not localized:
        return finding.pass_name, None
    return localized, pair
