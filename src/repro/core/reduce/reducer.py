"""The reduction loop: shrink a program while an oracle keeps confirming.

The reducer cycles through the statement-removing transformation classes in
:data:`repro.core.reduce.transforms.PRIMARY_TRANSFORMS` until a full round
changes nothing (or the round budget runs out), then gives the cosmetic
polishers in :data:`~repro.core.reduce.transforms.POLISH_TRANSFORMS` one
single pass over the leftovers — each polish class gated by its recorded
yield in the last ``make bench-reduce`` run (see :data:`POLISH_MIN_YIELD`:
a class that historically keeps almost none of its attempted edits is all
oracle cost and gets skipped).  Transformations mutate the
working program in place and call back into :meth:`ReductionOracle.accepts`
for every candidate; the oracle

1. re-typechecks the candidate (:func:`repro.p4.typecheck.check_program`) —
   an edit that breaks well-formedness is rejected before the bug predicate
   ever sees it, so reduction cannot "confirm" on a program the front end
   would refuse, and
2. runs the caller's ``still_fails`` predicate, treating any exception it
   raises as "the bug is gone" (a reduction step must never abort triage).

Everything here is deterministic: transformations enumerate edits in
program order and the predicate is a pure function of the candidate, so
the same (program, finding) pair reduces to the same result in every
process — which is what lets the engine shard reductions across a pool
and still merge byte-identical reports.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.p4 import ast, emit_program
from repro.p4.typecheck import TypeCheckError, check_program

Predicate = Callable[[ast.Program], bool]

#: Hard ceiling on oracle invocations per reduction, protecting campaign
#: throughput against pathological programs (each attempt can cost a full
#: compile + validate).  Reductions that hit it keep their progress so far.
MAX_ATTEMPTS = 2500

#: Minimum historical yield — kept edits per oracle call — a *polish*
#: transformation must have shown in the last recorded ``make bench-reduce``
#: run for the reducer to spend budget on it.  Polish transforms never
#: remove statements (table properties and header fields are not counted by
#: :func:`program_size`), so their worth is measured by how many of their
#: attempted edits the oracle keeps; a class whose recorded yield drops
#: below this floor is all cost and gets skipped.
POLISH_MIN_YIELD = 0.25

#: Repo-root bench record the polish gate reads its history from.
_BENCH_PATH = os.path.join(
    os.path.dirname(
        os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        )
    ),
    "BENCH_campaign.json",
)

_RECORDED_QUALITY_CACHE: Optional[Dict[str, Dict[str, float]]] = None


def recorded_polish_quality() -> Dict[str, Dict[str, float]]:
    """Per-transform-class stats from the committed bench record.

    Returns ``triage.reduction_quality.per_transform_class`` of
    ``BENCH_campaign.json`` (empty when the file or section is missing —
    no history means no gating).  Cached per process: campaigns fork
    workers from a parent that already paid the read, and the committed
    file is identical for every worker, so the gate cannot introduce
    scheduler dependence.
    """

    global _RECORDED_QUALITY_CACHE
    if _RECORDED_QUALITY_CACHE is None:
        quality: Dict[str, Dict[str, float]] = {}
        try:
            with open(_BENCH_PATH, encoding="utf-8") as handle:
                payload = json.load(handle)
            quality = (
                payload.get("triage", {})
                .get("reduction_quality", {})
                .get("per_transform_class", {})
            )
        except (OSError, ValueError):
            quality = {}
        _RECORDED_QUALITY_CACHE = quality
    return _RECORDED_QUALITY_CACHE


def gate_polish_transforms(
    quality: Optional[Dict[str, Dict[str, float]]],
) -> Tuple[Tuple, List[str]]:
    """Split the polish pipeline into (run these, skipped names) by history.

    A class with no recorded entry (or no recorded oracle calls) runs —
    absence of evidence must not freeze a transform out forever.
    """

    from repro.core.reduce.transforms import POLISH_TRANSFORMS

    if not quality:
        return POLISH_TRANSFORMS, []
    kept = []
    skipped: List[str] = []
    for transform in POLISH_TRANSFORMS:
        entry = quality.get(transform.__name__)
        calls = entry.get("oracle_calls", 0) if entry else 0
        if not calls:
            kept.append(transform)
            continue
        if entry.get("kept_edits", 0) / calls >= POLISH_MIN_YIELD:
            kept.append(transform)
        else:
            skipped.append(transform.__name__)
    return tuple(kept), skipped


class ReductionOracle:
    """Typecheck-gated, exception-safe wrapper around the bug predicate."""

    def __init__(self, still_fails: Predicate, max_attempts: int = MAX_ATTEMPTS) -> None:
        self.still_fails = still_fails
        self.max_attempts = max_attempts
        self.attempts = 0
        self.accepted = 0
        self.typecheck_rejections = 0

    @property
    def exhausted(self) -> bool:
        return self.attempts >= self.max_attempts

    def accepts(self, candidate: ast.Program) -> bool:
        """True when the candidate is well-formed and still trips the bug."""

        if self.exhausted:
            return False
        self.attempts += 1
        try:
            check_program(candidate)
        except TypeCheckError:
            self.typecheck_rejections += 1
            return False
        except Exception:  # noqa: BLE001 - a checker crash is not a confirmation
            self.typecheck_rejections += 1
            return False
        try:
            verdict = bool(self.still_fails(candidate))
        except Exception:  # noqa: BLE001 - predicate errors mean "bug gone"
            return False
        if verdict:
            self.accepted += 1
        return verdict


@dataclass
class ReductionResult:
    """What one reduction produced, plus enough numbers to judge it."""

    program: ast.Program
    source: str
    original_size: int
    reduced_size: int
    rounds: int
    attempts: int
    accepted_edits: int
    #: False when the original program did not satisfy the predicate (the
    #: finding could not be reproduced, so nothing was reduced).
    reproduced: bool = True
    #: Per-transformation-class effort accounting, keyed by the transform
    #: function name: oracle calls spent, edits kept, and statements
    #: removed while that class ran.  This is the raw material for the
    #: reduction-quality metrics ``make bench-reduce`` records -- it shows
    #: which classes buy shrinkage and which mostly burn oracle budget.
    transform_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Polish transformation classes the quality gate skipped this run
    #: (recorded yield below :data:`POLISH_MIN_YIELD`).
    polish_skipped: List[str] = field(default_factory=list)

    @property
    def reduction_ratio(self) -> float:
        """Fraction of statements removed (0.0 when nothing shrank)."""

        if self.original_size <= 0:
            return 0.0
        return 1.0 - (self.reduced_size / self.original_size)


def program_size(program: ast.Program) -> int:
    """Statement count of a program (the paper-style reduction metric).

    Blocks are containers and empty statements are noise, so neither is
    counted; everything else that executes — assignments, calls, branches,
    declarations with initializers, returns, exits, parser-state
    statements — is.
    """

    return sum(
        1
        for node in ast.walk(program)
        if isinstance(node, ast.Statement)
        and not isinstance(node, (ast.BlockStatement, ast.EmptyStatement))
    )


def reduce_program(
    program: ast.Program,
    still_fails: Predicate,
    max_rounds: int = 8,
    transforms: Optional[Sequence] = None,
    max_attempts: int = MAX_ATTEMPTS,
    polish_quality: Optional[Dict[str, Dict[str, float]]] = None,
) -> ReductionResult:
    """Shrink ``program`` while ``still_fails`` keeps returning True.

    The original program is returned unchanged (with ``reproduced=False``)
    when it does not satisfy the predicate — reduction must never drift
    onto a different bug than the one the finding recorded.

    ``polish_quality`` is the per-transform-class history the polish gate
    judges by (``None`` reads the committed bench record; pass ``{}`` to
    disable the gate).  It only applies to the default staged pipeline —
    explicit ``transforms`` lists are the caller's exact contract.
    """

    from repro.core.reduce.transforms import PRIMARY_TRANSFORMS

    if polish_quality is None:
        polish_quality = recorded_polish_quality()
    polish, polish_skipped = gate_polish_transforms(polish_quality)

    original_size = program_size(program)
    oracle = ReductionOracle(still_fails, max_attempts=max_attempts)
    try:
        reproduced = bool(still_fails(program))
    except Exception:  # noqa: BLE001 - an erroring oracle cannot anchor a reduction
        reproduced = False
    if not reproduced:
        return ReductionResult(
            program=program,
            source=emit_program(program),
            original_size=original_size,
            reduced_size=original_size,
            rounds=0,
            attempts=1,
            accepted_edits=0,
            reproduced=False,
        )

    current = program.clone()
    rounds = 0
    transform_stats: Dict[str, Dict[str, int]] = {}
    size_now = program_size(current)

    def run_pipeline(pipeline) -> bool:
        nonlocal size_now
        changed = False
        for transform in pipeline:
            name = getattr(transform, "__name__", str(transform))
            attempts_before = oracle.attempts
            accepted_before = oracle.accepted
            size_before = size_now
            changed |= transform(current, oracle.accepts)
            size_now = program_size(current)
            entry = transform_stats.setdefault(
                name, {"oracle_calls": 0, "kept_edits": 0, "statements_removed": 0}
            )
            entry["oracle_calls"] += oracle.attempts - attempts_before
            entry["kept_edits"] += oracle.accepted - accepted_before
            entry["statements_removed"] += size_before - size_now
            if oracle.exhausted:
                break
        return changed

    # Explicit transform lists run flat, once per round (legacy contract).
    # The default pipeline is staged: the statement-removing transforms
    # iterate to their fixpoint first; the cosmetic polishers — which
    # almost never remove a statement but cost dozens of oracle calls —
    # get exactly ONE pass over the leftovers.  Re-entering the primary
    # loop after a cosmetic edit re-pays a full primary round for nothing
    # (polish edits delete table properties and header fields, not
    # statements), and polishing to ITS fixpoint keeps halving header
    # widths long after the trigger stopped depending on them.
    for _ in range(max_rounds):
        if oracle.exhausted:
            break
        rounds += 1
        if transforms is not None:
            if not run_pipeline(transforms):
                break
        else:
            if not run_pipeline(PRIMARY_TRANSFORMS):
                break
    if transforms is None and polish and not oracle.exhausted and rounds < max_rounds:
        rounds += 1
        run_pipeline(polish)
    return ReductionResult(
        program=current,
        source=emit_program(current),
        original_size=original_size,
        reduced_size=size_now,
        rounds=rounds,
        attempts=oracle.attempts + 1,  # + the initial reproduction check
        accepted_edits=oracle.accepted,
        transform_stats=transform_stats,
        polish_skipped=list(polish_skipped) if transforms is None else [],
    )
