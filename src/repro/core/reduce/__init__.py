"""Test-case reduction and bug localization (the triage subsystem).

Gauntlet files bugs as whole random programs and lists automatic reduction
as future work (paper §8).  This package is that missing back half: it
shrinks a finding's trigger program with multi-pass delta debugging while
an *oracle-faithful* predicate pins the reduction to the original bug, and
it localizes the defect to a compiler pass (pair) before the report is
filed.

Layout:

* :mod:`repro.core.reduce.reducer` — the fixpoint reduction loop.  Every
  candidate is re-typechecked before the oracle predicate runs, so a
  deletion that produces an ill-formed program can never "confirm" the bug.
* :mod:`repro.core.reduce.transforms` — the transformation classes the
  loop cycles through: statement deletion, declaration/control-local and
  table pruning, expression simplification, parser-state and header-field
  shrinking.
* :mod:`repro.core.reduce.oracles` — builds the ``still_fails`` predicate
  from the original :class:`~repro.core.engine.units.FindingRecord`
  (crash-signature match, same-pass divergence, packet-test mismatch).
* :mod:`repro.core.reduce.localize` — pass-pipeline bisection for crash
  bugs and first-diverging-pair extraction for semantic bugs.

The campaign engine runs reductions as a triage *stage*
(:func:`repro.core.engine.stages.run_triage_unit`) on the same executor
and artifact-store machinery as generation units; see
``src/repro/core/README.md``.
"""

from repro.core.reduce.localize import localize_finding
from repro.core.reduce.oracles import build_predicate
from repro.core.reduce.reducer import (
    Predicate,
    ReductionResult,
    program_size,
    reduce_program,
)
from repro.core.reduce.transforms import (
    DEFAULT_TRANSFORMS,
    POLISH_TRANSFORMS,
    PRIMARY_TRANSFORMS,
)

__all__ = [
    "DEFAULT_TRANSFORMS",
    "POLISH_TRANSFORMS",
    "PRIMARY_TRANSFORMS",
    "Predicate",
    "ReductionResult",
    "build_predicate",
    "localize_finding",
    "program_size",
    "reduce_program",
]
