"""DistributedExecutor: a coordinator plus a fleet of worker processes.

The third executor behind the engine's transport seam (next to
``SerialExecutor`` and ``ProcessPoolExecutor``): ``run_units`` starts a
:class:`~repro.core.engine.coordinator.CoordinatorService` for the phase,
spawns ``workers`` local worker processes that dial it over localhost TCP
(the same protocol remote workers would use over a LAN), and yields
accepted outcomes as they stream in.  With ``workers=0`` the executor is
*serve-only*: it binds the given address and waits for externally started
workers (``examples/bug_campaign.py --worker HOST:PORT``) to drain the
phase — that is the coordinator-daemon deployment.

Fleet supervision is deliberately thin: the coordinator already converts
a dead worker into a reclaimed lease, so the executor only needs to keep
*some* worker alive.  When a spawned worker exits before the phase is
done it is replaced (up to ``max_respawns``); a worker fleet that cannot
stay up long enough to finish raises instead of hanging.

``fail_after`` maps worker ordinals to a unit count after which that
worker hard-exits mid-lease (``os._exit``, no goodbye) — the fault
injection used by ``tests/core/test_distributed.py`` and
``benchmarks/perf/bench_campaign.py --distributed`` to prove the
reclaim/merge path under real process death.  Injected workers are never
respawned (their death is the point).
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Dict, Iterator, Optional, Sequence

from repro.core.engine.coordinator import (
    DEFAULT_HEARTBEAT_S,
    DEFAULT_LEASE_TTL_S,
    DEFAULT_LEASE_UNITS,
    DEFAULT_MAX_INFLIGHT_LEASES,
    DEFAULT_MAX_OUTSTANDING,
    CoordinatorService,
)
from repro.core.engine.units import KIND_WORK
from repro.core.engine.worker import worker_process_main


class DistributedExecutor:
    """Run unit batches on a leased coordinator/worker fleet."""

    def __init__(
        self,
        workers: int,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_units: int = DEFAULT_LEASE_UNITS,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        max_inflight_leases: int = DEFAULT_MAX_INFLIGHT_LEASES,
        max_outstanding: int = DEFAULT_MAX_OUTSTANDING,
        fail_after: Optional[Dict[int, int]] = None,
        max_respawns: Optional[int] = None,
        announce: Optional[Callable[[str], None]] = None,
    ) -> None:
        if workers < 0:
            raise ValueError("DistributedExecutor needs workers >= 0")
        if workers == 0 and port == 0:
            raise ValueError(
                "serve-only mode (workers=0) needs an explicit port for "
                "external workers to dial"
            )
        self.workers = workers
        self.jobs = max(1, workers)
        self._host = host
        self._port = port
        self._lease_units = lease_units
        self._ttl = lease_ttl_s
        self._heartbeat_s = heartbeat_s
        self._max_inflight = max_inflight_leases
        self._max_outstanding = max_outstanding
        self._fail_after = dict(fail_after or {})
        self._max_respawns = workers if max_respawns is None else max_respawns
        self._announce = announce or (lambda message: None)
        #: Service counters of the most recent ``run_units`` phase
        #: (``dist_*`` keys), merged into ``CampaignStatistics.counters``.
        self.service_counters: Dict[str, int] = {}

    @staticmethod
    def _context() -> multiprocessing.context.BaseContext:
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context("fork" if "fork" in methods else "spawn")

    def run_units(
        self,
        units: Sequence,
        kind: str = KIND_WORK,
        sink: Optional[Callable[[object], None]] = None,
        journal: Optional[Callable[[Dict], None]] = None,
    ) -> Iterator[object]:
        units = list(units)
        self.service_counters = {}
        if not units:
            return
        coordinator = CoordinatorService(
            units,
            kind,
            host=self._host,
            port=self._port,
            sink=sink,
            journal=journal,
            lease_units=self._lease_units,
            lease_ttl_s=self._ttl,
            heartbeat_s=self._heartbeat_s,
            max_inflight_leases=self._max_inflight,
            max_outstanding=self._max_outstanding,
        )
        host, port = coordinator.start()
        self._announce(f"coordinator serving {len(units)} {kind} units on {host}:{port}")

        context = self._context()
        procs: list = []
        spawn_seq = 0
        respawns_left = self._max_respawns

        def spawn(ordinal: int, fault: Optional[int]) -> None:
            nonlocal spawn_seq
            spawn_seq += 1
            name = f"dw{ordinal}-{spawn_seq}"
            proc = context.Process(
                target=worker_process_main,
                args=(host, port, name, fault),
                name=name,
                daemon=True,
            )
            proc.start()
            procs.append((ordinal, proc, fault))

        for ordinal in range(self.workers):
            spawn(ordinal, self._fail_after.get(ordinal))

        def supervise() -> None:
            """Replace one dead spawned worker per idle tick while work remains.

            A fault-injected worker's death is replaced by a *clean* worker:
            the injection exists to force a lease reclaim, not to shrink
            the fleet for the rest of the phase.
            """

            if self.workers == 0 or coordinator.done:
                return
            nonlocal respawns_left
            for slot in range(len(procs)):
                ordinal, proc, _ = procs[slot]
                if proc.exitcode is None or respawns_left <= 0:
                    continue
                respawns_left -= 1
                proc.join()
                procs.pop(slot)
                spawn(ordinal, None)
                break
            if procs and not any(proc.exitcode is None for _, proc, _ in procs):
                raise RuntimeError(
                    "all distributed workers exited before the phase drained "
                    "and the respawn budget is exhausted"
                )

        try:
            yield from coordinator.outcomes(on_idle=supervise)
            self.service_counters = coordinator.counters.snapshot()
        finally:
            coordinator.stop()
            for _, proc, _ in procs:
                proc.join(timeout=10.0)
                if proc.exitcode is None:
                    proc.terminate()
                    proc.join(timeout=5.0)
