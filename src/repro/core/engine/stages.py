"""Worker-side pipeline stages: generate → compile(platform) → oracles.

Every function in this module runs *inside the worker process* (which may
be the parent, under the serial executor).  Workers hold their own
compiler, validator, solver and cache state — PR 1's intern tables and
memo caches are process-local by design — so nothing here touches shared
mutable state, and the only thing that crosses back to the parent is the
JSON-serialisable :class:`~repro.core.engine.units.UnitOutcome`.

Per-process caches:

* ``_PROGRAM_MEMO`` — the generated program for ``(generator config,
  index)``: the per-platform units of one program land on arbitrary
  workers, but when two land on the same worker the program is generated
  once.  Regeneration elsewhere is deterministic (child seeds), so the
  memo is purely an optimisation.
Symbolic packet tests are memoised per process by
:func:`repro.core.testgen.cached_tests` (keyed by emitted source), shared
between platforms and across the per-defect detection matrix.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import astuple
from typing import Dict, List, Optional, Tuple

from repro import smt
from repro.compiler import (
    CompilerOptions,
    clear_prefix_cache,
    compile_prefix,
    prefix_cache_stats,
)
from repro.compiler.coverage import program_features, shape_cell
from repro.compiler.errors import CompilerCrash, CompilerError
from repro.core.crash import classify_compilation, crash_from_exception
from repro.core.generator import RandomProgramGenerator
from repro.core.testgen import (
    clear_testgen_cache,
    program_has_state,
    testgen_cache_stats,
)
from repro.core.validation import (
    TranslationValidator,
    ValidationOutcome,
    term_shape_histogram,
    validation_cache_stats,
)
from repro.p4 import ast, emit_program, parse_program
from repro.targets import BACKEND_REGISTRY

from repro.core.engine.units import (
    FINDING_CRASH,
    FINDING_INVALID,
    FINDING_SEMANTIC,
    STATUS_CLEAN,
    STATUS_FINDING,
    STATUS_ORACLE_ERROR,
    STATUS_REJECTED,
    TRIAGE_REDUCED,
    TRIAGE_UNREPRODUCED,
    FindingRecord,
    TriageOutcome,
    TriageUnit,
    UnitOutcome,
    WorkUnit,
)
from repro.core.reduce import (
    build_predicate,
    localize_finding,
    reduce_program,
)
from repro.core.reduce.oracles import (
    backend_bug_set,
    p4c_bug_set,
    packet_mismatch,
    replay_stats,
)

# ----------------------------------------------------------------------
# Per-process state
# ----------------------------------------------------------------------

_MEMO_LIMIT = 64
_PROGRAM_MEMO: "OrderedDict[tuple, Tuple[ast.Program, str]]" = OrderedDict()

_VALIDATOR = TranslationValidator()


def reset_worker_state() -> None:
    """Drop per-process memo caches (used by tests and pool recycling)."""

    _PROGRAM_MEMO.clear()
    clear_testgen_cache()
    clear_prefix_cache()
    smt.clear_equivalence_cache()


# ----------------------------------------------------------------------
# Stage: generate
# ----------------------------------------------------------------------

def stage_generate(unit: WorkUnit) -> Tuple[ast.Program, str]:
    """Deterministically (re)generate the unit's program and its source."""

    key = (astuple(unit.generator), unit.program_index)
    cached = _PROGRAM_MEMO.get(key)
    if cached is not None:
        _PROGRAM_MEMO.move_to_end(key)
        return cached
    generator = RandomProgramGenerator(unit.generator)
    program = generator.generate_indexed(unit.program_index)
    source = emit_program(program)
    _PROGRAM_MEMO[key] = (program, source)
    while len(_PROGRAM_MEMO) > _MEMO_LIMIT:
        _PROGRAM_MEMO.popitem(last=False)
    return program, source


# ----------------------------------------------------------------------
# Stage: compile + oracles, per platform
# ----------------------------------------------------------------------

def _p4c_stage(
    unit: WorkUnit, program: ast.Program, source: str
) -> Tuple[str, List[FindingRecord]]:
    """Open-toolchain unit: crash detection + translation validation."""

    options = CompilerOptions(enabled_bugs=p4c_bug_set(unit.enabled_bugs))
    result = compile_prefix(program, source, options)
    if result.rejected:
        return STATUS_REJECTED, []
    crash = classify_compilation(result, platform="p4c")
    if crash is not None:
        return STATUS_FINDING, [
            FindingRecord(
                kind=FINDING_CRASH,
                platform="p4c",
                pass_name=crash.pass_name,
                description=crash.message,
                signature=crash.signature,
            )
        ]
    report = _VALIDATOR.validate_compilation(result)
    if report.outcome == ValidationOutcome.ORACLE_ERROR:
        return STATUS_ORACLE_ERROR, []
    if report.outcome == ValidationOutcome.INVALID_TRANSFORMATION:
        return STATUS_FINDING, [
            FindingRecord(
                kind=FINDING_INVALID,
                platform="p4c",
                pass_name=report.invalid_pass or "ToP4",
                description=report.detail,
            )
        ]
    if report.outcome == ValidationOutcome.SEMANTIC_BUG:
        divergence = report.divergences[0]
        return STATUS_FINDING, [
            FindingRecord(
                kind=FINDING_SEMANTIC,
                platform="p4c",
                pass_name=divergence.pass_name,
                description=(
                    f"pass {divergence.pass_name} changed {divergence.output_path} "
                    f"in block {divergence.block}"
                ),
                witness=dict(divergence.witness),
                before_pass=divergence.before_pass,
            )
        ]
    return STATUS_CLEAN, []


def packet_test(
    unit: WorkUnit, program: ast.Program, source: str, executable, spec
) -> Optional[str]:
    """Run the symbolic packet tests against a compiled executable.

    Returns a human-readable mismatch description, or ``None`` when every
    test passes (or the oracle could not produce tests for this program).
    The actual oracle lives in :func:`repro.core.reduce.oracles.packet_mismatch`
    so the triage predicates exercise the exact same check.
    """

    return packet_mismatch(
        program, source, executable, spec, unit.max_tests, unit.sequence_length
    )


def _backend_stage(
    unit: WorkUnit, program: ast.Program, source: str
) -> Tuple[str, List[FindingRecord]]:
    """Closed-backend unit: crash detection + symbolic packet tests.

    The front/mid-end prefix comes from the process-wide memo
    (:func:`repro.compiler.compile_prefix`): the back ends of one program
    share a single prefix compilation (backend defects never reach the
    prefix, so they share a key) and the target only runs its own
    lowering via ``link``.  The shared prefix is then *validated* through
    the same snapshot-keyed reparse/interp caches the open-toolchain unit
    warms — nearly free on a cache re-walk, and the only way a latent
    mid-end defect on the backend's (usually clean) prefix chain gets
    reported rather than silently lowered.  A validator limitation
    (``ORACLE_ERROR``) never blocks the §6 packet tests.
    """

    platform = unit.platform
    spec = BACKEND_REGISTRY[platform]
    platform_bugs = backend_bug_set(unit.enabled_bugs, platform)
    target = spec.target_cls(CompilerOptions(enabled_bugs=platform_bugs, target=platform))
    result = compile_prefix(program, source, target.options)
    try:
        executable = target.link(result)
    except CompilerCrash as crash_exc:
        crash = crash_from_exception(crash_exc, platform)
        return STATUS_FINDING, [
            FindingRecord(
                kind=FINDING_CRASH,
                platform=platform,
                pass_name=crash.pass_name,
                description=crash.message,
                signature=crash.signature,
            )
        ]
    except CompilerError:
        return STATUS_REJECTED, []
    if unit.validate_prefix:
        report = _VALIDATOR.validate_compilation(result)
        if report.outcome == ValidationOutcome.INVALID_TRANSFORMATION:
            return STATUS_FINDING, [
                FindingRecord(
                    kind=FINDING_INVALID,
                    platform=platform,
                    pass_name=report.invalid_pass or "ToP4",
                    description=report.detail,
                )
            ]
        if report.outcome == ValidationOutcome.SEMANTIC_BUG:
            divergence = report.divergences[0]
            return STATUS_FINDING, [
                FindingRecord(
                    kind=FINDING_SEMANTIC,
                    platform=platform,
                    pass_name=divergence.pass_name,
                    description=(
                        f"pass {divergence.pass_name} changed {divergence.output_path} "
                        f"in block {divergence.block}"
                    ),
                    witness=dict(divergence.witness),
                    before_pass=divergence.before_pass,
                )
            ]
    mismatch = packet_test(unit, program, source, executable, spec)
    if mismatch is not None:
        return STATUS_FINDING, [
            FindingRecord(
                kind=FINDING_SEMANTIC,
                platform=platform,
                pass_name="backend",
                description=mismatch,
                attributed_bugs=_bisect_backend_defects(unit, program, source, spec),
            )
        ]
    return STATUS_CLEAN, []


def _bisect_backend_defects(
    unit: WorkUnit, program: ast.Program, source: str, spec
) -> Tuple[str, ...]:
    """Attribute a packet mismatch to individual enabled backend defects.

    Recompiles the trigger with each same-platform enabled defect alone and
    re-runs the packet tests: a defect is implicated iff it reproduces the
    mismatch by itself.  Cheap where it matters — the front/mid-end prefix
    is memoised process-wide (backend defects never reach the prefix, so
    every singleton shares the compilation this unit already paid for) and
    the symbolic packet tests are memoised by source — so each singleton
    costs one backend lowering plus the packet replay.

    Returns the implicated defects in sorted order, or ``()`` when no
    singleton reproduces (an interaction-only mismatch, or an unseeded
    backend bug): the merge then falls back to the legacy platform-level
    attribution rather than inventing a culprit.
    """

    platform_bugs = backend_bug_set(unit.enabled_bugs, unit.platform)
    if len(platform_bugs) <= 1:
        # The mismatch already *is* the singleton run (or there is nothing
        # to attribute): no recompilation can add information.
        return tuple(sorted(platform_bugs))
    attributed = []
    for bug_id in sorted(platform_bugs):
        target = spec.target_cls(
            CompilerOptions(enabled_bugs={bug_id}, target=unit.platform)
        )
        result = compile_prefix(program, source, target.options)
        try:
            executable = target.link(result)
        except (CompilerCrash, CompilerError):
            continue  # the lone defect breaks compilation: not this mismatch
        if packet_mismatch(
            program, source, executable, spec, unit.max_tests, unit.sequence_length
        ):
            attributed.append(bug_id)
    return tuple(attributed)


# ----------------------------------------------------------------------
# The worker entry point
# ----------------------------------------------------------------------

def _counters_snapshot() -> Dict[str, int]:
    counters = {f"solver_{key}": value for key, value in smt.STATS.snapshot().items()}
    counters.update(validation_cache_stats())
    counters.update(testgen_cache_stats())
    counters.update(prefix_cache_stats())
    counters.update(replay_stats())
    # Only monotone counters survive: per-unit deltas of gauges (cache
    # entry counts) are meaningless once summed across units.
    return {
        key: value for key, value in counters.items() if not key.endswith("_entries")
    }


def _unit_coverage(unit: WorkUnit, program: ast.Program, source: str) -> Dict[str, int]:
    """Coverage cells this unit's program lit up (pure function of the unit).

    Re-runs :func:`compile_prefix` with the same options the platform stage
    just used, so the compilation (and its attached rule/pass coverage) is
    a guaranteed memo hit — the only new work is the feature walk and the
    shape histogram, both near-free.  Coverage is feedback, never an
    oracle: any failure degrades to fewer cells, not a failed unit.
    """

    try:
        coverage = program_features(program)
        if unit.platform == "p4c":
            options = CompilerOptions(enabled_bugs=p4c_bug_set(unit.enabled_bugs))
        else:
            options = CompilerOptions(
                enabled_bugs=backend_bug_set(unit.enabled_bugs, unit.platform),
                target=unit.platform,
            )
        result = compile_prefix(program, source, options)
        coverage.update(result.coverage.to_dict())
        if result.succeeded and result.snapshots:
            histogram = term_shape_histogram(result.snapshots[-1])
            coverage.update(
                {shape_cell(op): count for op, count in histogram.items()}
            )
        return coverage.to_dict()
    except Exception:  # noqa: BLE001 - coverage must never fail a unit
        return {}


def run_unit(unit: WorkUnit) -> UnitOutcome:
    """Execute one work unit end to end and report its outcome.

    This is the function handed to the process pool; it must stay
    module-level (picklable by reference) and must never raise — an oracle
    failure is an outcome, not an exception.
    """

    before = _counters_snapshot()
    start = time.perf_counter()
    program, source = stage_generate(unit)
    if unit.platform == "p4c":
        status, findings = _p4c_stage(unit, program, source)
    elif unit.platform in BACKEND_REGISTRY:
        status, findings = _backend_stage(unit, program, source)
    else:
        raise ValueError(f"unknown platform {unit.platform!r}")
    coverage = _unit_coverage(unit, program, source)
    elapsed = time.perf_counter() - start
    after = _counters_snapshot()
    deltas = {key: after[key] - before.get(key, 0) for key in after}
    return UnitOutcome(
        program_index=unit.program_index,
        platform=unit.platform,
        status=status,
        findings=findings,
        source=source,
        counters=deltas,
        coverage=coverage,
        elapsed_s=elapsed,
    )


# ----------------------------------------------------------------------
# The triage stage (reduce + localize), one unit per deduplicated report
# ----------------------------------------------------------------------

def run_triage_unit(unit: TriageUnit) -> TriageOutcome:
    """Reduce one filed report's trigger program and localize its defect.

    Runs worker-side on the same executor as generation units (module-level
    and picklable by reference, never raises).  The whole computation is a
    deterministic function of the unit — the trigger source is parsed back
    to an AST, the oracle predicate is rebuilt from the original finding,
    and the reducer enumerates edits in program order — so ``jobs=1`` and
    ``jobs=8`` triage byte-identically.
    """

    start = time.perf_counter()
    try:
        program = parse_program(unit.source)
        predicate = build_predicate(
            unit.finding,
            unit.platform,
            unit.enabled_bugs,
            unit.max_tests,
            unit.sequence_length,
        )
        result = reduce_program(program, predicate, max_rounds=unit.reduce_rounds)
        if not result.reproduced:
            return TriageOutcome(
                identifier=unit.identifier,
                status=TRIAGE_UNREPRODUCED,
                original_size=result.original_size,
                reduced_size=result.reduced_size,
                attempts=result.attempts,
                elapsed_s=time.perf_counter() - start,
            )
    except Exception:  # noqa: BLE001 - triage failure is an outcome
        return TriageOutcome(
            identifier=unit.identifier,
            status=TRIAGE_UNREPRODUCED,
            localized_pass=unit.finding.pass_name,
            elapsed_s=time.perf_counter() - start,
        )
    try:
        localized, pair = localize_finding(
            unit.finding, result.program, unit.platform, unit.enabled_bugs
        )
    except Exception:  # noqa: BLE001 - a failed bisect must not drop the reduction
        localized, pair = unit.finding.pass_name, None
    return TriageOutcome(
        identifier=unit.identifier,
        status=TRIAGE_REDUCED,
        reduced_source=result.source,
        original_size=result.original_size,
        reduced_size=result.reduced_size,
        rounds=result.rounds,
        attempts=result.attempts,
        localized_pass=localized,
        pass_pair=pair,
        elapsed_s=time.perf_counter() - start,
        transform_stats=result.transform_stats,
        min_sequence_length=_minimize_sequence_length(unit, result.program),
    )


def _minimize_sequence_length(unit: TriageUnit, reduced: ast.Program) -> int:
    """Shrink the replay vector: fewest packets that still show the bug.

    Backend packet findings on stateful programs only — every other oracle
    is single-packet by construction (returns ``0``, "not applicable").
    The probe rebuilds the packet predicate at each shorter length and
    replays the *reduced* trigger; lengths are tried smallest-first so the
    first success is the minimum.  A probe failure keeps the campaign
    length — minimization is best-effort polish, never a correctness gate.
    """

    if unit.platform == "p4c" or unit.finding.kind != FINDING_SEMANTIC:
        return 0
    if unit.sequence_length <= 1 or not program_has_state(reduced):
        return 0
    for length in range(1, unit.sequence_length):
        try:
            shorter = build_predicate(
                unit.finding, unit.platform, unit.enabled_bugs, unit.max_tests, length
            )
            if shorter(reduced):
                return length
        except Exception:  # noqa: BLE001 - best-effort minimization
            break
    return unit.sequence_length
