"""The campaign coordinator: owns the unit space, leases ranges, merges.

One :class:`CoordinatorService` instance runs one *phase* of one campaign
(generation units or triage units).  It owns the phase's unit list and
serves the line-oriented JSON protocol of :mod:`repro.core.engine.protocol`
on a localhost (or LAN) TCP socket:

* **lease** — a worker is granted a contiguous range of not-yet-done unit
  indexes, serialized in full (units are self-contained; programs are
  regenerated worker-side from per-index seeds).  Backpressure is enforced
  here: a worker already holding ``max_inflight_leases`` live leases, or a
  coordinator whose outcome buffer is above ``max_outstanding``, gets a
  ``retry_in`` backoff instead of work.
* **outcome** — streamed back one line per finished unit, the same wire
  format as the JSONL artifact store.  Outcomes pass through the shared
  first-write-wins :class:`~repro.core.engine.store.OutcomeDedup` (a
  reclaimed lease's units run at least once *somewhere*, possibly twice),
  then hit the persistence sink and the consumer queue.  Streaming an
  outcome also renews the worker's lease.
* **heartbeat** — renews a lease's deadline while a long unit executes.
  A lease whose deadline passes is *reclaimed*: its unfinished indexes
  return to the pending pool and are re-issued to the next worker that
  asks.  A killed worker therefore delays its range by at most one TTL.
* **complete** — the worker finished its range; unfinished indexes (there
  are none unless the worker aborted early) return to the pool.

Expiry sweeps run on every request, so a single surviving worker's polls
are enough to reclaim every dead lease — no timer thread, no scheduling
nondeterminism.  The coordinator is done when the dedup ledger covers the
whole unit list; subsequent lease requests answer ``drained`` so workers
exit cleanly.

Crash safety is inherited from the artifact store: every accepted outcome
is flushed to the campaign's JSONL file (via the sink) *before* it is
acknowledged, and every lease grant/reclaim/completion is journalled to
the same file under a ``lease_event`` field.  Kill the coordinator at any
point and a restart reloads the finished units from the store, rebuilds
the pending pool from what is missing, and re-leases only that — finished
units are never re-run (asserted in ``tests/core/test_distributed.py``).
"""

from __future__ import annotations

import socket
import threading
import queue as queue_module
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.engine import protocol
from repro.core.engine.store import OutcomeDedup
from repro.core.engine.units import (
    KIND_WORK,
    outcome_from_dict,
    outcome_key,
    unit_key,
    unit_to_dict,
)

#: Default service tuning.  The TTL must exceed the worst single-unit wall
#: time (a divergent program can cost 100x the median): heartbeats renew a
#: lease between units and while the reducer runs, but a worker stuck
#: inside one oracle call for longer than the TTL loses the lease.
DEFAULT_LEASE_UNITS = 4
DEFAULT_LEASE_TTL_S = 120.0
DEFAULT_HEARTBEAT_S = 5.0
DEFAULT_MAX_INFLIGHT_LEASES = 2
DEFAULT_MAX_OUTSTANDING = 256
DEFAULT_RETRY_S = 0.2


@dataclass
class Lease:
    """One granted range: which indexes, whose, and until when."""

    lease_id: str
    worker: str
    indexes: Set[int]
    deadline: float
    #: (start, count) of the originally granted contiguous range.
    start: int = 0
    count: int = 0


@dataclass
class _ServiceCounters:
    """Rate/QoS accounting, surfaced into ``CampaignStatistics.counters``."""

    leases_issued: int = 0
    leases_reclaimed: int = 0
    leases_completed: int = 0
    outcomes_streamed: int = 0
    duplicates_discarded: int = 0
    torn_lines: int = 0
    bytes_streamed: int = 0
    heartbeats: int = 0
    backpressure_retries: int = 0
    workers_seen: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {f"dist_{name}": value for name, value in vars(self).items()}


class CoordinatorService:
    """Serve one phase's unit space to a fleet of protocol workers."""

    def __init__(
        self,
        units: Sequence,
        kind: str = KIND_WORK,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        sink: Optional[Callable[[object], None]] = None,
        journal: Optional[Callable[[Dict], None]] = None,
        lease_units: int = DEFAULT_LEASE_UNITS,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        max_inflight_leases: int = DEFAULT_MAX_INFLIGHT_LEASES,
        max_outstanding: int = DEFAULT_MAX_OUTSTANDING,
        clock: Callable[[], float] = None,
    ) -> None:
        import time

        self._units = list(units)
        self._kind = kind
        self._sink = sink
        self._journal = journal
        self._lease_units = max(1, lease_units)
        self._ttl = lease_ttl_s
        self._heartbeat_s = heartbeat_s
        self._max_inflight = max(1, max_inflight_leases)
        self._max_outstanding = max(1, max_outstanding)
        self._clock = clock or time.monotonic

        self._host = host
        self._requested_port = port
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._handler_threads: List[threading.Thread] = []
        self._streams: List[protocol.MessageStream] = []
        self._stopping = threading.Event()

        self._lock = threading.Lock()
        #: Unit indexes not currently leased and not yet done, ascending.
        self._pending: List[int] = list(range(len(self._units)))
        self._leases: Dict[str, Lease] = {}
        self._lease_seq = 0
        self._dedup = OutcomeDedup()
        #: unit identity -> index, to map streamed outcomes back onto the
        #: unit space (and to reject outcomes for units we never issued).
        self._key_to_index = {
            unit_key(kind, unit): index for index, unit in enumerate(self._units)
        }
        self._queue: "queue_module.Queue" = queue_module.Queue()
        self._workers_seen: Set[str] = set()
        self.counters = _ServiceCounters()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind, start serving, and return the bound ``(host, port)``."""

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._requested_port))
        listener.listen(64)
        self._listener = listener
        self.address = listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="coordinator-accept", daemon=True
        )
        self._accept_thread.start()
        return self.address

    def stop(self) -> None:
        self._stopping.set()
        if self._listener is not None:
            # shutdown() before close(): close() alone does not wake a
            # thread blocked in accept(), so the join below would burn its
            # whole timeout on every teardown.
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            streams = list(self._streams)
        for stream in streams:
            stream.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        for thread in self._handler_threads:
            thread.join(timeout=5.0)

    # ------------------------------------------------------------------
    # Consumer side (runs in the engine's thread)
    # ------------------------------------------------------------------

    def outcomes(
        self, on_idle: Optional[Callable[[], None]] = None, poll_s: float = 0.5
    ) -> Iterator[object]:
        """Yield accepted outcomes until the whole unit space is done.

        ``on_idle`` runs whenever no outcome arrived for ``poll_s`` — the
        spawning executor uses it to notice dead workers and replace them
        (the coordinator itself never blocks on worker liveness; it only
        reclaims leases).
        """

        remaining = len(self._units)
        while remaining > 0:
            try:
                outcome = self._queue.get(timeout=poll_s)
            except queue_module.Empty:
                if on_idle is not None:
                    on_idle()
                continue
            remaining -= 1
            yield outcome

    @property
    def done(self) -> bool:
        with self._lock:
            return len(self._dedup.accepted) >= len(self._units)

    def status(self) -> Dict[str, object]:
        with self._lock:
            return {
                "kind": self._kind,
                "total": len(self._units),
                "done": len(self._dedup.accepted),
                "pending": len(self._pending),
                "leases": len(self._leases),
                "counters": self.counters.snapshot(),
            }

    # ------------------------------------------------------------------
    # Accept/handle loops (server threads)
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            stream = protocol.MessageStream(conn)
            with self._lock:
                self._streams.append(stream)
            thread = threading.Thread(
                target=self._handle_connection, args=(stream,), daemon=True
            )
            thread.start()
            self._handler_threads.append(thread)

    def _handle_connection(self, stream: protocol.MessageStream) -> None:
        try:
            while not self._stopping.is_set():
                message = stream.recv()
                if message is None:
                    return  # peer closed (possibly mid-line: torn tail)
                if message.pop("_torn", None):
                    # Mid-stream torn line: count it, drop it, stay alive —
                    # the framing re-synchronises at the next newline.
                    with self._lock:
                        self.counters.torn_lines += 1
                    continue
                response = self._dispatch(message)
                try:
                    stream.send(response)
                except OSError:
                    return  # peer (or stop()) closed the socket under us
                if message.get("op") == protocol.OP_BYE:
                    return
        finally:
            stream.close()
            with self._lock:
                if stream in self._streams:
                    self._streams.remove(stream)

    # ------------------------------------------------------------------
    # Request dispatch (under the state lock)
    # ------------------------------------------------------------------

    def _dispatch(self, message: Dict) -> Dict:
        received_bytes = message.pop("_bytes", 0)
        op = message.get("op")
        with self._lock:
            self._sweep_expired()
            if op == protocol.OP_HELLO:
                return self._on_hello(message)
            if op == protocol.OP_LEASE:
                return self._on_lease(message)
            if op == protocol.OP_HEARTBEAT:
                return self._on_heartbeat(message)
            if op == protocol.OP_OUTCOME:
                return self._on_outcome(message, received_bytes)
            if op == protocol.OP_COMPLETE:
                return self._on_complete(message)
            if op == protocol.OP_STATUS:
                pass  # fall through; status() takes the lock itself
            if op == protocol.OP_BYE:
                return {"ok": True}
        if op == protocol.OP_STATUS:
            return {"ok": True, **self.status()}
        return {"ok": False, "error": f"unknown op {op!r}"}

    def _on_hello(self, message: Dict) -> Dict:
        worker = str(message.get("worker", ""))
        if worker and worker not in self._workers_seen:
            self._workers_seen.add(worker)
            self.counters.workers_seen += 1
        return {
            "ok": True,
            "kind": self._kind,
            "total": len(self._units),
            "heartbeat_s": self._heartbeat_s,
            "ttl_s": self._ttl,
        }

    def _on_lease(self, message: Dict) -> Dict:
        worker = str(message.get("worker", ""))
        if len(self._dedup.accepted) >= len(self._units):
            return {"ok": True, "drained": True}
        inflight = sum(1 for lease in self._leases.values() if lease.worker == worker)
        if inflight >= self._max_inflight:
            self.counters.backpressure_retries += 1
            return {"ok": True, "retry_in": DEFAULT_RETRY_S}
        if self._queue.qsize() >= self._max_outstanding:
            # The consumer is not draining outcomes: stop issuing work
            # rather than buffering unboundedly.
            self.counters.backpressure_retries += 1
            return {"ok": True, "retry_in": DEFAULT_RETRY_S}
        if not self._pending:
            # Everything is leased out; this worker should ask again soon
            # (it may inherit a reclaimed range).
            return {"ok": True, "retry_in": DEFAULT_RETRY_S}

        start = self._pending[0]
        indexes = [start]
        while (
            len(indexes) < self._lease_units
            and len(indexes) < len(self._pending)
            and self._pending[len(indexes)] == indexes[-1] + 1
        ):
            indexes.append(self._pending[len(indexes)])
        del self._pending[: len(indexes)]

        self._lease_seq += 1
        lease_id = f"L{self._lease_seq}"
        lease = Lease(
            lease_id=lease_id,
            worker=worker,
            indexes=set(indexes),
            deadline=self._clock() + self._ttl,
            start=indexes[0],
            count=len(indexes),
        )
        self._leases[lease_id] = lease
        self.counters.leases_issued += 1
        self._journal_event(
            {
                "event": "issued",
                "lease": lease_id,
                "worker": worker,
                "start": lease.start,
                "count": lease.count,
            }
        )
        return {
            "ok": True,
            "lease": {
                "id": lease_id,
                "kind": self._kind,
                "start": lease.start,
                "count": lease.count,
                "units": [
                    unit_to_dict(self._kind, self._units[index]) for index in indexes
                ],
            },
        }

    def _on_heartbeat(self, message: Dict) -> Dict:
        lease = self._leases.get(str(message.get("lease", "")))
        self.counters.heartbeats += 1
        if lease is None:
            return {"ok": False, "error": "lease-expired"}
        lease.deadline = self._clock() + self._ttl
        return {"ok": True}

    def _on_outcome(self, message: Dict, received_bytes: int) -> Dict:
        payload = message.get("outcome")
        if not isinstance(payload, dict):
            return {"ok": False, "error": "malformed outcome"}
        try:
            outcome = outcome_from_dict(self._kind, payload)
        except (KeyError, TypeError, ValueError):
            return {"ok": False, "error": "undecodable outcome"}
        key = outcome_key(self._kind, outcome)
        index = self._key_to_index.get(key)
        if index is None:
            return {"ok": False, "error": f"unknown unit {key!r}"}
        self.counters.bytes_streamed += received_bytes

        # Streaming progress is as good as a heartbeat.
        lease = self._leases.get(str(message.get("lease", "")))
        if lease is not None:
            lease.deadline = self._clock() + self._ttl
            lease.indexes.discard(index)

        if not self._dedup.accept(key, outcome):
            # At-least-once delivery: a reclaimed range was re-run, or a
            # retry re-sent a line.  First write won; drop this one.
            self.counters.duplicates_discarded += 1
            return {"ok": True, "duplicate": True}
        self.counters.outcomes_streamed += 1
        # Remove from any other lease that still thinks it owns the index
        # (the original holder may stream late, after a reclaim).
        for other in self._leases.values():
            other.indexes.discard(index)
        if index in self._pending:
            self._pending.remove(index)
        # Persist before acknowledging: an acked outcome is never lost.
        if self._sink is not None:
            self._sink(outcome)
        self._queue.put(outcome)
        return {"ok": True, "duplicate": False}

    def _on_complete(self, message: Dict) -> Dict:
        lease_id = str(message.get("lease", ""))
        lease = self._leases.pop(lease_id, None)
        if lease is None:
            return {"ok": True, "late": True}
        leftover = sorted(
            index for index in lease.indexes if index not in self._done_indexes()
        )
        if leftover:
            self._requeue(leftover)
        self.counters.leases_completed += 1
        self._journal_event(
            {
                "event": "completed",
                "lease": lease_id,
                "worker": lease.worker,
                "leftover": len(leftover),
            }
        )
        return {"ok": True}

    # ------------------------------------------------------------------
    # Lease expiry / requeue (callers hold the lock)
    # ------------------------------------------------------------------

    def _done_indexes(self) -> Set[int]:
        return {
            self._key_to_index[key]
            for key in self._dedup.accepted
            if key in self._key_to_index
        }

    def _sweep_expired(self) -> None:
        now = self._clock()
        done = None
        for lease_id in [
            lease_id
            for lease_id, lease in self._leases.items()
            if lease.deadline <= now
        ]:
            lease = self._leases.pop(lease_id)
            if done is None:
                done = self._done_indexes()
            unfinished = sorted(index for index in lease.indexes if index not in done)
            self._requeue(unfinished)
            self.counters.leases_reclaimed += 1
            self._journal_event(
                {
                    "event": "reclaimed",
                    "lease": lease_id,
                    "worker": lease.worker,
                    "requeued": len(unfinished),
                }
            )

    def _requeue(self, indexes: List[int]) -> None:
        if not indexes:
            return
        merged = sorted(set(self._pending).union(indexes))
        self._pending[:] = merged

    def _journal_event(self, event: Dict) -> None:
        if self._journal is not None:
            self._journal(event)
