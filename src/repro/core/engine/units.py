"""Work units and their outcomes — the engine's wire format.

A campaign is decomposed into independent ``(program_index, platform)``
work units.  Each unit is *picklable* (it crosses a process boundary on the
way to a pool worker) and each outcome is *JSON-serialisable* (it is
appended to the campaign's JSONL artifact store so an interrupted campaign
can resume without recomputing finished units).

The outcome deliberately carries raw, attribution-free data: which oracle
fired, the finding's signature/pass/witness, and the emitted source that
triggered it.  Mapping findings onto deduplicated :class:`BugReport`
records (which needs the campaign-wide set of enabled seeded defects) is
the *merge* step's job, in the parent process, so that the result is
independent of worker scheduling.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.generator import GeneratorConfig

#: Deterministic platform ordering used when merging unit outcomes: the
#: serial loop tested p4c first, then the back ends (in the order they
#: joined the registry), and the merge step sorts by ``(program_index,
#: platform rank)`` to reproduce that order regardless of worker
#: completion order.  A new back end appends its name here and registers
#: its classes in :data:`repro.targets.BACKEND_REGISTRY` — see the
#: backend-author contract in ``src/repro/targets/README.md``.
PLATFORM_ORDER: Tuple[str, ...] = ("p4c", "bmv2", "tofino", "ebpf")

#: Unit statuses.
STATUS_CLEAN = "clean"
STATUS_REJECTED = "rejected"
STATUS_ORACLE_ERROR = "oracle_error"
STATUS_FINDING = "finding"

#: Finding kinds (mirrors :class:`repro.core.bugs.BugKind` values).
FINDING_CRASH = "crash"
FINDING_SEMANTIC = "semantic"
FINDING_INVALID = "invalid_transformation"

#: Triage outcome statuses.
TRIAGE_REDUCED = "reduced"
TRIAGE_UNREPRODUCED = "unreproduced"

#: Unit kinds: every executor stage (local or distributed) schedules one
#: homogeneous batch of either generation units (:class:`WorkUnit` →
#: :class:`UnitOutcome`) or triage units (:class:`TriageUnit` →
#: :class:`TriageOutcome`).  The kind travels with a distributed lease so
#: a worker knows which runner to dispatch.
KIND_WORK = "work"
KIND_TRIAGE = "triage"


def unit_key(kind: str, unit) -> object:
    """The dedup identity of a unit (work: ``(index, platform)``; triage: id)."""

    return unit.key if kind == KIND_WORK else unit.identifier


def outcome_key(kind: str, outcome) -> object:
    """The dedup identity of an outcome, matching :func:`unit_key`."""

    return outcome.key if kind == KIND_WORK else outcome.identifier


def unit_to_dict(kind: str, unit) -> Dict[str, object]:
    """JSON wire form of a unit (leases ship units to remote workers)."""

    return unit.to_dict()


def unit_from_dict(kind: str, payload: Dict[str, object]):
    cls = WorkUnit if kind == KIND_WORK else TriageUnit
    return cls.from_dict(payload)


def outcome_from_dict(kind: str, payload: Dict[str, object]):
    cls = UnitOutcome if kind == KIND_WORK else TriageOutcome
    return cls.from_dict(payload)


def platform_rank(platform: str) -> int:
    """Sort key for deterministic merges; unknown platforms sort last."""

    try:
        return PLATFORM_ORDER.index(platform)
    except ValueError:
        return len(PLATFORM_ORDER)


@dataclass(frozen=True)
class WorkUnit:
    """One shard of a campaign: test one generated program on one platform.

    The unit carries everything a worker needs to *regenerate* the program
    (the generator config embeds the campaign seed; the program itself is
    derived from ``(seed, program_index)`` via
    :func:`repro.core.generator.derive_child_seed`) rather than the program
    AST itself: regeneration is cheap, deterministic, and keeps the pickled
    payload tiny.
    """

    program_index: int
    platform: str
    generator: GeneratorConfig
    enabled_bugs: Tuple[str, ...] = ()
    max_tests: int = 4
    #: Backend units re-walk the shared front/mid-end prefix through the
    #: process-wide snapshot caches and reuse its verdict (PR 7's shared-
    #: prefix validation); disable to restore the pre-PR-7 packet-tests-only
    #: behaviour for closed back ends.
    validate_prefix: bool = True
    #: Packet count of the §6 test sequences replayed against stateful
    #: programs (stateless programs always collapse to length 1).  Part of
    #: the wire form: a distributed worker must replay exactly what the
    #: serial run would.
    sequence_length: int = 3

    @property
    def key(self) -> Tuple[int, str]:
        return (self.program_index, self.platform)

    def sort_key(self) -> Tuple[int, int]:
        return (self.program_index, platform_rank(self.platform))

    def to_dict(self) -> Dict[str, object]:
        return {
            "program_index": self.program_index,
            "platform": self.platform,
            "generator": asdict(self.generator),
            "enabled_bugs": list(self.enabled_bugs),
            "max_tests": self.max_tests,
            "validate_prefix": self.validate_prefix,
            "sequence_length": self.sequence_length,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "WorkUnit":
        return cls(
            program_index=payload["program_index"],
            platform=payload["platform"],
            generator=GeneratorConfig(**payload["generator"]),
            enabled_bugs=tuple(payload.get("enabled_bugs", ())),
            max_tests=payload.get("max_tests", 4),
            validate_prefix=payload.get("validate_prefix", True),
            sequence_length=payload.get("sequence_length", 1),
        )


@dataclass
class FindingRecord:
    """One raw oracle finding, before attribution and deduplication."""

    kind: str  # FINDING_CRASH | FINDING_SEMANTIC | FINDING_INVALID
    platform: str
    pass_name: str
    description: str
    #: Crash signature (crash findings only) — the dedup key of §4.
    signature: str = ""
    #: Witness input assignment (semantic findings only).
    witness: Dict[str, object] = field(default_factory=dict)
    #: Last agreeing snapshot before the divergence (semantic p4c findings
    #: only) — ``(before_pass, pass_name)`` is the diverging pass pair.
    before_pass: str = ""
    #: Backend semantic findings only: the enabled seeded defects that each
    #: *individually* reproduce this packet mismatch (computed by the
    #: worker's per-defect bisection over the trigger).  Empty means the
    #: bisection was inconclusive — no single defect reproduces — and the
    #: merge falls back to platform-level attribution.
    attributed_bugs: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        payload = asdict(self)
        payload["attributed_bugs"] = list(self.attributed_bugs)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FindingRecord":
        return cls(
            kind=payload["kind"],
            platform=payload["platform"],
            pass_name=payload["pass_name"],
            description=payload["description"],
            signature=payload.get("signature", ""),
            witness=dict(payload.get("witness", {})),
            before_pass=payload.get("before_pass", ""),
            attributed_bugs=tuple(payload.get("attributed_bugs", ())),
        )


@dataclass
class UnitOutcome:
    """Everything one work unit produced, in JSON-serialisable form."""

    program_index: int
    platform: str
    status: str
    findings: List[FindingRecord] = field(default_factory=list)
    #: Emitted source of the generated program (the bug trigger).
    source: str = ""
    #: Per-unit deltas of worker-process observability counters (solver
    #: STATS, validation/testgen cache hits); summed by the merge step so
    #: the campaign totals stay truthful under parallelism.
    counters: Dict[str, int] = field(default_factory=dict)
    #: Pipeline coverage cells this unit's program lit up (pass-fired bits,
    #: rewrite-rule hits, term shapes, program features).  Unlike
    #: ``counters`` this is a pure function of (generator, index, bugs) —
    #: never of process state — so store-resumed outcomes replay it and
    #: merged campaign coverage is identical at any job count.
    coverage: Dict[str, int] = field(default_factory=dict)
    elapsed_s: float = 0.0

    @property
    def key(self) -> Tuple[int, str]:
        return (self.program_index, self.platform)

    def sort_key(self) -> Tuple[int, int]:
        return (self.program_index, platform_rank(self.platform))

    def to_dict(self) -> Dict[str, object]:
        return {
            "program_index": self.program_index,
            "platform": self.platform,
            "status": self.status,
            "findings": [finding.to_dict() for finding in self.findings],
            "source": self.source,
            "counters": dict(self.counters),
            "coverage": dict(self.coverage),
            "elapsed_s": self.elapsed_s,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "UnitOutcome":
        return cls(
            program_index=payload["program_index"],
            platform=payload["platform"],
            status=payload["status"],
            findings=[
                FindingRecord.from_dict(entry) for entry in payload.get("findings", ())
            ],
            source=payload.get("source", ""),
            counters=dict(payload.get("counters", {})),
            coverage=dict(payload.get("coverage", {})),
            elapsed_s=payload.get("elapsed_s", 0.0),
        )


@dataclass(frozen=True)
class TriageUnit:
    """One shard of the triage stage: reduce + localize one filed report.

    The unit carries the deduplicated report's identity, its winning
    trigger *source* (parsing it back is deterministic and keeps the unit
    self-contained — a stored artifact line is enough to rebuild one, see
    ``examples/reduce_bug.py``) and everything the oracle predicate needs
    to re-run the original detection: platform, raw finding, enabled
    defects and the packet-test budget.
    """

    identifier: str
    platform: str
    source: str
    finding: FindingRecord
    enabled_bugs: Tuple[str, ...] = ()
    max_tests: int = 4
    reduce_rounds: int = 8
    #: Sequence length the detecting campaign replayed (the triage oracle
    #: must chase the bug with the same packet budget).
    sequence_length: int = 3

    @property
    def key(self) -> str:
        return self.identifier

    def to_dict(self) -> Dict[str, object]:
        return {
            "identifier": self.identifier,
            "platform": self.platform,
            "source": self.source,
            "finding": self.finding.to_dict(),
            "enabled_bugs": list(self.enabled_bugs),
            "max_tests": self.max_tests,
            "reduce_rounds": self.reduce_rounds,
            "sequence_length": self.sequence_length,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TriageUnit":
        return cls(
            identifier=payload["identifier"],
            platform=payload["platform"],
            source=payload["source"],
            finding=FindingRecord.from_dict(payload["finding"]),
            enabled_bugs=tuple(payload.get("enabled_bugs", ())),
            max_tests=payload.get("max_tests", 4),
            reduce_rounds=payload.get("reduce_rounds", 8),
            sequence_length=payload.get("sequence_length", 1),
        )


@dataclass
class TriageOutcome:
    """Everything one triage unit produced, in JSON-serialisable form."""

    identifier: str
    status: str  # TRIAGE_REDUCED | TRIAGE_UNREPRODUCED
    reduced_source: str = ""
    original_size: int = 0
    reduced_size: int = 0
    rounds: int = 0
    attempts: int = 0
    localized_pass: str = ""
    pass_pair: Optional[Tuple[str, str]] = None
    elapsed_s: float = 0.0
    #: Per-transformation-class effort (oracle calls / kept edits /
    #: statements removed), from :class:`~repro.core.reduce.reducer.ReductionResult`.
    transform_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Smallest packet-sequence length that still reproduces the bug on the
    #: reduced trigger (backend packet findings on stateful programs only;
    #: ``0`` means not applicable — a single-packet oracle).  Survives the
    #: store round-trip so a resumed campaign reports the same minimal
    #: replay vector the original triage computed.
    min_sequence_length: int = 0

    @property
    def reduction_ratio(self) -> float:
        if self.original_size <= 0:
            return 0.0
        return 1.0 - (self.reduced_size / self.original_size)

    def to_dict(self) -> Dict[str, object]:
        return {
            "identifier": self.identifier,
            "status": self.status,
            "reduced_source": self.reduced_source,
            "original_size": self.original_size,
            "reduced_size": self.reduced_size,
            "rounds": self.rounds,
            "attempts": self.attempts,
            "localized_pass": self.localized_pass,
            "pass_pair": list(self.pass_pair) if self.pass_pair else None,
            "elapsed_s": self.elapsed_s,
            "transform_stats": {
                name: dict(entry) for name, entry in self.transform_stats.items()
            },
            "min_sequence_length": self.min_sequence_length,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TriageOutcome":
        pair = payload.get("pass_pair")
        return cls(
            identifier=payload["identifier"],
            status=payload["status"],
            reduced_source=payload.get("reduced_source", ""),
            original_size=payload.get("original_size", 0),
            reduced_size=payload.get("reduced_size", 0),
            rounds=payload.get("rounds", 0),
            attempts=payload.get("attempts", 0),
            localized_pass=payload.get("localized_pass", ""),
            pass_pair=(pair[0], pair[1]) if pair else None,
            elapsed_s=payload.get("elapsed_s", 0.0),
            transform_stats={
                name: dict(entry)
                for name, entry in payload.get("transform_stats", {}).items()
            },
            min_sequence_length=payload.get("min_sequence_length", 0),
        )


def build_units(
    programs: int,
    platforms: Tuple[str, ...],
    generator: GeneratorConfig,
    enabled_bugs: Tuple[str, ...],
    max_tests: int,
    sequence_length: int = 3,
) -> List[WorkUnit]:
    """The full unit list of a campaign, in deterministic order.

    Unknown platforms are rejected here, in the parent, before any work is
    scheduled: a worker raising mid-campaign would abort the pool with a
    half-written artifact store.
    """

    unknown = [platform for platform in platforms if platform not in PLATFORM_ORDER]
    if unknown:
        raise ValueError(
            f"unknown platform(s) {unknown!r}; supported: {list(PLATFORM_ORDER)}"
        )
    ordered_platforms = sorted(platforms, key=platform_rank)
    return [
        WorkUnit(
            program_index=index,
            platform=platform,
            generator=generator,
            enabled_bugs=tuple(enabled_bugs),
            max_tests=max_tests,
            sequence_length=sequence_length,
        )
        for index in range(programs)
        for platform in ordered_platforms
    ]
