"""JSONL artifact store: crash-safe persistence of unit outcomes.

Every finished work unit is appended to the store as one JSON line, so a
campaign killed at any point leaves a valid prefix on disk.  On restart the
engine loads the completed units for its *campaign key* and only schedules
the remainder; ``run_detection_matrix`` shares the same store, so a matrix
re-run reuses every unit an earlier (possibly interrupted) run finished.

The campaign key is a content hash of everything that determines a unit's
result — generator config (which embeds the seed), enabled defects,
platform set, test budget — so resuming with *different* parameters never
reuses stale outcomes.  The program count is deliberately excluded: units
are keyed by program index, so growing a 100-program campaign to 1000
reuses the first 100 programs' outcomes verbatim.

The parent process is the only writer; workers ship outcomes back over the
pool and the engine appends them as they complete.  A torn final line
(process killed mid-write) is skipped on load.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from typing import Dict, Iterable, Tuple

from repro.core.generator import GeneratorConfig
from repro.core.engine.units import KIND_TRIAGE, KIND_WORK, TriageOutcome, UnitOutcome


class OutcomeDedup:
    """First-write-wins deduplication of outcomes, by unit identity.

    At-least-once execution (a reclaimed distributed lease re-runs its
    units; a resumed store may hold a unit twice) means the same unit's
    outcome can arrive more than once.  Outcomes are deterministic
    functions of their unit, so *which* copy wins is immaterial — but both
    consumers must agree, and both must count what they dropped.  This is
    the single dedup authority shared by the store's resume loaders and
    the coordinator's streamed-shard path.
    """

    def __init__(self) -> None:
        self.accepted: Dict[object, object] = {}
        self.duplicates = 0

    def accept(self, key: object, outcome: object) -> bool:
        """Record ``outcome`` under ``key``; ``False`` (and counted) if seen."""

        if key in self.accepted:
            self.duplicates += 1
            return False
        self.accepted[key] = outcome
        return True


def campaign_key(
    generator: GeneratorConfig,
    enabled_bugs: Iterable[str],
    platforms: Iterable[str],
    max_tests: int,
    scope: str = "campaign",
    sequence_length: int = 1,
) -> str:
    """Stable identity of a campaign's unit space (not its size).

    The sequence length is part of the identity: a unit replayed with a
    different packet budget can reach a different verdict on a stateful
    program, so its stored outcome must never be reused across budgets.
    """

    payload = {
        "scope": scope,
        "generator": asdict(generator),
        "enabled_bugs": sorted(enabled_bugs),
        "platforms": sorted(platforms),
        "max_tests": max_tests,
        "sequence_length": sequence_length,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def triage_key(
    generator: GeneratorConfig,
    enabled_bugs: Iterable[str],
    platforms: Iterable[str],
    max_tests: int,
    reduce_rounds: int,
    sequence_length: int = 1,
) -> str:
    """Store key of the triage stage for one campaign.

    The round budget is part of the identity — a different budget can
    reach a different reduction fixpoint, so its outcomes are never
    reused.  Every reader of triage records (engine, benchmarks) must
    derive the key here rather than re-building the scope string.
    """

    return campaign_key(
        generator,
        enabled_bugs,
        platforms,
        max_tests,
        scope=f"triage-rounds{reduce_rounds}",
        sequence_length=sequence_length,
    )


class ArtifactStore:
    """Append-only JSONL store of :class:`UnitOutcome` records."""

    def __init__(self, path: str) -> None:
        self.path = path

    # -- writing ---------------------------------------------------------------

    def append(self, key: str, outcome: UnitOutcome) -> None:
        self._append_line({"key": key, "outcome": outcome.to_dict()})

    def append_triage(self, key: str, outcome: TriageOutcome) -> None:
        """Persist one finished reduction (same crash-safe discipline).

        Triage records live in the same JSONL file as unit outcomes but
        under a ``triage`` payload field, so either loader transparently
        skips the other's lines — old stores stay loadable and a store
        with half-finished triage resumes mid-triage.
        """

        self._append_line({"key": key, "triage": outcome.to_dict()})

    def append_outcome(self, key: str, kind: str, outcome) -> None:
        """Kind-dispatching append (the coordinator streams both kinds)."""

        if kind == KIND_WORK:
            self.append(key, outcome)
        else:
            self.append_triage(key, outcome)

    def append_lease_event(self, key: str, event: Dict) -> None:
        """One line of the coordinator's lease journal.

        Journal lines share the campaign's JSONL file under a
        ``lease_event`` payload field, so the outcome loaders skip them
        (and vice versa).  The journal records every lease issued,
        reclaimed and completed — together with the outcome lines it lets
        a restarted coordinator resume the unit space exactly where the
        killed one stopped, and lets audits reconstruct which worker ran
        what.
        """

        self._append_line({"key": key, "lease_event": dict(event)})

    def _append_line(self, entry: Dict) -> None:
        line = json.dumps(entry, separators=(",", ":"))
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        # One write per line + flush: a kill between units leaves a valid
        # prefix, a kill mid-write leaves one torn line that load() skips.
        # A restarted writer must not *extend* that torn tail — appending
        # straight after it would weld the fragment onto the fresh line and
        # destroy both — so a missing final newline is healed first.
        if self._tail_is_torn():
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write("\n")
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()

    def _tail_is_torn(self) -> bool:
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return False
        if size == 0:
            return False
        with open(self.path, "rb") as handle:
            handle.seek(-1, os.SEEK_END)
            return handle.read(1) != b"\n"

    # -- reading ---------------------------------------------------------------

    def load(self, key: str) -> Dict[Tuple[int, str], UnitOutcome]:
        """All completed outcomes recorded for ``key`` (first write wins)."""

        return self._load_outcomes(key, KIND_WORK)

    def load_triage(self, key: str) -> Dict[str, TriageOutcome]:
        """All completed reductions recorded for ``key``, by report identifier."""

        return self._load_outcomes(key, KIND_TRIAGE)

    def _load_outcomes(self, key: str, kind: str) -> Dict:
        """Resume loader: decode, then dedup with the shared first-write-wins
        policy — the same :class:`OutcomeDedup` the coordinator applies to
        streamed shard lines, so a store written under at-least-once
        delivery loads exactly the set the coordinator accepted."""

        payload_field = "outcome" if kind == KIND_WORK else "triage"
        outcome_cls = UnitOutcome if kind == KIND_WORK else TriageOutcome
        dedup = OutcomeDedup()
        for entry in self._entries():
            if entry.get("key") != key:
                continue
            try:
                outcome = outcome_cls.from_dict(entry[payload_field])
            except (KeyError, TypeError):
                continue
            dedup.accept(
                outcome.key if kind == KIND_WORK else outcome.identifier, outcome
            )
        return dedup.accepted

    def load_lease_events(self, key: str) -> list:
        """The coordinator's lease journal for ``key``, in write order."""

        events = []
        for entry in self._entries():
            if entry.get("key") != key:
                continue
            event = entry.get("lease_event")
            if isinstance(event, dict):
                events.append(event)
        return events

    def _entries(self):
        """Yield every well-formed JSON object line (torn/garbage skipped)."""

        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail line from an interrupted run
                if isinstance(entry, dict):
                    yield entry

    def __len__(self) -> int:
        if not os.path.exists(self.path):
            return 0
        with open(self.path, "r", encoding="utf-8") as handle:
            return sum(1 for line in handle if line.strip())
