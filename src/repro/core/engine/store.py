"""JSONL artifact store: crash-safe persistence of unit outcomes.

Every finished work unit is appended to the store as one JSON line, so a
campaign killed at any point leaves a valid prefix on disk.  On restart the
engine loads the completed units for its *campaign key* and only schedules
the remainder; ``run_detection_matrix`` shares the same store, so a matrix
re-run reuses every unit an earlier (possibly interrupted) run finished.

The campaign key is a content hash of everything that determines a unit's
result — generator config (which embeds the seed), enabled defects,
platform set, test budget — so resuming with *different* parameters never
reuses stale outcomes.  The program count is deliberately excluded: units
are keyed by program index, so growing a 100-program campaign to 1000
reuses the first 100 programs' outcomes verbatim.

The parent process is the only writer; workers ship outcomes back over the
pool and the engine appends them as they complete.  A torn final line
(process killed mid-write) is skipped on load.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from typing import Dict, Iterable, Tuple

from repro.core.generator import GeneratorConfig
from repro.core.engine.units import UnitOutcome


def campaign_key(
    generator: GeneratorConfig,
    enabled_bugs: Iterable[str],
    platforms: Iterable[str],
    max_tests: int,
    scope: str = "campaign",
) -> str:
    """Stable identity of a campaign's unit space (not its size)."""

    payload = {
        "scope": scope,
        "generator": asdict(generator),
        "enabled_bugs": sorted(enabled_bugs),
        "platforms": sorted(platforms),
        "max_tests": max_tests,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


class ArtifactStore:
    """Append-only JSONL store of :class:`UnitOutcome` records."""

    def __init__(self, path: str) -> None:
        self.path = path

    # -- writing ---------------------------------------------------------------

    def append(self, key: str, outcome: UnitOutcome) -> None:
        line = json.dumps(
            {"key": key, "outcome": outcome.to_dict()}, separators=(",", ":")
        )
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        # One write per line + flush: a kill between units leaves a valid
        # prefix, a kill mid-write leaves one torn line that load() skips.
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()

    # -- reading ---------------------------------------------------------------

    def load(self, key: str) -> Dict[Tuple[int, str], UnitOutcome]:
        """All completed outcomes recorded for ``key`` (later lines win)."""

        completed: Dict[Tuple[int, str], UnitOutcome] = {}
        if not os.path.exists(self.path):
            return completed
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail line from an interrupted run
                if not isinstance(entry, dict) or entry.get("key") != key:
                    continue
                try:
                    outcome = UnitOutcome.from_dict(entry["outcome"])
                except (KeyError, TypeError):
                    continue
                completed[outcome.key] = outcome
        return completed

    def __len__(self) -> int:
        if not os.path.exists(self.path):
            return 0
        with open(self.path, "r", encoding="utf-8") as handle:
            return sum(1 for line in handle if line.strip())
