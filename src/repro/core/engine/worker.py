"""The campaign worker: lease a range, execute it, stream outcomes back.

A worker is stateless and campaign-agnostic: everything it needs arrives
in the lease (serialized units embed the generator config and defect set;
programs are regenerated locally from sha256-derived per-index seeds), so
``python examples/bug_campaign.py --worker HOST:PORT`` can join any
coordinator — same machine, same rack, anywhere — with no shared
filesystem and no prior configuration.

The loop::

    hello → (lease → run each unit → stream outcome line → complete)* → bye

Outcome lines double as heartbeats (streaming progress proves liveness);
a background heartbeat thread on a *second* connection covers the gap
inside a single long-running unit, so the lease stays alive as long as
the process does.  A worker killed mid-lease simply stops heartbeating:
the coordinator reclaims the range after one TTL and re-issues it, and
the outcomes the dead worker already streamed stay accepted (first write
wins — re-running them elsewhere produces byte-identical lines that are
discarded as duplicates).

``fail_after`` is the chaos knob used by the fault-tolerance tests and
the distributed benchmark: the worker hard-exits (``os._exit``, no
``complete``, no socket shutdown — exactly what ``kill -9`` produces)
after executing that many units.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, Optional

from repro.core.engine import protocol
from repro.core.engine.units import KIND_WORK, unit_from_dict

#: Re-imported lazily in :func:`_runner_for` so importing this module does
#: not drag the whole compiler in (the CLI parses arguments first).


def _runner_for(kind: str):
    from repro.core.engine.stages import run_triage_unit, run_unit

    return run_unit if kind == KIND_WORK else run_triage_unit


class _HeartbeatPump(threading.Thread):
    """Second-connection heartbeats for the lease currently executing."""

    def __init__(self, host: str, port: int, worker_id: str, interval_s: float) -> None:
        super().__init__(name=f"{worker_id}-heartbeat", daemon=True)
        self._host = host
        self._port = port
        self._worker_id = worker_id
        self._interval = max(0.05, interval_s)
        self._lease_id: Optional[str] = None
        self._lock = threading.Lock()
        self._stop = threading.Event()

    def set_lease(self, lease_id: Optional[str]) -> None:
        with self._lock:
            self._lease_id = lease_id

    def stop(self) -> None:
        self._stop.set()

    def run(self) -> None:
        stream = None
        while not self._stop.wait(self._interval):
            with self._lock:
                lease_id = self._lease_id
            if lease_id is None:
                continue
            try:
                if stream is None:
                    stream = protocol.connect(self._host, self._port, timeout=10.0)
                stream.send(
                    {
                        "op": protocol.OP_HEARTBEAT,
                        "worker": self._worker_id,
                        "lease": lease_id,
                    }
                )
                stream.recv()
            except OSError:
                if stream is not None:
                    stream.close()
                stream = None  # coordinator gone or restarting; retry
        if stream is not None:
            stream.close()


def run_worker(
    host: str,
    port: int,
    worker_id: Optional[str] = None,
    *,
    fail_after: Optional[int] = None,
    connect_timeout_s: float = 30.0,
    quiet: bool = True,
) -> Dict[str, int]:
    """Serve one coordinator until its phase drains; returns local stats.

    Retries the initial connection for up to ``connect_timeout_s`` (the
    coordinator may still be binding when the fleet starts) but exits as
    soon as a live conversation ends — a vanished coordinator means the
    campaign was killed; the journal and store make the *restarted*
    campaign re-lease whatever this worker did not finish.
    """

    worker_id = worker_id or f"worker-{os.getpid()}"
    deadline = time.monotonic() + connect_timeout_s
    stream = None
    while stream is None:
        try:
            stream = protocol.connect(host, port)
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.05)

    stats = {"units": 0, "leases": 0, "duplicates": 0}
    executed = 0
    pump = None
    try:
        stream.send({"op": protocol.OP_HELLO, "worker": worker_id})
        welcome = stream.recv()
        if not welcome or not welcome.get("ok"):
            return stats
        kind = welcome.get("kind", KIND_WORK)
        runner = _runner_for(kind)
        heartbeat_s = float(welcome.get("heartbeat_s", 5.0))
        pump = _HeartbeatPump(host, port, worker_id, heartbeat_s)
        pump.start()

        while True:
            stream.send({"op": protocol.OP_LEASE, "worker": worker_id})
            response = stream.recv()
            if not response or not response.get("ok"):
                break
            if response.get("drained"):
                break
            retry_in = response.get("retry_in")
            if retry_in is not None:
                time.sleep(float(retry_in))
                continue
            lease = response["lease"]
            stats["leases"] += 1
            pump.set_lease(lease["id"])
            if not quiet:
                print(
                    f"[{worker_id}] lease {lease['id']}: units "
                    f"{lease['start']}..{lease['start'] + lease['count'] - 1}",
                    flush=True,
                )
            for payload in lease["units"]:
                unit = unit_from_dict(kind, payload)
                outcome = runner(unit)
                executed += 1
                stream.send(
                    {
                        "op": protocol.OP_OUTCOME,
                        "worker": worker_id,
                        "lease": lease["id"],
                        "outcome": outcome.to_dict(),
                    }
                )
                ack = stream.recv()
                if ack is None:
                    return stats  # coordinator gone mid-stream
                if ack.get("duplicate"):
                    stats["duplicates"] += 1
                stats["units"] += 1
                if fail_after is not None and executed >= fail_after:
                    # Chaos: die exactly like SIGKILL — no complete, no
                    # close, heartbeat pump dies with the process.
                    os._exit(17)
            pump.set_lease(None)
            stream.send(
                {
                    "op": protocol.OP_COMPLETE,
                    "worker": worker_id,
                    "lease": lease["id"],
                }
            )
            if stream.recv() is None:
                break
        stream.send({"op": protocol.OP_BYE, "worker": worker_id})
        stream.recv()
    except OSError:
        pass  # connection torn down under us; nothing left to do
    finally:
        if pump is not None:
            pump.stop()
        stream.close()
    return stats


def worker_process_main(
    host: str, port: int, worker_id: str, fail_after: Optional[int] = None
) -> None:
    """``multiprocessing.Process`` target for locally spawned fleets."""

    run_worker(host, port, worker_id, fail_after=fail_after)
