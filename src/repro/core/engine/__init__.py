"""Staged campaign engine: parallel, resumable, deterministic bug-finding.

The engine decomposes a campaign into independent ``(program_index,
platform)`` work units, runs them through explicit stages
(``generate → compile(platform) → oracles → report``) on a pluggable
executor (serial, or a ``multiprocessing`` pool sharding units across
cores), persists every outcome to a JSONL artifact store for crash-safe
resume, and merges results deterministically so serial and parallel runs
file byte-identical bug reports.

With ``reduce=True`` a **triage stage** runs after the merge: every
deduplicated report becomes one :class:`TriageUnit` that shrinks the
trigger program with the delta-debugging reducer
(:mod:`repro.core.reduce`) under an oracle-faithful predicate and
localizes the defect to a compiler pass (pair), riding the same executor
and artifact store as the generation units.

Three interchangeable transports sit behind one seam
(``run_units(units, kind, sink, journal)``): :class:`SerialExecutor`,
:class:`ProcessPoolExecutor`, and :class:`DistributedExecutor` — a
campaign coordinator leasing contiguous unit ranges to a fleet of worker
processes over line-JSON TCP (:mod:`repro.core.engine.protocol`), with
heartbeat-based lease reclaim, streamed outcome shards, and incremental
merge.  All three file byte-identical reports.

See :mod:`repro.core.engine.engine` for orchestration,
:mod:`repro.core.engine.stages` for the worker-side pipeline,
:mod:`repro.core.engine.coordinator` / :mod:`repro.core.engine.worker`
for the distributed service, and ``src/repro/core/README.md`` for the
architecture overview.
"""

from repro.core.engine.coordinator import CoordinatorService
from repro.core.engine.distributed import DistributedExecutor
from repro.core.engine.engine import (
    CampaignEngine,
    CampaignSpec,
    DetectionRecord,
)
from repro.core.engine.executor import (
    ProcessPoolExecutor,
    SerialExecutor,
    make_executor,
)
from repro.core.engine.store import OutcomeDedup
from repro.core.engine.worker import run_worker
from repro.core.engine.merge import (
    CampaignStatistics,
    OutcomeMerger,
    TriageSource,
    apply_triage,
)
from repro.core.engine.stages import reset_worker_state, run_triage_unit, run_unit
from repro.core.engine.store import ArtifactStore, campaign_key, triage_key
from repro.core.engine.units import (
    TRIAGE_REDUCED,
    TRIAGE_UNREPRODUCED,
    FindingRecord,
    TriageOutcome,
    TriageUnit,
    UnitOutcome,
    WorkUnit,
    build_units,
)

__all__ = [
    "ArtifactStore",
    "CampaignEngine",
    "CampaignSpec",
    "CampaignStatistics",
    "CoordinatorService",
    "DetectionRecord",
    "DistributedExecutor",
    "FindingRecord",
    "OutcomeDedup",
    "OutcomeMerger",
    "ProcessPoolExecutor",
    "SerialExecutor",
    "TRIAGE_REDUCED",
    "TRIAGE_UNREPRODUCED",
    "TriageOutcome",
    "TriageSource",
    "TriageUnit",
    "UnitOutcome",
    "WorkUnit",
    "apply_triage",
    "build_units",
    "campaign_key",
    "make_executor",
    "reset_worker_state",
    "run_triage_unit",
    "run_unit",
    "run_worker",
    "triage_key",
]
