"""Staged campaign engine: parallel, resumable, deterministic bug-finding.

The engine decomposes a campaign into independent ``(program_index,
platform)`` work units, runs them through explicit stages
(``generate → compile(platform) → oracles → report``) on a pluggable
executor (serial, or a ``multiprocessing`` pool sharding units across
cores), persists every outcome to a JSONL artifact store for crash-safe
resume, and merges results deterministically so serial and parallel runs
file byte-identical bug reports.

See :mod:`repro.core.engine.engine` for orchestration,
:mod:`repro.core.engine.stages` for the worker-side pipeline, and
``src/repro/core/README.md`` for the architecture overview.
"""

from repro.core.engine.engine import (
    CampaignEngine,
    CampaignSpec,
    DetectionRecord,
)
from repro.core.engine.executor import (
    ProcessPoolExecutor,
    SerialExecutor,
    make_executor,
)
from repro.core.engine.merge import CampaignStatistics, OutcomeMerger
from repro.core.engine.stages import run_unit, reset_worker_state
from repro.core.engine.store import ArtifactStore, campaign_key
from repro.core.engine.units import (
    FindingRecord,
    UnitOutcome,
    WorkUnit,
    build_units,
)

__all__ = [
    "ArtifactStore",
    "CampaignEngine",
    "CampaignSpec",
    "CampaignStatistics",
    "DetectionRecord",
    "FindingRecord",
    "OutcomeMerger",
    "ProcessPoolExecutor",
    "SerialExecutor",
    "UnitOutcome",
    "WorkUnit",
    "build_units",
    "campaign_key",
    "make_executor",
    "reset_worker_state",
    "run_unit",
]
