"""Staged campaign engine: parallel, resumable, deterministic bug-finding.

The engine decomposes a campaign into independent ``(program_index,
platform)`` work units, runs them through explicit stages
(``generate → compile(platform) → oracles → report``) on a pluggable
executor (serial, or a ``multiprocessing`` pool sharding units across
cores), persists every outcome to a JSONL artifact store for crash-safe
resume, and merges results deterministically so serial and parallel runs
file byte-identical bug reports.

With ``reduce=True`` a **triage stage** runs after the merge: every
deduplicated report becomes one :class:`TriageUnit` that shrinks the
trigger program with the delta-debugging reducer
(:mod:`repro.core.reduce`) under an oracle-faithful predicate and
localizes the defect to a compiler pass (pair), riding the same executor
and artifact store as the generation units.

See :mod:`repro.core.engine.engine` for orchestration,
:mod:`repro.core.engine.stages` for the worker-side pipeline, and
``src/repro/core/README.md`` for the architecture overview.
"""

from repro.core.engine.engine import (
    CampaignEngine,
    CampaignSpec,
    DetectionRecord,
)
from repro.core.engine.executor import (
    ProcessPoolExecutor,
    SerialExecutor,
    make_executor,
)
from repro.core.engine.merge import (
    CampaignStatistics,
    OutcomeMerger,
    TriageSource,
    apply_triage,
)
from repro.core.engine.stages import reset_worker_state, run_triage_unit, run_unit
from repro.core.engine.store import ArtifactStore, campaign_key, triage_key
from repro.core.engine.units import (
    TRIAGE_REDUCED,
    TRIAGE_UNREPRODUCED,
    FindingRecord,
    TriageOutcome,
    TriageUnit,
    UnitOutcome,
    WorkUnit,
    build_units,
)

__all__ = [
    "ArtifactStore",
    "CampaignEngine",
    "CampaignSpec",
    "CampaignStatistics",
    "DetectionRecord",
    "FindingRecord",
    "OutcomeMerger",
    "ProcessPoolExecutor",
    "SerialExecutor",
    "TRIAGE_REDUCED",
    "TRIAGE_UNREPRODUCED",
    "TriageOutcome",
    "TriageSource",
    "TriageUnit",
    "UnitOutcome",
    "WorkUnit",
    "apply_triage",
    "build_units",
    "campaign_key",
    "make_executor",
    "reset_worker_state",
    "run_triage_unit",
    "run_unit",
    "triage_key",
]
