"""The staged campaign engine: schedule units, persist outcomes, merge.

This is the orchestration layer between the campaign facade
(:mod:`repro.core.campaign`) and the worker stages
(:mod:`repro.core.engine.stages`):

1. expand the campaign spec into the deterministic unit list
   (``program_index`` × platform),
2. serve already-completed units from the JSONL artifact store (resume),
3. shard the remainder over the chosen executor,
4. append every fresh outcome to the store as it completes, and
5. merge all outcomes — reused and fresh — into deduplicated bug reports
   and statistics, independent of completion order.

The per-defect detection matrix rides the same machinery: each seeded
defect becomes a sequence of single-defect units with an early exit on
the first detection, sharded *across defects* when ``jobs > 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compiler.bugs import BUG_CATALOG, LOCATION_BACKEND, SeededBug
from repro.core.generator import GeneratorConfig
from repro.core.schedule import (
    BanditScheduler,
    KnobArm,
    MATRIX_STEERING,
    choose_arm_for_defect,
    train_profiles,
)
from repro.core.testgen import DEFAULT_SEQUENCE_LENGTH
from repro.core.engine.distributed import DistributedExecutor
from repro.core.engine.executor import make_executor
from repro.core.engine.merge import (
    CampaignStatistics,
    OutcomeMerger,
    TriageSource,
    apply_triage,
)
from repro.core.engine.protocol import parse_address
from repro.core.engine.store import ArtifactStore, campaign_key, triage_key
from repro.core.engine.stages import run_unit
from repro.core.engine.units import (
    FINDING_CRASH,
    FindingRecord,
    KIND_TRIAGE,
    STATUS_FINDING,
    TRIAGE_REDUCED,
    TriageOutcome,
    TriageUnit,
    UnitOutcome,
    WorkUnit,
    build_units,
    platform_rank,
)
from repro.core.engine.coordinator import (
    DEFAULT_LEASE_TTL_S,
    DEFAULT_LEASE_UNITS,
)


@dataclass(frozen=True)
class CampaignSpec:
    """Engine-level description of one campaign (picklable, no live state)."""

    programs: int
    generator: GeneratorConfig
    enabled_bugs: Tuple[str, ...] = ()
    platforms: Tuple[str, ...] = ("p4c", "bmv2", "tofino")
    max_tests: int = 4
    #: Packet count of the §6 test sequences (stateless programs collapse
    #: to single-packet tests, so this only costs solver time where a
    #: register/counter makes later packets observable).
    sequence_length: int = DEFAULT_SEQUENCE_LENGTH
    jobs: int = 1
    artifact_path: Optional[str] = None
    #: Run the triage stage after merge: one reduction + localization per
    #: deduplicated report, sharded over the same executor.
    reduce: bool = False
    reduce_rounds: int = 8
    #: ``distributed > 0`` runs the campaign on a coordinator/worker fleet
    #: of that many locally spawned workers (TCP transport, leased unit
    #: ranges) instead of the fork pool.  Overrides ``jobs``.
    distributed: int = 0
    #: ``serve`` binds the coordinator on ``host:port`` and spawns *no*
    #: workers: externally started ``--worker`` processes drain the
    #: campaign.  Overrides both ``jobs`` and ``distributed``.
    serve: Optional[str] = None
    #: Lease geometry for the distributed transports (ignored otherwise):
    #: units per lease, and how long a silent lease lives before the
    #: coordinator reclaims and re-issues its unfinished range.
    lease_units: int = DEFAULT_LEASE_UNITS
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S
    #: Drive program generation through the coverage-feedback bandit
    #: scheduler (:mod:`repro.core.schedule`) instead of a single static
    #: knob vector.  The program budget is split into ``schedule_rounds``
    #: rounds; each round's knob arm is chosen from the coverage the
    #: earlier rounds produced.  Off by default: the seed-0 corpus stays
    #: byte-identical unless a campaign opts in.
    schedule: bool = False
    schedule_rounds: int = 4


@dataclass
class DetectionRecord:
    """Whether one seeded defect was detected, and how."""

    bug: SeededBug
    detected: bool
    technique: str = ""
    programs_tried: int = 0
    #: Knob-vector provenance: which scheduler arm generated the detecting
    #: programs ("static" when the static steering table was used).
    knob_arm: str = "static"


@dataclass(frozen=True)
class _MatrixTask:
    """One defect's share of the detection matrix (shipped to a worker)."""

    bug_id: str
    programs_per_bug: int
    generator: GeneratorConfig
    max_tests: int
    artifact_path: Optional[str] = None
    sequence_length: int = DEFAULT_SEQUENCE_LENGTH
    #: Scheduler-chosen knob arm; empty name means "use static steering".
    arm_name: str = ""
    arm_overrides: Tuple[Tuple[str, object], ...] = ()


#: Generator steering for the per-defect detection matrix, keyed by trigger
#: feature (paper §4.2: the generator biases its probabilities towards the
#: language constructs a defect needs).  An override is applied only while
#: the campaign generator leaves the corresponding knob at its dataclass
#: default, so explicitly-configured generators are never second-guessed.
#: The table itself lives in :mod:`repro.core.schedule` so the knob-arm
#: catalog can be validated against it without an import cycle; this alias
#: keeps the engine's historical name.
_MATRIX_STEERING = MATRIX_STEERING


def _steer_generator(generator: GeneratorConfig, bug: SeededBug) -> GeneratorConfig:
    overrides: Dict[str, object] = {}
    for feature in bug.trigger_features:
        overrides.update(_MATRIX_STEERING.get(feature, {}))
    defaults = GeneratorConfig.__dataclass_fields__
    applicable = {
        key: value
        for key, value in overrides.items()
        if getattr(generator, key) == defaults[key].default
    }
    return replace(generator, **applicable) if applicable else generator


def _technique(outcome: UnitOutcome) -> str:
    """Map a detecting unit outcome onto the paper's technique names."""

    if any(finding.kind == FINDING_CRASH for finding in outcome.findings):
        return "crash"
    if outcome.platform == "p4c":
        return "translation_validation"
    return "symbolic_execution"


def _detect_bug(task: _MatrixTask) -> Dict[str, object]:
    """Try to detect one seeded defect; module-level so pools can pickle it.

    Programs are tried in index order with an early exit on the first
    detection — identical logic under every executor, so the matrix result
    does not depend on scheduling.  Completed units are read from the
    artifact store (read-only here; the parent is the sole writer) and
    fresh outcomes are returned for the parent to persist.
    """

    bug = BUG_CATALOG[task.bug_id]
    platform = "p4c" if bug.location != LOCATION_BACKEND else bug.platform
    if task.arm_name:
        generator = KnobArm(task.arm_name, task.arm_overrides).apply(task.generator)
    else:
        generator = _steer_generator(task.generator, bug)
    key = campaign_key(
        generator,
        (task.bug_id,),
        (platform,),
        task.max_tests,
        scope="matrix",
        sequence_length=task.sequence_length,
    )
    completed: Dict[Tuple[int, str], UnitOutcome] = {}
    if task.artifact_path:
        completed = ArtifactStore(task.artifact_path).load(key)
    fresh: List[UnitOutcome] = []
    detected = False
    technique = ""
    attempts = 0
    for index in range(task.programs_per_bug):
        unit = WorkUnit(
            program_index=index,
            platform=platform,
            generator=generator,
            enabled_bugs=(task.bug_id,),
            max_tests=task.max_tests,
            sequence_length=task.sequence_length,
        )
        outcome = completed.get(unit.key)
        if outcome is None:
            outcome = run_unit(unit)
            fresh.append(outcome)
        attempts = index + 1
        if outcome.status == STATUS_FINDING:
            detected = True
            technique = _technique(outcome)
            break
    return {
        "bug_id": task.bug_id,
        "detected": detected,
        "technique": technique,
        "attempts": attempts,
        "store_key": key,
        "fresh": [outcome.to_dict() for outcome in fresh],
        "reused": len(completed),
        "knob_arm": task.arm_name or "static",
    }


class CampaignEngine:
    """Run campaigns and detection matrices over an executor.

    The executor is chosen from the spec (``serve`` → serve-only
    coordinator, ``distributed`` → local worker fleet, else ``jobs`` →
    serial / fork pool); tests can inject a pre-configured executor —
    typically a :class:`DistributedExecutor` with fault injection — via
    the ``executor`` override.
    """

    def __init__(self, spec: CampaignSpec, executor=None) -> None:
        self.spec = spec
        self.store = ArtifactStore(spec.artifact_path) if spec.artifact_path else None
        self._executor = executor

    def _make_executor(self):
        if self._executor is not None:
            return self._executor
        spec = self.spec
        if spec.serve:
            host, port = parse_address(spec.serve)
            return DistributedExecutor(
                0,
                host=host,
                port=port,
                lease_units=spec.lease_units,
                lease_ttl_s=spec.lease_ttl_s,
            )
        if spec.distributed > 0:
            return DistributedExecutor(
                spec.distributed,
                lease_units=spec.lease_units,
                lease_ttl_s=spec.lease_ttl_s,
            )
        return make_executor(spec.jobs)

    # ------------------------------------------------------------------
    # Full campaign
    # ------------------------------------------------------------------

    def run(self) -> CampaignStatistics:
        if self.spec.schedule:
            return self._run_scheduled()
        spec = self.spec
        units = build_units(
            programs=spec.programs,
            platforms=tuple(spec.platforms),
            generator=spec.generator,
            enabled_bugs=tuple(spec.enabled_bugs),
            max_tests=spec.max_tests,
            sequence_length=spec.sequence_length,
        )
        key = campaign_key(
            spec.generator,
            spec.enabled_bugs,
            spec.platforms,
            spec.max_tests,
            sequence_length=spec.sequence_length,
        )
        completed: Dict[Tuple[int, str], UnitOutcome] = {}
        if self.store is not None:
            stored = self.store.load(key)
            completed = {
                unit.key: stored[unit.key] for unit in units if unit.key in stored
            }
        pending = [unit for unit in units if unit.key not in completed]

        statistics = CampaignStatistics(
            programs_generated=spec.programs,
            units_total=len(units),
            units_reused=len(completed),
        )
        merger = OutcomeMerger(spec.enabled_bugs)
        # Reused outcomes contribute their findings but not their counters:
        # CampaignStatistics.counters reports work performed by *this* run,
        # and the store units' solving happened in an earlier one.
        for outcome in completed.values():
            merger.add(replace(outcome, counters={}), statistics)

        executor = self._make_executor()
        sink = None
        journal = None
        if self.store is not None:
            sink = lambda outcome: self.store.append(key, outcome)  # noqa: E731
            journal = lambda event: self.store.append_lease_event(key, event)  # noqa: E731
        # The transport persists (sink) before the engine merges; under the
        # distributed executor the sink runs on the coordinator's service
        # threads while the merge stays here, on the consuming thread.
        for outcome in executor.run_units(pending, sink=sink, journal=journal):
            merger.add(outcome, statistics)
        self._fold_service_counters(executor, statistics)

        statistics = merger.finalize(statistics)
        if spec.reduce:
            self._run_triage(executor, merger.provenance, statistics)
        return statistics

    # ------------------------------------------------------------------
    # Scheduled campaign: coverage-feedback knob arms, round by round
    # ------------------------------------------------------------------

    def _run_scheduled(self) -> CampaignStatistics:
        """Coverage-feedback campaign: the bandit picks knob arms per round.

        The program budget is split into ``schedule_rounds`` contiguous
        index ranges.  Each round draws an arm from the bandit (seeded via
        ``derive_child_seed`` on the campaign seed, so the arm sequence is
        identical under every executor), generates its slice with that
        arm's knob vector, and feeds the round's merged coverage back as
        the bandit reward.  Rounds are persisted under a ``scheduled``
        store scope keyed by the steered generator; because
        ``UnitOutcome.coverage`` is a pure function of the unit, resumed
        rounds reward the bandit exactly like fresh ones and the arm
        sequence survives kill/resume unchanged.
        """

        spec = self.spec
        ordered_platforms = tuple(sorted(spec.platforms, key=platform_rank))
        scheduler = BanditScheduler(seed=spec.generator.seed)
        rounds = min(max(1, spec.schedule_rounds), spec.programs) if spec.programs else 0
        statistics = CampaignStatistics(programs_generated=spec.programs)
        merger = OutcomeMerger(spec.enabled_bugs)
        executor = self._make_executor()
        arm_by_index: Dict[int, KnobArm] = {}
        base, extra = divmod(spec.programs, rounds) if rounds else (0, 0)
        start = 0
        for round_index in range(rounds):
            count = base + (1 if round_index < extra else 0)
            if count == 0:
                continue
            arm = scheduler.next_arm()
            round_generator = arm.apply(spec.generator)
            indices = range(start, start + count)
            start += count
            for index in indices:
                arm_by_index[index] = arm
            units = [
                WorkUnit(
                    program_index=index,
                    platform=platform,
                    generator=round_generator,
                    enabled_bugs=tuple(spec.enabled_bugs),
                    max_tests=spec.max_tests,
                    sequence_length=spec.sequence_length,
                )
                for index in indices
                for platform in ordered_platforms
            ]
            key = campaign_key(
                round_generator,
                spec.enabled_bugs,
                spec.platforms,
                spec.max_tests,
                scope="scheduled",
                sequence_length=spec.sequence_length,
            )
            completed: Dict[Tuple[int, str], UnitOutcome] = {}
            if self.store is not None:
                stored = self.store.load(key)
                completed = {
                    unit.key: stored[unit.key] for unit in units if unit.key in stored
                }
            pending = [unit for unit in units if unit.key not in completed]
            statistics.units_total += len(units)
            statistics.units_reused += len(completed)
            round_outcomes: List[UnitOutcome] = []
            for outcome in completed.values():
                merger.add(replace(outcome, counters={}), statistics)
                round_outcomes.append(outcome)
            sink = None
            journal = None
            if self.store is not None:
                sink = lambda outcome, key=key: self.store.append(key, outcome)  # noqa: E731
                journal = lambda event, key=key: self.store.append_lease_event(  # noqa: E731
                    key, event
                )
            for outcome in executor.run_units(pending, sink=sink, journal=journal):
                merger.add(outcome, statistics)
                round_outcomes.append(outcome)
            round_coverage: Dict[str, int] = {}
            for outcome in round_outcomes:
                for cell, value in outcome.coverage.items():
                    round_coverage[cell] = round_coverage.get(cell, 0) + value
            scheduler.update(arm, round_coverage)
        self._fold_service_counters(executor, statistics)
        statistics = merger.finalize(statistics)
        self._annotate_arm_provenance(statistics, merger.provenance, arm_by_index)
        if spec.reduce:
            self._run_triage(executor, merger.provenance, statistics)
        return statistics

    @staticmethod
    def _annotate_arm_provenance(
        statistics: CampaignStatistics,
        provenance: Dict[str, TriageSource],
        arm_by_index: Dict[int, KnobArm],
    ) -> None:
        """Stamp each filed report with the knob arm that generated it.

        Provenance keys the *winning* (lowest unit key) finding of each
        report, which is executor-invariant, so the stamped arm is too.
        """

        for identifier, source in provenance.items():
            arm = arm_by_index.get(source.program_index)
            report = statistics.tracker.get(identifier)
            if arm is None or report is None:
                continue
            report.knob_arm = arm.name
            report.knob_overrides = arm.overrides_dict()

    @staticmethod
    def _fold_service_counters(executor, statistics: CampaignStatistics) -> None:
        """Accumulate the distributed transport's QoS counters, if any."""

        for key, value in getattr(executor, "service_counters", {}).items():
            statistics.counters[key] = statistics.counters.get(key, 0) + value

    # ------------------------------------------------------------------
    # Triage stage: reduce + localize each deduplicated report
    # ------------------------------------------------------------------

    def _run_triage(
        self,
        executor,
        provenance: Dict[str, TriageSource],
        statistics: CampaignStatistics,
    ) -> None:
        """Shard one reduction per filed report across the executor.

        Rides the same transport seam as generation units (triage units
        serialize, so a distributed fleet leases them too): fresh outcomes
        are streamed into the artifact store as they complete (a killed
        campaign resumes mid-triage without redoing finished reductions)
        and the merge onto the tracker is sorted, so the triaged reports
        are identical under every executor.
        """

        spec = self.spec
        units = [
            TriageUnit(
                identifier=source.identifier,
                platform=source.platform,
                source=source.source,
                finding=self._narrow_finding(source),
                enabled_bugs=tuple(spec.enabled_bugs),
                max_tests=spec.max_tests,
                reduce_rounds=spec.reduce_rounds,
                sequence_length=spec.sequence_length,
            )
            for _, source in sorted(provenance.items())
        ]
        statistics.triage_total = len(units)
        if not units:
            return
        key = triage_key(
            spec.generator,
            spec.enabled_bugs,
            spec.platforms,
            spec.max_tests,
            spec.reduce_rounds,
            sequence_length=spec.sequence_length,
        )
        completed: Dict[str, TriageOutcome] = {}
        if self.store is not None:
            stored = self.store.load_triage(key)
            completed = {
                unit.identifier: stored[unit.identifier]
                for unit in units
                if unit.identifier in stored
            }
        statistics.triage_reused = len(completed)
        pending = [unit for unit in units if unit.identifier not in completed]
        results: List[TriageOutcome] = list(completed.values())
        sink = None
        journal = None
        if self.store is not None:
            # Only successful reductions are persisted: an unreproduced
            # outcome may be environment-dependent (worker under memory /
            # recursion pressure), and storing it would pin the report as
            # unreduced on every resume.  Retrying costs one predicate call.
            def sink(outcome):
                if outcome.status == TRIAGE_REDUCED:
                    self.store.append_triage(key, outcome)

            journal = lambda event: self.store.append_lease_event(key, event)  # noqa: E731
        for outcome in executor.run_units(
            pending, kind=KIND_TRIAGE, sink=sink, journal=journal
        ):
            results.append(outcome)
        self._fold_service_counters(executor, statistics)
        apply_triage(statistics, results)

    def _narrow_finding(self, source: TriageSource) -> "FindingRecord":
        """Pin a bisected finding's triage to the defect this report names.

        When the worker attributed a packet mismatch to several independent
        defects, one report was filed per defect but they share the winning
        finding; the reduction for each report must chase *its* defect, not
        whichever of the set survives shrinking.
        """

        finding = source.finding
        if len(finding.attributed_bugs) <= 1:
            return finding
        _, _, bug_id = source.identifier.partition(":")
        if bug_id in finding.attributed_bugs:
            return replace(finding, attributed_bugs=(bug_id,))
        return finding

    # ------------------------------------------------------------------
    # Per-defect detection matrix
    # ------------------------------------------------------------------

    def run_detection_matrix(
        self,
        bug_ids: Optional[Sequence[str]] = None,
        programs_per_bug: int = 20,
        schedule: bool = False,
        programs_per_arm: int = 12,
    ) -> List[DetectionRecord]:
        """For each seeded defect, check whether Gauntlet detects it.

        With ``schedule=True`` the matrix first runs a compile-only
        calibration pass (:func:`repro.core.schedule.train_profiles`) and
        steers each defect with the profile-chosen knob arm; the choice is
        margin-guarded, falling back to the static steering table whenever
        the profiles do not show a clearly better arm.
        """

        spec = self.spec
        targets = list(bug_ids) if bug_ids is not None else list(BUG_CATALOG)
        arms: Dict[str, Optional[KnobArm]] = {bug_id: None for bug_id in targets}
        if schedule:
            profiles = train_profiles(spec.generator, programs_per_arm=programs_per_arm)
            arms = {
                bug_id: choose_arm_for_defect(BUG_CATALOG[bug_id], profiles)
                for bug_id in targets
            }
        tasks = [
            _MatrixTask(
                bug_id=bug_id,
                programs_per_bug=programs_per_bug,
                generator=spec.generator,
                max_tests=spec.max_tests,
                artifact_path=spec.artifact_path,
                sequence_length=spec.sequence_length,
                arm_name=arms[bug_id].name if arms[bug_id] else "",
                arm_overrides=arms[bug_id].overrides if arms[bug_id] else (),
            )
            for bug_id in targets
        ]
        executor = make_executor(spec.jobs)
        results: Dict[str, Dict[str, object]] = {}
        for result in executor.map_unordered(_detect_bug, tasks):
            results[result["bug_id"]] = result
            if self.store is not None:
                for payload in result["fresh"]:
                    self.store.append(
                        result["store_key"], UnitOutcome.from_dict(payload)
                    )
        return [
            DetectionRecord(
                bug=BUG_CATALOG[bug_id],
                detected=results[bug_id]["detected"],
                technique=results[bug_id]["technique"],
                programs_tried=results[bug_id]["attempts"],
                knob_arm=str(results[bug_id]["knob_arm"]),
            )
            for bug_id in targets
        ]
