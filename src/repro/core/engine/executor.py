"""Scheduler abstraction: run work units serially or across a process pool.

Two executors implement the same tiny interface —
``map_unordered(fn, items)`` yields one result per item, in *completion*
order — so the campaign engine is indifferent to where units run.  The
merge step re-sorts outcomes by ``(program_index, platform)`` before
filing findings, which is what makes the campaign result independent of
the executor (and of worker scheduling noise).

The pool executor uses ``fork`` where the platform offers it: workers
inherit the already-imported compiler/solver modules for free, and each
worker process builds its own intern tables, simplify memo and validation
caches (all of PR 1's hot-path state is process-local by design).
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Iterator, Sequence, TypeVar

_T = TypeVar("_T")
_R = TypeVar("_R")


class SerialExecutor:
    """Run every unit in the calling process, in submission order."""

    jobs = 1

    def map_unordered(
        self, fn: Callable[[_T], _R], items: Sequence[_T]
    ) -> Iterator[_R]:
        for item in items:
            yield fn(item)


class ProcessPoolExecutor:
    """Shard units across ``jobs`` worker processes.

    ``fn`` must be a module-level function and every item picklable; both
    hold for :func:`repro.core.engine.stages.run_unit` and
    :class:`~repro.core.engine.units.WorkUnit`.
    """

    def __init__(self, jobs: int) -> None:
        if jobs < 2:
            raise ValueError("ProcessPoolExecutor needs jobs >= 2; use SerialExecutor")
        self.jobs = jobs

    @staticmethod
    def _context() -> multiprocessing.context.BaseContext:
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context("fork" if "fork" in methods else "spawn")

    def map_unordered(
        self, fn: Callable[[_T], _R], items: Sequence[_T]
    ) -> Iterator[_R]:
        items = list(items)
        if not items:
            return
        processes = min(self.jobs, len(items))
        if processes < 2:
            yield from SerialExecutor().map_unordered(fn, items)
            return
        # Small chunks keep the pool load-balanced when unit costs are
        # skewed (one divergent program can cost 100x the median) while
        # still amortising IPC for large campaigns.
        chunksize = max(1, len(items) // (processes * 8))
        with self._context().Pool(processes=processes) as pool:
            for result in pool.imap_unordered(fn, items, chunksize=chunksize):
                yield result


def make_executor(jobs: int):
    """Pick an executor for the requested parallelism (``jobs <= 1`` → serial)."""

    if jobs <= 1:
        return SerialExecutor()
    return ProcessPoolExecutor(jobs)
