"""Scheduler abstraction: run unit batches locally or across a fleet.

Every executor implements the same transport seam —
``run_units(units, kind, sink, journal)`` yields one outcome per unit in
*completion* order, invoking ``sink`` (persistence) on each before it is
yielded — so the campaign engine is indifferent to where units run: the
calling process (:class:`SerialExecutor`), a local ``multiprocessing``
pool (:class:`ProcessPoolExecutor`), or a coordinator/worker service over
TCP (:class:`~repro.core.engine.distributed.DistributedExecutor`).  The
merge step picks per-identifier winners by ``(program_index, platform)``
order, which is what makes the campaign result independent of the
executor (and of worker scheduling noise).

The local executors also keep the lower-level ``map_unordered(fn, items)``
interface for callers that shard arbitrary functions (the detection
matrix shards per-defect tasks this way).

The pool executor uses ``fork`` where the platform offers it: workers
inherit the already-imported compiler/solver modules for free, and each
worker process builds its own intern tables, simplify memo and validation
caches (all of PR 1's hot-path state is process-local by design).
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Dict, Iterator, Optional, Sequence, TypeVar

from repro.core.engine.units import KIND_WORK

_T = TypeVar("_T")
_R = TypeVar("_R")

Sink = Optional[Callable[[object], None]]
Journal = Optional[Callable[[Dict], None]]


def _runner_for(kind: str):
    from repro.core.engine.stages import run_triage_unit, run_unit

    return run_unit if kind == KIND_WORK else run_triage_unit


class _LocalRunUnits:
    """The ``run_units`` seam shared by the two in-process executors."""

    def run_units(
        self,
        units: Sequence,
        kind: str = KIND_WORK,
        sink: Sink = None,
        journal: Journal = None,
    ) -> Iterator[object]:
        # Local transports have no leases, so the journal goes unused.
        for outcome in self.map_unordered(_runner_for(kind), units):
            if sink is not None:
                sink(outcome)
            yield outcome


class SerialExecutor(_LocalRunUnits):
    """Run every unit in the calling process, in submission order."""

    jobs = 1

    def map_unordered(
        self, fn: Callable[[_T], _R], items: Sequence[_T]
    ) -> Iterator[_R]:
        for item in items:
            yield fn(item)


class ProcessPoolExecutor(_LocalRunUnits):
    """Shard units across ``jobs`` worker processes.

    ``fn`` must be a module-level function and every item picklable; both
    hold for :func:`repro.core.engine.stages.run_unit` and
    :class:`~repro.core.engine.units.WorkUnit`.
    """

    def __init__(self, jobs: int) -> None:
        if jobs < 2:
            raise ValueError("ProcessPoolExecutor needs jobs >= 2; use SerialExecutor")
        self.jobs = jobs

    @staticmethod
    def _context() -> multiprocessing.context.BaseContext:
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context("fork" if "fork" in methods else "spawn")

    def map_unordered(
        self, fn: Callable[[_T], _R], items: Sequence[_T]
    ) -> Iterator[_R]:
        items = list(items)
        if not items:
            return
        processes = min(self.jobs, len(items))
        if processes < 2:
            yield from SerialExecutor().map_unordered(fn, items)
            return
        # Small chunks keep the pool load-balanced when unit costs are
        # skewed (one divergent program can cost 100x the median) while
        # still amortising IPC for large campaigns.
        chunksize = max(1, len(items) // (processes * 8))
        with self._context().Pool(processes=processes) as pool:
            for result in pool.imap_unordered(fn, items, chunksize=chunksize):
                yield result


def make_executor(jobs: int):
    """Pick an executor for the requested parallelism (``jobs <= 1`` → serial)."""

    if jobs <= 1:
        return SerialExecutor()
    return ProcessPoolExecutor(jobs)
