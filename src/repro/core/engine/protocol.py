"""Line-oriented JSON protocol between campaign coordinator and workers.

One message per ``\\n``-terminated line, UTF-8 JSON objects, strict
request/response over a plain TCP connection: the worker writes one
request line and reads exactly one response line.  The framing is the
same as the JSONL artifact store's on purpose — a streamed outcome line
is byte-compatible with a stored outcome payload, and a torn line (a
worker killed mid-write, a connection dropped mid-line) is detected the
same way: it fails to decode and is discarded without poisoning the
stream.

Requests (worker → coordinator)::

    {"op": "hello",     "worker": W}
    {"op": "lease",     "worker": W}
    {"op": "heartbeat", "worker": W, "lease": L}
    {"op": "outcome",   "worker": W, "lease": L, "outcome": {...}}
    {"op": "complete",  "worker": W, "lease": L}
    {"op": "status"}
    {"op": "bye",       "worker": W}

Responses (coordinator → worker) always carry ``"ok"``; a lease response
carries either a lease grant (``lease`` + serialized ``units``), a
``retry_in`` backoff (backpressure: the worker holds too many live
leases, or the coordinator's outcome buffer is full, or every remaining
unit is leased to someone else), or ``drained: true`` (every unit of the
phase is done — the worker can exit).

The protocol is deliberately coordination-free about *content*: a lease
ships the full serialized units (a few hundred bytes — units carry only
the generator config and defect set; programs are regenerated worker-side
from sha256-derived per-index seeds), so a worker needs no prior campaign
state, and any worker can execute any range.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, Optional, Tuple

#: Protocol-level limits.  A request line above the cap is rejected before
#: JSON decoding: outcomes embed program sources (KBs), never MBs — an
#: oversized line is a bug or garbage, not data.
MAX_LINE_BYTES = 8 * 1024 * 1024

OP_HELLO = "hello"
OP_LEASE = "lease"
OP_HEARTBEAT = "heartbeat"
OP_OUTCOME = "outcome"
OP_COMPLETE = "complete"
OP_STATUS = "status"
OP_BYE = "bye"


def encode(message: Dict) -> bytes:
    """One wire line for ``message`` (compact JSON + newline)."""

    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode(line: bytes) -> Optional[Dict]:
    """Parse one wire line; ``None`` for torn/garbage/oversized lines."""

    if not line or len(line) > MAX_LINE_BYTES:
        return None
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    return message if isinstance(message, dict) else None


class MessageStream:
    """Blocking line-framed JSON messages over a connected socket.

    ``recv()`` returns ``None`` on a cleanly closed peer *and* on a torn
    trailing line (peer died mid-write) — both mean "this conversation is
    over"; a torn line in the middle of a stream decodes to ``None`` and
    is surfaced as ``{"_torn": True}`` so servers can count it and keep
    the connection (the byte stream re-synchronises at the next newline).
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._buffer = b""

    def send(self, message: Dict) -> int:
        """Write one message; returns the number of bytes put on the wire."""

        payload = encode(message)
        self._sock.sendall(payload)
        return len(payload)

    def recv(self) -> Optional[Dict]:
        while b"\n" not in self._buffer:
            try:
                chunk = self._sock.recv(65536)
            except OSError:
                return None
            if not chunk:
                # Peer gone.  Whatever is buffered is a torn final line.
                self._buffer = b""
                return None
            self._buffer += chunk
            if len(self._buffer) > MAX_LINE_BYTES:
                return None
        line, self._buffer = self._buffer.split(b"\n", 1)
        message = decode(line)
        if message is None:
            return {"_torn": True, "_bytes": len(line)}
        message["_bytes"] = len(line) + 1
        return message

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


def connect(host: str, port: int, timeout: Optional[float] = None) -> MessageStream:
    """Dial the coordinator and wrap the connection in a message stream."""

    sock = socket.create_connection((host, port), timeout=timeout)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return MessageStream(sock)


def parse_address(address: str, default_host: str = "127.0.0.1") -> Tuple[str, int]:
    """``"host:port"`` / ``":port"`` / ``"port"`` → ``(host, port)``."""

    text = address.strip()
    if ":" in text:
        host, _, port_text = text.rpartition(":")
        host = host or default_host
    else:
        host, port_text = default_host, text
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ValueError(f"invalid coordinator address {address!r}") from exc
    return host, port
