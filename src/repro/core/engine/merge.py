"""Deterministic merge of unit outcomes into campaign-level results.

Workers return raw findings; this module turns them into deduplicated
:class:`~repro.core.bugs.BugReport` records and aggregate statistics.  Two
properties make the merge scheduler-independent:

* reports are filed per-identifier by the *minimal* ``(program_index,
  platform rank, finding index)`` origin, so the deduplication picks the
  same representative trigger program no matter which worker finished
  first (equivalent to sorting all outcomes up front, but computable
  incrementally as shards stream in), and
* attribution (mapping a finding onto an enabled seeded defect) uses only
  the finding record and the campaign-wide enabled set — no worker state.
  Workers that bisected a semantic finding down to individual defects ship
  the result in ``FindingRecord.attributed_bugs``; the merge then files one
  report per attributed defect instead of guessing a single platform-level
  culprit.

The merger is *incremental*: ``add()`` folds one outcome at a time (scalar
tallies are order-independent sums; report candidates keep a running
per-identifier winner) and ``finalize()`` files the winners in their
canonical order.  The distributed coordinator calls ``add()`` as shards
stream in; ``merge()`` keeps the one-shot convenience API on top of the
same two steps, so ``jobs=1``, a local pool, and a worker fleet produce
byte-identical reports.

Per-worker observability counters (solver STATS, validation/testgen cache
hits) are summed into :attr:`CampaignStatistics.counters` so campaign
benchmarks stay truthful when the work is sharded across processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.compiler.bugs import (
    BUG_CATALOG,
    KIND_CRASH,
    LOCATION_BACKEND,
    LOCATION_FRONTEND,
    LOCATION_MIDEND,
    SeededBug,
)
from repro.core.bugs import BugKind, BugLocation, BugReport, BugStatus, BugTracker
from repro.core.engine.units import (
    FINDING_CRASH,
    FINDING_INVALID,
    STATUS_ORACLE_ERROR,
    STATUS_REJECTED,
    TRIAGE_REDUCED,
    FindingRecord,
    TriageOutcome,
    UnitOutcome,
)

_LOCATION_MAP = {
    LOCATION_FRONTEND: BugLocation.FRONT_END,
    LOCATION_MIDEND: BugLocation.MID_END,
    LOCATION_BACKEND: BugLocation.BACK_END,
}

#: Pass name -> location, used to localise findings that are not attributed
#: to a seeded defect.
_PASS_LOCATIONS = {
    "TypeChecking": BugLocation.FRONT_END,
    "SimplifyDefUse": BugLocation.FRONT_END,
    "InlineFunctions": BugLocation.FRONT_END,
    "RemoveActionParameters": BugLocation.FRONT_END,
    "ParserGraphs": BugLocation.FRONT_END,
    "TypeCheckingPost": BugLocation.MID_END,
    "CheckNoFunctionCalls": BugLocation.MID_END,
    "HeaderStackFlattening": BugLocation.MID_END,
    "StatefulLowering": BugLocation.MID_END,
    "ConstantFolding": BugLocation.MID_END,
    "StrengthReduction": BugLocation.MID_END,
    "Predication": BugLocation.MID_END,
    "LocalCopyPropagation": BugLocation.MID_END,
    "DeadCodeElimination": BugLocation.MID_END,
    "SimplifyControlFlow": BugLocation.MID_END,
}

_KIND_MAP = {
    FINDING_CRASH: BugKind.CRASH,
    FINDING_INVALID: BugKind.INVALID_TRANSFORMATION,
}

#: Coverage cells land in :attr:`CampaignStatistics.counters` under this
#: prefix, so they ride the exact same merge/serialisation path as the
#: solver and cache counters while staying separable on the way out
#: (:meth:`CampaignStatistics.coverage`).
COVERAGE_COUNTER_PREFIX = "cov_"


@dataclass
class TriageSource:
    """Where a deduplicated report came from — the input of its triage unit.

    Recorded by the merger for the *winning* (first filed) finding of each
    identifier; since outcomes are sorted before filing, the provenance —
    and therefore the whole triage stage — is scheduler-independent.
    """

    identifier: str
    program_index: int
    platform: str
    source: str
    finding: FindingRecord


@dataclass
class CampaignStatistics:
    """Aggregate results of one campaign run."""

    programs_generated: int = 0
    programs_rejected: int = 0
    oracle_errors: int = 0
    crash_findings: int = 0
    semantic_findings: int = 0
    tracker: BugTracker = field(default_factory=BugTracker)
    #: Summed worker observability deltas (``solver_*`` STATS, validation
    #: and testgen cache hits/misses).  Totals reflect the work actually
    #: performed, so they vary with executor/cache locality — unlike the
    #: tracker, which is executor-invariant.
    counters: Dict[str, int] = field(default_factory=dict)
    #: How many work units the campaign comprised, and how many were
    #: served from the artifact store instead of being recomputed.
    units_total: int = 0
    units_reused: int = 0
    #: Triage stage bookkeeping (``reduce=True`` campaigns): one reduction
    #: per deduplicated report, and how many came out of the store.
    triage_total: int = 0
    triage_reused: int = 0

    def coverage(self) -> Dict[str, int]:
        """Merged pipeline-coverage cells, without the ``cov_`` prefix.

        Unlike the raw worker counters, coverage is a pure function of the
        unit set — reused (store-resumed) outcomes contribute theirs too —
        so this aggregate is identical at any job count and across resumes.
        """

        return {
            key[len(COVERAGE_COUNTER_PREFIX):]: value
            for key, value in self.counters.items()
            if key.startswith(COVERAGE_COUNTER_PREFIX)
        }

    def summary_table(self) -> Dict:
        return self.tracker.summary_table()

    def location_table(self) -> Dict:
        return self.tracker.location_table()

    def mean_reduction_ratio(self) -> float:
        """Mean statement-count reduction over the triaged reports."""

        ratios = [
            report.reduction_ratio
            for report in self.tracker.reports
            if report.reduced_source
        ]
        if not ratios:
            return 0.0
        return sum(ratios) / len(ratios)


class OutcomeMerger:
    """Fold unit outcomes (streamed in any order) into deduplicated reports."""

    def __init__(self, enabled_bugs: Iterable[str]) -> None:
        self.enabled = set(enabled_bugs)
        #: identifier -> winning finding's origin, for the triage stage.
        self.provenance: Dict[str, TriageSource] = {}
        #: identifier -> (origin order, report, provenance).  The origin
        #: order is ``(outcome.sort_key(), finding index, report index)``;
        #: keeping the minimum per identifier is exactly what filing
        #: globally-sorted outcomes into a first-report-wins tracker did,
        #: but works one outcome at a time.
        self._winners: Dict[str, Tuple[Tuple, BugReport, TriageSource]] = {}

    # -- entry points ----------------------------------------------------------

    def merge(
        self, outcomes: Iterable[UnitOutcome], statistics: CampaignStatistics
    ) -> CampaignStatistics:
        """One-shot convenience wrapper over ``add`` + ``finalize``."""

        for outcome in outcomes:
            self.add(outcome, statistics)
        return self.finalize(statistics)

    def add(self, outcome: UnitOutcome, statistics: CampaignStatistics) -> None:
        """Fold one outcome; safe to call in any (e.g. streaming) order.

        Must be called exactly once per unit — the caller's dedup
        (:class:`~repro.core.engine.store.OutcomeDedup`) guarantees that
        for at-least-once transports.
        """

        if outcome.status == STATUS_REJECTED:
            statistics.programs_rejected += 1
        elif outcome.status == STATUS_ORACLE_ERROR:
            statistics.oracle_errors += 1
        for finding_index, finding in enumerate(outcome.findings):
            if finding.kind == FINDING_CRASH:
                statistics.crash_findings += 1
            else:
                statistics.semantic_findings += 1
            for report_index, report in enumerate(
                self._to_reports(finding, outcome.source)
            ):
                order = (outcome.sort_key(), finding_index, report_index)
                current = self._winners.get(report.identifier)
                if current is not None and current[0] <= order:
                    continue
                self._winners[report.identifier] = (
                    order,
                    report,
                    TriageSource(
                        identifier=report.identifier,
                        program_index=outcome.program_index,
                        platform=outcome.platform,
                        source=outcome.source,
                        finding=finding,
                    ),
                )
        for key, value in outcome.counters.items():
            statistics.counters[key] = statistics.counters.get(key, 0) + value
        for cell, value in outcome.coverage.items():
            key = COVERAGE_COUNTER_PREFIX + cell
            statistics.counters[key] = statistics.counters.get(key, 0) + value

    def finalize(self, statistics: CampaignStatistics) -> CampaignStatistics:
        """File the per-identifier winners in canonical origin order."""

        for order, report, source in sorted(
            self._winners.values(), key=lambda entry: entry[0]
        ):
            if statistics.tracker.file(report):
                self.provenance[report.identifier] = source
        self._winners.clear()
        return statistics

    # -- attribution -----------------------------------------------------------

    def _attribute(self, finding: FindingRecord) -> Optional[SeededBug]:
        """Best-effort attribution of a finding to an enabled seeded defect."""

        # Sorted for determinism: the legacy loop iterated a set, so the
        # platform-fallback attribution below depended on hash order.
        candidates = [BUG_CATALOG[bug_id] for bug_id in sorted(self.enabled)]
        expected_kind = KIND_CRASH if finding.kind == FINDING_CRASH else "semantic"
        for bug in candidates:
            if bug.pass_name == finding.pass_name and bug.kind == expected_kind:
                return bug
        for bug in candidates:
            if bug.platform == finding.platform and bug.kind == expected_kind:
                return bug
        return None

    def _to_reports(self, finding: FindingRecord, source: str) -> List[BugReport]:
        """All reports one finding files — usually one, more when bisected.

        A backend semantic finding whose worker bisected the enabled defect
        set (``attributed_bugs``) files one report per implicated defect:
        a packet mismatch caused by two independent seeded defects is two
        bugs, and collapsing them to a single platform-level guess is
        exactly the attribution error the bisection exists to remove.
        """

        if finding.attributed_bugs and finding.kind not in _KIND_MAP:
            reports = []
            for bug_id in finding.attributed_bugs:
                bug = BUG_CATALOG.get(bug_id)
                if bug is None:
                    continue
                reports.append(
                    BugReport(
                        identifier=f"{finding.platform}:{bug_id}",
                        kind=BugKind.SEMANTIC,
                        platform=finding.platform,
                        location=_LOCATION_MAP[bug.location],
                        pass_name=finding.pass_name,
                        description=finding.description,
                        status=BugStatus.CONFIRMED,
                        trigger_source=source,
                        witness=dict(finding.witness),
                        seeded_bug_id=bug_id,
                    )
                )
            if reports:
                return reports
        return [self._to_report(finding, source)]

    def _to_report(self, finding: FindingRecord, source: str) -> BugReport:
        seeded = self._attribute(finding)
        kind = _KIND_MAP.get(finding.kind, BugKind.SEMANTIC)
        if seeded is not None:
            identifier = f"{finding.platform}:{seeded.bug_id}"
            location = _LOCATION_MAP[seeded.location]
        elif finding.kind == FINDING_CRASH:
            identifier = f"{finding.platform}:{finding.signature}"
            location = _PASS_LOCATIONS.get(finding.pass_name, BugLocation.BACK_END)
        else:
            identifier = f"{finding.platform}:{kind.value}:{finding.pass_name}"
            location = _PASS_LOCATIONS.get(finding.pass_name, BugLocation.BACK_END)
        return BugReport(
            identifier=identifier,
            kind=kind,
            platform=finding.platform,
            location=location,
            pass_name=finding.pass_name,
            description=finding.description,
            status=BugStatus.CONFIRMED,
            trigger_source=source,
            witness=dict(finding.witness),
            seeded_bug_id=seeded.bug_id if seeded else None,
        )


def apply_triage(
    statistics: CampaignStatistics, outcomes: Iterable[TriageOutcome]
) -> None:
    """Fold triage outcomes onto the filed reports, scheduler-independent.

    Outcomes are sorted by report identifier before application (one
    outcome per identifier, so the sort fully determines the result) and
    each one decorates its report in place.  An unreproduced reduction
    leaves the report exactly as the merge filed it — the original trigger
    is still correct, just not minimized.
    """

    for outcome in sorted(outcomes, key=lambda entry: entry.identifier):
        report = statistics.tracker.get(outcome.identifier)
        if report is None or outcome.status != TRIAGE_REDUCED:
            continue
        report.reduced_source = outcome.reduced_source
        report.reduction_ratio = round(outcome.reduction_ratio, 4)
        report.reduction_rounds = outcome.rounds
        report.localized_pass = outcome.localized_pass
        report.pass_pair = outcome.pass_pair
        if outcome.min_sequence_length > 0:
            report.sequence_length = outcome.min_sequence_length
