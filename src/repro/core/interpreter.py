"""Symbolic interpreter: convert P4 programmable blocks into SMT formulas.

This is the reproduction of §5.2 of the paper.  Every programmable block
(each control, and the parser) is turned into a functional form: a mapping
from symbolic inputs (the ``inout``/``in`` parameters, symbolic table keys,
action choices and action data) to symbolic outputs (the ``inout``/``out``
parameters after the block runs).

Key modelling decisions (shared with :mod:`repro.targets.execution` so the
oracle and the targets agree on defined behaviour):

* **Tables** are interpreted fully symbolically (figure 3): one symbolic key
  per key expression, one symbolic action selector per table, and one
  symbolic argument per action data parameter.
* **Header validity** is a symbolic Boolean per header instance.  Reading a
  field of an invalid header yields a *deterministic* undefined symbol
  (``undef_<path>``), writing a field of an invalid header is a no-op, and
  ``setValid``/``setInvalid`` only toggle the validity bit.  Deterministic
  undefined symbols keep translation validation free of false alarms when a
  pass merely reorders undefined reads.
* **exit/return** are modelled by guarding every write with an "active"
  condition, so the interpreter produces a single merged formula per output
  instead of enumerating paths (the path view needed for test generation is
  recorded separately as branch decisions).
* **Copy-in/copy-out** is applied to function and action calls exactly as
  the specification demands; this is where many of p4c's historical bugs
  lived, so the oracle must get it right.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import smt
from repro.p4 import ast
from repro.p4 import stacks as stack_lowering
from repro.p4.registers import COUNTER_WIDTH, STATE_INDEX_WIDTH
from repro.p4.stacks import NEXT_INDEX_WIDTH
from repro.p4.typecheck import TypeCheckError, check_program
from repro.p4.types import (
    BitType,
    BoolType,
    HeaderStackType,
    HeaderType,
    P4Type,
    StructType,
)
from repro.smt.terms import Term


class InterpreterError(Exception):
    """Raised when the interpreter cannot model a program construct."""


@dataclass
class TableInfo:
    """Metadata about one symbolic table application (used by testgen)."""

    table: str
    key_symbols: List[str]
    key_widths: List[int]
    action_symbol: str
    #: Action names in selection order; index ``i + 1`` selects ``actions[i]``.
    actions: List[str]
    default_action: str
    #: Per action: list of (symbol name, width) for its data parameters.
    action_args: Dict[str, List[Tuple[str, int]]] = field(default_factory=dict)


@dataclass
class BlockSemantics:
    """The functional form of one programmable block."""

    block: str
    #: Output terms keyed by dotted path (``h.a``, ``h.$valid`` ...).
    outputs: Dict[str, Term]
    #: Input symbols keyed by path (header fields, validity bits).
    inputs: Dict[str, Term]
    #: Symbolic table metadata, in application order.
    tables: List[TableInfo]
    #: Branch conditions encountered, in program order (for path enumeration).
    branch_conditions: List[Term]
    #: Path conditions under which parser-loop unrolling exhausted its
    #: budget.  On such paths the symbolic model *under-approximates* the
    #: parser (the concrete target keeps iterating), so any consumer that
    #: compares against real execution -- the packet-test oracle -- must
    #: exclude them (paper §5.2: a false alarm is an interpreter bug).
    #: Translation validation is unaffected: both snapshots are modelled
    #: with the same budget, so the approximation cancels out.
    parser_overflows: List[Term] = field(default_factory=list)
    #: Initial register/counter cell terms keyed by internal state path
    #: (``$state.<bank>[<i>]``).  Fresh symbols when the block is interpreted
    #: standalone (translation validation then quantifies over every initial
    #: state); the previous packet's final-state terms inside a sequence.
    state_inputs: Dict[str, Term] = field(default_factory=dict)
    #: Final register/counter cell terms, same keys as ``state_inputs``.
    #: State-aware equivalence compares these alongside ``outputs``.
    state_outputs: Dict[str, Term] = field(default_factory=dict)

    def output_tuple(self) -> Tuple[Tuple[str, Term], ...]:
        return tuple(sorted(self.outputs.items()))

    def free_symbols(self) -> List[Term]:
        symbols: Dict[str, Term] = {}
        for term in self.outputs.values():
            for symbol in term.symbols():
                symbols[symbol.name] = symbol
        for term in self.state_outputs.values():
            for symbol in term.symbols():
                symbols[symbol.name] = symbol
        return list(symbols.values())


class _Environment:
    """A mutable mapping from paths/locals to terms, copyable for branches."""

    def __init__(self) -> None:
        self.values: Dict[str, Term] = {}
        self.widths: Dict[str, Optional[int]] = {}

    def copy(self) -> "_Environment":
        out = _Environment()
        out.values = dict(self.values)
        out.widths = dict(self.widths)
        return out

    def set(self, path: str, term: Term, width: Optional[int]) -> None:
        self.values[path] = term
        self.widths[path] = width

    def get(self, path: str) -> Term:
        return self.values[path]

    def __contains__(self, path: str) -> bool:
        return path in self.values


def _merge(cond: Term, then_env: _Environment, else_env: _Environment) -> _Environment:
    """Merge two branch environments under a condition."""

    merged = _Environment()
    keys = set(then_env.values) | set(else_env.values)
    for key in keys:
        then_term = then_env.values.get(key)
        else_term = else_env.values.get(key)
        if then_term is None:
            merged.values[key] = else_term
        elif else_term is None:
            merged.values[key] = then_term
        elif then_term == else_term:
            merged.values[key] = then_term
        else:
            merged.values[key] = smt.Ite(cond, then_term, else_term)
        merged.widths[key] = then_env.widths.get(key, else_env.widths.get(key))
    return merged


class SymbolicInterpreter:
    """Interpret programs from the subset into SMT formulas."""

    MAX_PARSER_UNROLL = 16

    def __init__(self, program: ast.Program) -> None:
        self.program = program
        try:
            self.checker = check_program(program)
        except TypeCheckError as exc:
            raise InterpreterError(f"cannot interpret an ill-typed program: {exc}") from exc
        self.functions = {function.name: function for function in program.functions()}

    # -- public API ---------------------------------------------------------

    def interpret(self) -> Dict[str, BlockSemantics]:
        """Interpret every programmable block of the program."""

        semantics: Dict[str, BlockSemantics] = {}
        for parser in self.program.parsers():
            semantics[parser.name] = self.interpret_parser(parser)
        for control in self.program.controls():
            semantics[control.name] = self.interpret_control(control)
        return semantics

    def interpret_pipeline(
        self,
        state_bindings: Optional[Dict[str, Term]] = None,
        symbol_suffix: str = "",
    ) -> BlockSemantics:
        """Interpret the parser (if any) and the ingress control as one pipeline.

        This is the view the symbolic-execution test generator needs: the
        end-to-end input/output relation a target exposes to packet tests.

        ``state_bindings`` seeds the register/counter cells: ``None`` gives
        every cell a fresh input symbol (the standalone view), a dict binds
        cells to the given terms with missing cells zero-filled (packet 0 of
        a sequence passes ``{}`` for the power-on state, packet ``i + 1``
        passes packet ``i``'s ``state_outputs``).  ``symbol_suffix`` is
        appended to every input/undef symbol name so the packets of a
        sequence draw independent inputs.  Table key/action/argument symbols
        are *not* suffixed: the control plane is installed once per sequence,
        so every packet must match against the same symbolic entries.
        """

        controls = self.program.controls()
        if not controls:
            raise InterpreterError("program has no control block")
        ingress = controls[0]
        state = _BlockState(
            self, ingress, symbol_suffix=symbol_suffix, state_bindings=state_bindings
        )
        state.initialise_parameters(ingress.params)
        for parser in self.program.parsers():
            state.execute_parser(parser)
        for local in ingress.locals:
            if isinstance(local, ast.VariableDeclaration):
                state.execute_statement(local)
        state.execute_statement(ingress.apply)
        return state.finish("pipeline", ingress.params)

    def interpret_sequence(self, length: int) -> List[BlockSemantics]:
        """Interpret a ``length``-packet sequence through the pipeline.

        Packet 0 starts from the all-zero power-on state; packet ``i + 1``'s
        cells are bound to packet ``i``'s final-state terms, so one solver
        over the concatenated constraints picks inputs for the whole
        sequence.  Symbols are suffixed ``@<i>`` per packet.  For a
        stateless program every packet is independent and the result is
        just ``length`` renamed copies of the pipeline semantics.
        """

        if length <= 0:
            raise InterpreterError("sequence length must be positive")
        semantics: List[BlockSemantics] = []
        bindings: Dict[str, Term] = {}
        for index in range(length):
            suffix = f"@{index}" if length > 1 else ""
            packet = self.interpret_pipeline(
                state_bindings=bindings, symbol_suffix=suffix
            )
            bindings = dict(packet.state_outputs)
            semantics.append(packet)
        return semantics

    def interpret_control(self, control: ast.ControlDeclaration) -> BlockSemantics:
        state = _BlockState(self, control)
        state.initialise_parameters(control.params)
        for local in control.locals:
            if isinstance(local, ast.VariableDeclaration):
                state.execute_statement(local)
        state.execute_statement(control.apply)
        return state.finish(control.name, control.params)

    def interpret_parser(self, parser: ast.ParserDeclaration) -> BlockSemantics:
        state = _BlockState(self, None)
        state.initialise_parameters(parser.params)
        state.execute_parser(parser)
        return state.finish(parser.name, parser.params)

    # -- helpers shared with _BlockState ----------------------------------------

    def resolve_type(self, type_ref: P4Type) -> P4Type:
        return self.checker.types.resolve(type_ref)


class _BlockState:
    """Interpretation state for one programmable block."""

    def __init__(
        self,
        interpreter: SymbolicInterpreter,
        control: Optional[ast.ControlDeclaration],
        symbol_suffix: str = "",
        state_bindings: Optional[Dict[str, Term]] = None,
    ) -> None:
        self.interpreter = interpreter
        self.control = control
        self.symbol_suffix = symbol_suffix
        self.state_bindings = state_bindings
        self.env = _Environment()
        self.inputs: Dict[str, Term] = {}
        self.tables: List[TableInfo] = []
        self.branch_conditions: List[Term] = []
        self.parser_overflows: List[Term] = []
        self.header_types: Dict[str, HeaderType] = {}
        #: Header-stack struct fields: field name -> (element type, size).
        #: Elements are addressed as ``<field>[<i>]`` paths; the per-stack
        #: ``nextIndex`` counter lives in the environment under the internal
        #: ``<field>.$nextIndex`` path (never an input or an output).
        self.stacks: Dict[str, Tuple[HeaderType, int]] = {}
        #: Register/counter banks: name -> (cell width, bank size).  Cells
        #: live in the environment under internal ``$state.<name>[<i>]``
        #: paths; counters are 32-bit register banks whose ``count`` is a
        #: read-modify-write increment (see repro.p4.registers).
        self.state_banks: Dict[str, Tuple[int, int]] = {}
        self.state_inputs: Dict[str, Term] = {}
        self.struct_paths: List[str] = []
        self.actions: Dict[str, ast.ActionDeclaration] = {}
        self.table_decls: Dict[str, ast.TableDeclaration] = {}
        self._call_depth = 0
        if control is not None:
            for local in control.locals:
                if isinstance(local, ast.ActionDeclaration):
                    self.actions[local.name] = local
                elif isinstance(local, ast.TableDeclaration):
                    self.table_decls[local.name] = local
                elif isinstance(local, ast.RegisterDeclaration):
                    self.state_banks[local.name] = (local.width, local.size)
                elif isinstance(local, ast.CounterDeclaration):
                    self.state_banks[local.name] = (COUNTER_WIDTH, local.size)

    def _sym(self, name: str) -> str:
        """Symbol name with the per-packet suffix applied."""

        return f"{name}{self.symbol_suffix}" if self.symbol_suffix else name

    # -- parameter initialisation ----------------------------------------------------

    def initialise_parameters(self, params: Sequence[ast.Parameter]) -> None:
        self.env.set("$active", smt.BoolVal(True), None)
        for param in params:
            param_type = self.interpreter.resolve_type(param.param_type)
            if isinstance(param_type, StructType):
                self._initialise_struct(param.name, param_type, param)
            elif isinstance(param_type, BitType):
                self._initialise_scalar(param.name, param_type.width, param)
            elif isinstance(param_type, BoolType):
                symbol = smt.BoolSym(self._sym(param.name))
                if param.direction == "out":
                    symbol = smt.BoolSym(self._sym(f"undef_{param.name}"))
                self.env.set(param.name, symbol, None)
                self.inputs[param.name] = symbol
            else:
                raise InterpreterError(f"unsupported parameter type {param_type}")
        self._initialise_state()

    def _initialise_state(self) -> None:
        """Seed every register/counter cell with its initial term.

        Standalone interpretation (``state_bindings is None``) gives each
        cell a fresh input symbol named after its state path, so both
        snapshots of a translation-validation pair share the symbols and
        equivalence quantifies over *every* initial state.  Sequence
        interpretation passes bound terms; cells absent from the bindings
        start at the zeroed power-on value.
        """

        for name, (width, size) in self.state_banks.items():
            for index in range(size):
                path = f"$state.{name}[{index}]"
                if self.state_bindings is None:
                    term: Term = smt.BitVecSym(self._sym(path), width)
                else:
                    term = self.state_bindings.get(path, smt.BitVecVal(0, width))
                self.env.set(path, term, width)
                self.state_inputs[path] = term

    def _initialise_struct(self, prefix: str, struct: StructType, param: ast.Parameter) -> None:
        # The struct parameter itself is addressed through its fields; the
        # root name is remembered so member lookups can strip it.
        self.struct_paths.append(prefix)
        for field_name, field_type in struct.fields:
            resolved = self.interpreter.resolve_type(field_type)
            if isinstance(resolved, HeaderType):
                self._initialise_header_instance(field_name, resolved)
            elif isinstance(resolved, HeaderStackType):
                element_type = self.interpreter.resolve_type(resolved.element)
                if not isinstance(element_type, HeaderType):
                    raise InterpreterError(
                        f"stack {field_name!r} has a non-header element type"
                    )
                self.stacks[field_name] = (element_type, resolved.size)
                for index in range(resolved.size):
                    self._initialise_header_instance(
                        f"{field_name}[{index}]", element_type
                    )
                # nextIndex is deterministic interpreter state, not an input.
                self.env.set(
                    f"{field_name}.$nextIndex",
                    smt.BitVecVal(0, NEXT_INDEX_WIDTH),
                    NEXT_INDEX_WIDTH,
                )
            elif isinstance(resolved, BitType):
                symbol = smt.BitVecSym(self._sym(field_name), resolved.width)
                self.env.set(field_name, symbol, resolved.width)
                self.inputs[field_name] = symbol
            elif isinstance(resolved, BoolType):
                symbol = smt.BoolSym(self._sym(field_name))
                self.env.set(field_name, symbol, None)
                self.inputs[field_name] = symbol
            else:
                raise InterpreterError(f"unsupported struct field type {resolved}")

    def _initialise_header_instance(self, header_path: str, header_type: HeaderType) -> None:
        self.header_types[header_path] = header_type
        valid_sym = smt.BoolSym(self._sym(f"{header_path}.$valid"))
        self.env.set(f"{header_path}.$valid", valid_sym, None)
        self.inputs[f"{header_path}.$valid"] = valid_sym
        for sub_field, sub_type in header_type.fields:
            path = f"{header_path}.{sub_field}"
            symbol = smt.BitVecSym(self._sym(path), sub_type.width)
            self.env.set(path, symbol, sub_type.width)
            self.inputs[path] = symbol

    def _initialise_scalar(self, name: str, width: int, param: ast.Parameter) -> None:
        if param.direction == "out":
            symbol = smt.BitVecSym(self._sym(f"undef_{name}"), width)
        else:
            symbol = smt.BitVecSym(self._sym(name), width)
        self.env.set(name, symbol, width)
        self.inputs[name] = symbol

    # -- finishing --------------------------------------------------------------------

    def finish(self, block_name: str, params: Sequence[ast.Parameter]) -> BlockSemantics:
        outputs: Dict[str, Term] = {}
        for param in params:
            if not param.is_writable and param.direction != "":
                continue
            param_type = self.interpreter.resolve_type(param.param_type)
            if isinstance(param_type, StructType):
                for field_name, field_type in param_type.fields:
                    resolved = self.interpreter.resolve_type(field_type)
                    if isinstance(resolved, HeaderType):
                        self._finish_header(field_name, resolved, outputs)
                    elif isinstance(resolved, HeaderStackType):
                        # Every element is observable; nextIndex is not.
                        element_type = self.interpreter.resolve_type(resolved.element)
                        for index in range(resolved.size):
                            self._finish_header(
                                f"{field_name}[{index}]", element_type, outputs
                            )
                    else:
                        outputs[field_name] = smt.simplify(self.env.get(field_name))
            else:
                outputs[param.name] = smt.simplify(self.env.get(param.name))
        state_outputs = {
            path: smt.simplify(self.env.get(path)) for path in self.state_inputs
        }
        return BlockSemantics(
            block=block_name,
            outputs=outputs,
            inputs=dict(self.inputs),
            tables=self.tables,
            branch_conditions=self.branch_conditions,
            parser_overflows=self.parser_overflows,
            state_inputs=dict(self.state_inputs),
            state_outputs=state_outputs,
        )

    def _finish_header(
        self, header_path: str, header_type: HeaderType, outputs: Dict[str, Term]
    ) -> None:
        valid_path = f"{header_path}.$valid"
        valid_term = self.env.get(valid_path)
        outputs[valid_path] = smt.simplify(valid_term)
        for sub_field, _sub_type in header_type.fields:
            path = f"{header_path}.{sub_field}"
            # An invalid output header exposes no field values (paper: "all
            # fields in the header are set to invalid as well"); fields
            # collapse to a fixed "invalid" marker so equivalent programs
            # that differ only on dead fields stay equivalent.
            field_term = smt.Ite(
                valid_term,
                self.env.get(path),
                smt.BitVecVal(0, self.env.widths[path] or 1),
            )
            outputs[path] = smt.simplify(field_term)

    # -- value helpers -------------------------------------------------------------------

    def _active(self) -> Term:
        return self.env.get("$active")

    def _undef(self, path: str, width: Optional[int]) -> Term:
        if width is None:
            return smt.BoolSym(self._sym(f"undef_{path}"))
        return smt.BitVecSym(self._sym(f"undef_{path}"), width)

    def _header_of_path(self, path: str) -> Optional[str]:
        if "." in path:
            root = path.split(".", 1)[0]
            if root in self.header_types:
                return root
        return None

    # -- statements ------------------------------------------------------------------------

    def execute_statement(self, statement: ast.Statement) -> None:
        if isinstance(statement, ast.BlockStatement):
            for child in statement.statements:
                self.execute_statement(child)
        elif isinstance(statement, ast.VariableDeclaration):
            self._declare_variable(statement)
        elif isinstance(statement, ast.AssignmentStatement):
            self._assign(statement.lhs, self.evaluate(statement.rhs))
        elif isinstance(statement, ast.IfStatement):
            self._execute_if(statement)
        elif isinstance(statement, ast.MethodCallStatement):
            self._execute_call(statement.call)
        elif isinstance(statement, ast.ExitStatement):
            self.env.set("$active", smt.BoolVal(False), None)
        elif isinstance(statement, ast.ReturnStatement):
            self._execute_return(statement)
        elif isinstance(statement, ast.EmptyStatement):
            return
        else:
            raise InterpreterError(f"cannot interpret statement {type(statement).__name__}")

    def _declare_variable(self, statement: ast.VariableDeclaration) -> None:
        var_type = self.interpreter.resolve_type(statement.var_type)
        if isinstance(var_type, BitType):
            width: Optional[int] = var_type.width
        elif isinstance(var_type, BoolType):
            width = None
        else:
            raise InterpreterError(f"unsupported local type {var_type}")
        if statement.initializer is not None:
            value = self._coerce(self.evaluate(statement.initializer), width)
        else:
            value = self._undef(statement.name, width)
        self.env.set(statement.name, value, width)

    def _coerce(self, term: Term, width: Optional[int]) -> Term:
        if width is None:
            return term
        if term.sort.is_bool():
            return smt.Ite(term, smt.BitVecVal(1, width), smt.BitVecVal(0, width))
        if term.width == width:
            return term
        if term.width > width:
            return smt.Extract(width - 1, 0, term)
        return smt.ZeroExt(width - term.width, term)

    def _execute_if(self, statement: ast.IfStatement) -> None:
        cond = self._as_bool(self.evaluate(statement.cond))
        if not getattr(self, "_in_stack_lowering", False):
            # Lowered stack shifts branch once per element; those conditions
            # are bookkeeping, not program paths worth a test-generation slot.
            self.branch_conditions.append(cond)
        then_state = self.env.copy()
        else_state = self.env.copy()

        saved = self.env
        self.env = then_state
        self.execute_statement(statement.then_branch)
        then_state = self.env

        self.env = else_state
        if statement.else_branch is not None:
            self.execute_statement(statement.else_branch)
        else_state = self.env

        self.env = _merge(cond, then_state, else_state)
        del saved

    def _execute_return(self, statement: ast.ReturnStatement) -> None:
        slot = f"$retval_{self._call_depth}"
        if statement.value is not None:
            value = self.evaluate(statement.value)
            if slot in self.env:
                previous = self.env.get(slot)
                merged = smt.Ite(self._active(), value, previous)
            else:
                merged = value
            self.env.set(slot, merged, None)
        self.env.set("$active", smt.BoolVal(False), None)

    # -- l-values ---------------------------------------------------------------------------

    def _assign(self, lhs: ast.Expression, value: Term) -> None:
        if isinstance(lhs, ast.PathExpression):
            self._guarded_write(lhs.name, value)
            return
        if isinstance(lhs, ast.Member):
            path = self._member_path(lhs)
            if path is None:
                raise InterpreterError(f"cannot resolve l-value {lhs}")
            self._guarded_write(path, value, header=self._header_of_path(path))
            return
        if isinstance(lhs, ast.Slice):
            base_path_expr = lhs.expr
            current = self.evaluate(base_path_expr)
            width = current.width
            slice_width = lhs.high - lhs.low + 1
            coerced = self._coerce(value, slice_width)
            pieces: List[Term] = []
            if lhs.high + 1 <= width - 1:
                pieces.append(smt.Extract(width - 1, lhs.high + 1, current))
            pieces.append(coerced)
            if lhs.low > 0:
                pieces.append(smt.Extract(lhs.low - 1, 0, current))
            new_value = pieces[0] if len(pieces) == 1 else smt.Concat(*pieces)
            self._assign(base_path_expr, new_value)
            return
        raise InterpreterError("unsupported assignment target")

    def _guarded_write(self, path: str, value: Term, header: Optional[str] = None) -> None:
        if path not in self.env:
            raise InterpreterError(f"write to unknown location {path!r}")
        width = self.env.widths.get(path)
        value = self._coerce(value, width)
        old = self.env.get(path)
        guard = self._active()
        if header is not None:
            guard = smt.And(guard, self.env.get(f"{header}.$valid"))
        self.env.set(path, smt.Ite(guard, value, old), width)

    def _member_path(self, expr: ast.Expression) -> Optional[str]:
        """Dotted environment path of an l-value expression.

        Stack elements are addressed with their index in the path, e.g.
        ``hdr.hs[1].a`` resolves to ``hs[1].a`` (the struct root is
        stripped, as for plain headers).
        """

        if isinstance(expr, ast.PathExpression):
            return "" if expr.name in self.struct_paths else expr.name
        if isinstance(expr, ast.Member):
            base = self._member_path(expr.expr)
            if base is None:
                return None
            return f"{base}.{expr.member}" if base else expr.member
        if isinstance(expr, ast.ArrayIndex):
            base = self._member_path(expr.expr)
            if base is None or not isinstance(expr.index, ast.Constant):
                return None
            return f"{base}[{expr.index.value}]"
        return None

    def _stack_of(self, expr: ast.Expression) -> Optional[str]:
        """The stack field name behind ``expr``, when it names a stack."""

        path = self._member_path(expr)
        if path is not None and path in self.stacks:
            return path
        return None

    def _counter_ref(self, stack: str) -> ast.PathExpression:
        """AST reference to a stack's internal ``nextIndex`` counter.

        The environment is keyed by plain strings, so a path expression
        whose "name" is the internal ``<stack>.$nextIndex`` slot reads and
        writes the counter through the ordinary statement machinery -- the
        lowered statement sequences from :mod:`repro.p4.stacks` execute
        unchanged.  The ``$`` keeps it out of any real program's namespace.
        """

        return ast.PathExpression(f"{stack}.$nextIndex")

    # -- calls ------------------------------------------------------------------------------------

    def _execute_call(self, call: ast.MethodCallExpression) -> Optional[Term]:
        target = call.target
        if isinstance(target, ast.Member):
            method = target.member
            if method in ("setValid", "setInvalid"):
                header = self._header_name(target.expr)
                path = f"{header}.$valid"
                new_value = smt.BoolVal(method == "setValid")
                old = self.env.get(path)
                self.env.set(path, smt.Ite(self._active(), new_value, old), None)
                return None
            if method == "isValid":
                header = self._header_name(target.expr)
                return self.env.get(f"{header}.$valid")
            if method == "apply":
                if isinstance(target.expr, ast.PathExpression):
                    self._apply_table(target.expr.name)
                    return None
                raise InterpreterError("apply() on a non-table expression")
            if method in ("extract", "emit"):
                if call.args and isinstance(call.args[0], ast.Member):
                    arg = call.args[0]
                    stack = (
                        self._stack_of(arg.expr) if arg.member == "next" else None
                    )
                    if stack is not None:
                        if method == "extract":
                            self._extract_stack_next(arg.expr, stack)
                        return None
                    header = self._header_name(arg)
                    if method == "extract":
                        path = f"{header}.$valid"
                        self.env.set(
                            path,
                            smt.Ite(self._active(), smt.BoolVal(True), self.env.get(path)),
                            None,
                        )
                return None
            if method in ("push_front", "pop_front"):
                stack = self._stack_of(target.expr)
                if stack is None:
                    raise InterpreterError(f"{method} on a non-stack expression")
                if not call.args or not isinstance(call.args[0], ast.Constant):
                    raise InterpreterError(f"{method} needs a constant count")
                self._run_stack_shift(target.expr, stack, method, call.args[0].value)
                return None
            if method in ("read", "write", "count"):
                self._execute_state_call(method, target, call)
                return None
            raise InterpreterError(f"unknown method {method!r}")
        if isinstance(target, ast.PathExpression):
            if target.name == "NoAction":
                return None
            action = self.actions.get(target.name)
            if action is not None:
                self._invoke_callable(action.params, action.body, call.args, is_function=False)
                return None
            function = self.interpreter.functions.get(target.name)
            if function is not None:
                return self._invoke_callable(
                    function.params, function.body, call.args, is_function=True
                )
            raise InterpreterError(f"call to unknown callee {target.name!r}")
        raise InterpreterError("unsupported call target")

    # -- registers and counters ---------------------------------------------------
    #
    # Per-cell terms, no SMT array theory: a read is an Ite chain over the
    # cells, a write guards every cell with "active and index selects it".
    # ``count`` is *defined* as the read-modify-write increment the
    # StatefulLowering mid-end pass emits (repro.p4.registers), so the
    # native semantics and the correct lowering agree by construction.

    def _execute_state_call(
        self, method: str, target: ast.Member, call: ast.MethodCallExpression
    ) -> None:
        if not (
            isinstance(target.expr, ast.PathExpression)
            and target.expr.name in self.state_banks
        ):
            raise InterpreterError(f"{method} on a non-state expression")
        name = target.expr.name
        width, size = self.state_banks[name]
        if method == "count":
            if len(call.args) != 1:
                raise InterpreterError("count takes exactly one argument")
            index = self._state_index(call.args[0], size)
            current = self._state_read(name, index)
            self._state_write(
                name, index, smt.Add(current, smt.BitVecVal(1, width))
            )
            return
        if method == "read":
            if len(call.args) != 2:
                raise InterpreterError("read takes exactly two arguments")
            index = self._state_index(call.args[1], size)
            self._assign(call.args[0], self._state_read(name, index))
            return
        if len(call.args) != 2:
            raise InterpreterError("write takes exactly two arguments")
        index = self._state_index(call.args[0], size)
        value = self._coerce(self.evaluate(call.args[1]), width)
        self._state_write(name, index, value)

    def _state_index(self, expr: ast.Expression, size: int) -> Term:
        """The effective cell index: normalised to 32 bits, wrapped modulo
        the bank size (the runtime convention for key-derived indices; both
        interpreters and every backend share it)."""

        term = self._coerce(self.evaluate(expr), STATE_INDEX_WIDTH)
        return smt.URem(term, smt.BitVecVal(size, STATE_INDEX_WIDTH))

    def _state_read(self, name: str, index: Term) -> Term:
        _width, size = self.state_banks[name]
        value = self.env.get(f"$state.{name}[{size - 1}]")
        for cell in reversed(range(size - 1)):
            value = smt.Ite(
                smt.Eq(index, smt.BitVecVal(cell, STATE_INDEX_WIDTH)),
                self.env.get(f"$state.{name}[{cell}]"),
                value,
            )
        return value

    def _state_write(self, name: str, index: Term, value: Term) -> None:
        width, size = self.state_banks[name]
        active = self._active()
        for cell in range(size):
            path = f"$state.{name}[{cell}]"
            guard = smt.And(
                active, smt.Eq(index, smt.BitVecVal(cell, STATE_INDEX_WIDTH))
            )
            self.env.set(path, smt.Ite(guard, value, self.env.get(path)), width)

    def _header_name(self, expr: ast.Expression) -> str:
        if isinstance(expr, (ast.Member, ast.ArrayIndex)):
            path = self._member_path(expr)
            if path is not None and path in self.header_types:
                return path
        raise InterpreterError(f"expression {expr} does not name a header instance")

    # -- header stacks -----------------------------------------------------------------------
    #
    # Native stack operations execute the exact scalar-header statement
    # sequences the (correct) HeaderStackFlattening lowering emits, so the
    # native semantics and the lowered program are equivalent by
    # construction (see repro.p4.stacks).

    def _run_stack_shift(
        self, stack_expr: ast.Expression, stack: str, method: str, count: int
    ) -> None:
        element_type, size = self.stacks[stack]
        field_names = element_type.field_names()
        if method == "push_front":
            lowered = stack_lowering.lower_push_front(
                stack_expr, field_names, size, count
            )
        else:
            lowered = stack_lowering.lower_pop_front(
                stack_expr, field_names, size, count
            )
        self._execute_lowered(lowered)

    def _execute_lowered(self, statements: Sequence[ast.Statement]) -> None:
        saved = getattr(self, "_in_stack_lowering", False)
        self._in_stack_lowering = True
        try:
            for statement in statements:
                self.execute_statement(statement)
        finally:
            self._in_stack_lowering = saved

    def _extract_stack_next(self, stack_expr: ast.Expression, stack: str) -> None:
        element_type, size = self.stacks[stack]
        counter = self.env.get(f"{stack}.$nextIndex")
        # Record the path condition under which the extract overruns the
        # stack capacity.  The model keeps stepping with no element left to
        # validate (matching the lowered if-chain, so translation validation
        # is exact), but a concrete target would raise StackOutOfBounds --
        # the packet-test oracle must steer inputs away from these paths,
        # exactly like the unroll-budget overflows.
        overflow = smt.simplify(
            smt.And(
                self._parser_path_cond(),
                smt.Uge(counter, smt.BitVecVal(size, NEXT_INDEX_WIDTH)),
            )
        )
        if overflow != smt.BoolVal(False):
            self.parser_overflows.append(overflow)
        lowered = stack_lowering.lower_extract_next(
            stack_expr, self._counter_ref(stack), size
        )
        self._execute_lowered(lowered)

    def _parser_path_cond(self) -> Term:
        return getattr(self, "_current_path_cond", smt.BoolVal(True))

    def _invoke_callable(
        self,
        params: Sequence[ast.Parameter],
        body: ast.BlockStatement,
        args: Sequence[ast.Expression],
        is_function: bool,
    ) -> Optional[Term]:
        """Copy-in / copy-out invocation of an action or function."""

        self._call_depth += 1
        depth = self._call_depth
        saved_bindings: Dict[str, Tuple[Optional[Term], Optional[int]]] = {}
        copy_out: List[Tuple[ast.Expression, str]] = []

        # Copy-in, left to right (P4-16 §6.7).
        for param, arg in zip(params, args):
            param_type = self.interpreter.resolve_type(param.param_type)
            width = param_type.width if isinstance(param_type, BitType) else None
            saved_bindings[param.name] = (
                self.env.values.get(param.name),
                self.env.widths.get(param.name),
            )
            if param.is_readable:
                value = self._coerce(self.evaluate(arg), width)
            else:
                value = self._undef(f"{param.name}_{depth}", width)
            self.env.set(param.name, value, width)
            if param.is_writable:
                copy_out.append((arg, param.name))

        saved_active = self._active()
        retval_slot = f"$retval_{depth}"

        self.execute_statement(body)

        result: Optional[Term] = None
        if is_function and retval_slot in self.env:
            result = self.env.get(retval_slot)
        post_body_active = self._active()

        # Copy-out, left to right.  Copy-out must happen even when the callee
        # exited (the specification clarification behind figure 5f), so it is
        # performed under the activity condition that held at call entry.
        copy_out_values = [(arg, self.env.get(name)) for arg, name in copy_out]
        for name, (old_value, old_width) in saved_bindings.items():
            if old_value is None:
                self.env.values.pop(name, None)
                self.env.widths.pop(name, None)
            else:
                self.env.set(name, old_value, old_width)
        self.env.set("$active", saved_active, None)
        for arg, value in copy_out_values:
            self._assign(arg, value)

        # A return only terminates the callee, so the caller stays active; an
        # exit inside an action deactivates the rest of the control.
        if is_function:
            self.env.set("$active", saved_active, None)
        else:
            self.env.set("$active", post_body_active, None)

        self._call_depth -= 1
        return result

    # -- tables -----------------------------------------------------------------------------------

    def _apply_table(self, table_name: str) -> None:
        table = self.table_decls.get(table_name)
        if table is None:
            raise InterpreterError(f"apply() on unknown table {table_name!r}")

        key_symbols: List[str] = []
        key_widths: List[int] = []
        hit_conditions: List[Term] = []
        for index, key in enumerate(table.keys):
            key_term = self.evaluate(key.expr)
            if key_term.sort.is_bool():
                key_term = self._coerce(key_term, 1)
            # Table symbols deliberately do NOT carry the per-packet suffix:
            # the control plane is installed once per *sequence*, so every
            # packet must see the same symbolic table configuration.
            symbol_name = f"{table_name}_key_{index}"
            symbol = smt.BitVecSym(symbol_name, key_term.width)
            key_symbols.append(symbol_name)
            key_widths.append(key_term.width)
            hit_conditions.append(smt.Eq(key_term, symbol))
        hit = smt.And(*hit_conditions) if hit_conditions else smt.BoolVal(False)

        action_symbol_name = f"{table_name}_action"
        action_symbol = smt.BitVecSym(action_symbol_name, 8)

        info = TableInfo(
            table=table_name,
            key_symbols=key_symbols,
            key_widths=key_widths,
            action_symbol=action_symbol_name,
            actions=[ref.name for ref in table.actions],
            default_action=(table.default_action or ast.ActionRef("NoAction")).name,
        )

        default_ref = table.default_action or ast.ActionRef("NoAction")
        base_env = self.env

        def run_action(ref: ast.ActionRef, env: _Environment, symbolic_args: bool) -> _Environment:
            self.env = env
            if ref.name != "NoAction":
                action = self.actions.get(ref.name)
                if action is None:
                    raise InterpreterError(
                        f"table {table_name!r} references unknown action {ref.name!r}"
                    )
                if symbolic_args:
                    args: List[ast.Expression] = []
                    arg_records: List[Tuple[str, int]] = []
                    bindings: Dict[str, Term] = {}
                    for param in action.params:
                        param_type = self.interpreter.resolve_type(param.param_type)
                        width = param_type.width if isinstance(param_type, BitType) else 1
                        symbol_name = f"{table_name}_{ref.name}_{param.name}"
                        bindings[param.name] = smt.BitVecSym(symbol_name, width)
                        arg_records.append((symbol_name, width))
                    info.action_args[ref.name] = arg_records
                    self._invoke_with_bound_params(action, bindings)
                else:
                    self._invoke_with_bound_params(
                        action,
                        {
                            param.name: self._coerce(
                                self.evaluate(arg),
                                self._param_width(param),
                            )
                            for param, arg in zip(action.params, ref.args)
                        },
                    )
            result = self.env
            self.env = base_env
            return result

        # Default action environment (also used when the key misses).
        default_env = run_action(default_ref, base_env.copy(), symbolic_args=False)

        # Build the nested choice over the listed actions.
        chosen_env = default_env
        for index in reversed(range(len(table.actions))):
            ref = table.actions[index]
            action_env = run_action(ref, base_env.copy(), symbolic_args=True)
            selector = smt.Eq(action_symbol, smt.BitVecVal(index + 1, 8))
            chosen_env = _merge(selector, action_env, chosen_env)

        self.env = _merge(hit, chosen_env, default_env)
        self.tables.append(info)

    def _param_width(self, param: ast.Parameter) -> Optional[int]:
        param_type = self.interpreter.resolve_type(param.param_type)
        return param_type.width if isinstance(param_type, BitType) else None

    def _invoke_with_bound_params(
        self, action: ast.ActionDeclaration, bindings: Dict[str, Term]
    ) -> None:
        saved: Dict[str, Tuple[Optional[Term], Optional[int]]] = {}
        for param in action.params:
            saved[param.name] = (
                self.env.values.get(param.name),
                self.env.widths.get(param.name),
            )
            width = self._param_width(param)
            value = bindings.get(param.name, self._undef(f"{action.name}_{param.name}", width))
            self.env.set(param.name, value, width)
        self.execute_statement(action.body)
        for name, (old_value, old_width) in saved.items():
            if old_value is None:
                self.env.values.pop(name, None)
                self.env.widths.pop(name, None)
            else:
                self.env.set(name, old_value, old_width)

    # -- parsers -----------------------------------------------------------------------------------

    def execute_parser(self, parser: ast.ParserDeclaration) -> None:
        self._execute_parser_state(parser, "start", depth=0, path_cond=smt.BoolVal(True))

    def _execute_parser_state(
        self, parser: ast.ParserDeclaration, state_name: str, depth: int, path_cond: Term
    ) -> None:
        if state_name in ("accept", "reject"):
            return
        if depth > self.interpreter.MAX_PARSER_UNROLL:
            # Bounded unrolling: the model under-approximates this path (a
            # concrete target would keep stepping), so record the condition
            # under which it is reached.  The packet-test oracle constrains
            # inputs away from these paths; translation validation needs no
            # exclusion because both snapshots share the same budget.
            self.parser_overflows.append(smt.simplify(path_cond))
            return
        state = parser.state(state_name)
        if state is None:
            raise InterpreterError(f"parser transitions to unknown state {state_name!r}")
        # Remember the condition under which this state is reached: stack
        # extracts executed below record capacity overflows under it.
        self._current_path_cond = path_cond
        for statement in state.statements:
            self.execute_statement(statement)
        if state.select_expr is None:
            self._execute_parser_state(
                parser, state.next_state or "accept", depth + 1, path_cond
            )
            return

        selector = self.evaluate(state.select_expr)
        default_target = "reject"
        branches: List[Tuple[Term, str]] = []
        for case in state.cases:
            if case.value is None:
                default_target = case.next_state
                continue
            value_term = self._coerce(self.evaluate(case.value), selector.width)
            branches.append((smt.Eq(selector, value_term), case.next_state))

        def explore(index: int, reach_cond: Term) -> _Environment:
            if index >= len(branches):
                self_env = self.env.copy()
                saved = self.env
                self.env = self_env
                self._execute_parser_state(parser, default_target, depth + 1, reach_cond)
                result = self.env
                self.env = saved
                return result
            cond, target = branches[index]
            saved = self.env
            taken_env = self.env.copy()
            self.env = taken_env
            self._execute_parser_state(
                parser, target, depth + 1, smt.And(reach_cond, cond)
            )
            taken_env = self.env
            self.env = saved
            rest_env = explore(index + 1, smt.And(reach_cond, smt.Not(cond)))
            return _merge(cond, taken_env, rest_env)

        self.env = explore(0, path_cond)

    # -- expressions --------------------------------------------------------------------------------

    def _as_bool(self, term: Term) -> Term:
        if term.sort.is_bool():
            return term
        return smt.Ne(term, smt.BitVecVal(0, term.width))

    def evaluate(self, expr: ast.Expression) -> Term:
        if isinstance(expr, ast.Constant):
            width = expr.width if expr.width is not None else 32
            return smt.BitVecVal(expr.value, width)
        if isinstance(expr, ast.BoolLiteral):
            return smt.BoolVal(expr.value)
        if isinstance(expr, ast.PathExpression):
            if expr.name in self.env:
                return self.env.get(expr.name)
            raise InterpreterError(f"read of unknown variable {expr.name!r}")
        if isinstance(expr, ast.Member):
            return self._evaluate_member(expr)
        if isinstance(expr, ast.Slice):
            base = self.evaluate(expr.expr)
            return smt.Extract(expr.high, expr.low, base)
        if isinstance(expr, ast.UnaryOp):
            return self._evaluate_unary(expr)
        if isinstance(expr, ast.BinaryOp):
            return self._evaluate_binary(expr)
        if isinstance(expr, ast.Ternary):
            cond = self._as_bool(self.evaluate(expr.cond))
            then = self.evaluate(expr.then)
            orelse = self.evaluate(expr.orelse)
            then, orelse = self._unify_widths(then, orelse)
            return smt.Ite(cond, then, orelse)
        if isinstance(expr, ast.Cast):
            target = self.interpreter.resolve_type(expr.target)
            value = self.evaluate(expr.expr)
            if isinstance(target, BitType):
                return self._coerce(value, target.width)
            if isinstance(target, BoolType):
                return self._as_bool(value)
            raise InterpreterError(f"unsupported cast target {target}")
        if isinstance(expr, ast.MethodCallExpression):
            result = self._execute_call(expr)
            if result is None:
                raise InterpreterError("void call used in an expression")
            return result
        raise InterpreterError(f"cannot evaluate expression {type(expr).__name__}")

    def _evaluate_member(self, expr: ast.Member) -> Term:
        # ``stack.last.<field>``: the element at nextIndex - 1, evaluated as
        # the same constant-indexed ternary chain the flattening pass emits.
        if isinstance(expr.expr, ast.Member) and expr.expr.member == "last":
            stack = self._stack_of(expr.expr.expr)
            if stack is not None:
                _element_type, size = self.stacks[stack]
                chain = stack_lowering.last_field_expr(
                    expr.expr.expr, self._counter_ref(stack), expr.member, size
                )
                return self.evaluate(chain)
        path = self._member_path(expr)
        if path is None or path not in self.env:
            raise InterpreterError(f"cannot evaluate member {expr}")
        header = self._header_of_path(path)
        value = self.env.get(path)
        if header is not None:
            width = self.env.widths.get(path)
            return smt.Ite(
                self.env.get(f"{header}.$valid"), value, self._undef(path, width)
            )
        return value

    def _evaluate_unary(self, expr: ast.UnaryOp) -> Term:
        operand = self.evaluate(expr.expr)
        if expr.op == "!":
            return smt.Not(self._as_bool(operand))
        if expr.op == "~":
            return smt.BvNot(operand)
        if expr.op == "-":
            return smt.Sub(smt.BitVecVal(0, operand.width), operand)
        raise InterpreterError(f"unknown unary operator {expr.op!r}")

    def _unify_widths(self, left: Term, right: Term) -> Tuple[Term, Term]:
        if left.sort.is_bool() or right.sort.is_bool():
            return left, right
        if left.width == right.width:
            return left, right
        target = max(left.width, right.width)
        return self._coerce(left, target), self._coerce(right, target)

    def _evaluate_binary(self, expr: ast.BinaryOp) -> Term:
        op = expr.op
        if op in ("&&", "||"):
            left = self._as_bool(self.evaluate(expr.left))
            right = self._as_bool(self.evaluate(expr.right))
            return smt.And(left, right) if op == "&&" else smt.Or(left, right)

        left = self.evaluate(expr.left)
        right = self.evaluate(expr.right)
        # Width-less literals adapt to the other operand's width (P4-16
        # arbitrary-precision literals); this mirrors the type checker and
        # the concrete interpreter so the oracle agrees with the targets.
        if (
            isinstance(expr.left, ast.Constant)
            and expr.left.width is None
            and right.sort.is_bv()
        ):
            left = smt.BitVecVal(expr.left.value, right.width)
        elif (
            isinstance(expr.right, ast.Constant)
            and expr.right.width is None
            and left.sort.is_bv()
        ):
            right = smt.BitVecVal(expr.right.value, left.width)

        if op in ("==", "!="):
            if left.sort.is_bool() or right.sort.is_bool():
                left, right = self._as_bool(left), self._as_bool(right)
            else:
                left, right = self._unify_widths(left, right)
            return smt.Eq(left, right) if op == "==" else smt.Ne(left, right)

        if op == "++":
            return smt.Concat(left, right)

        left, right = self._unify_widths(left, right)
        if op == "+":
            return smt.Add(left, right)
        if op == "-":
            return smt.Sub(left, right)
        if op == "*":
            return smt.Mul(left, right)
        if op == "/":
            return smt.UDiv(left, right)
        if op == "%":
            return smt.URem(left, right)
        if op == "&":
            return smt.BvAnd(left, right)
        if op == "|":
            return smt.BvOr(left, right)
        if op == "^":
            return smt.BvXor(left, right)
        if op == "<<":
            return smt.Shl(left, right)
        if op == ">>":
            return smt.LShr(left, right)
        if op == "<":
            return smt.Ult(left, right)
        if op == "<=":
            return smt.Ule(left, right)
        if op == ">":
            return smt.Ugt(left, right)
        if op == ">=":
            return smt.Uge(left, right)
        raise InterpreterError(f"unknown binary operator {op!r}")
