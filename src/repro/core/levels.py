"""McKeeman's levels of compiler-input correctness (paper Table 1).

Gauntlet targets levels 5-7: programs that pass lexing, parsing and type
checking but still break the compiler.  This module classifies an input
string by how deep it makes it into the toolchain, which is what the
Table 1 benchmark regenerates.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Tuple

from repro.compiler import CompilerOptions, compile_front_midend
from repro.p4.lexer import Lexer, LexerError
from repro.p4.parser import ParserError, parse_program
from repro.p4.typecheck import TypeCheckError, check_program


class ConformanceLevel(IntEnum):
    """The seven input classes of McKeeman's taxonomy."""

    SEQUENCE_OF_CHARACTERS = 1
    SEQUENCE_OF_WORDS = 2
    SYNTACTICALLY_CORRECT = 3
    TYPE_CORRECT = 4
    STATICALLY_CONFORMING = 5
    DYNAMICALLY_CONFORMING = 6
    MODEL_CONFORMING = 7


def classify_input_level(source: str) -> Tuple[ConformanceLevel, str]:
    """Classify how far ``source`` makes it through the toolchain.

    Returns the deepest level reached plus a short explanation.  A program
    that compiles and runs without crashing the compiler reaches level 5
    (statically conforming); levels 6 and 7 additionally require run-time
    evidence (no abnormal behaviour, correct outputs), which the caller
    establishes with the execution and validation machinery.
    """

    if not source.isascii():
        return ConformanceLevel.SEQUENCE_OF_CHARACTERS, "input is not ASCII text"
    try:
        Lexer(source).tokenize()
    except LexerError as exc:
        return ConformanceLevel.SEQUENCE_OF_CHARACTERS, f"lexer error: {exc}"
    try:
        program = parse_program(source)
    except ParserError as exc:
        return ConformanceLevel.SEQUENCE_OF_WORDS, f"parse error: {exc}"
    try:
        check_program(program)
    except TypeCheckError as exc:
        return ConformanceLevel.SYNTACTICALLY_CORRECT, f"type error: {exc}"
    result = compile_front_midend(program, CompilerOptions())
    if result.rejected:
        return ConformanceLevel.TYPE_CORRECT, f"rejected by semantic analysis: {result.error}"
    if result.crashed:
        # A crash on a well-typed program means the *input* was statically
        # conforming -- the defect is the compiler's.
        return ConformanceLevel.STATICALLY_CONFORMING, f"compiler crashed: {result.crash}"
    return ConformanceLevel.STATICALLY_CONFORMING, "compiles cleanly"
