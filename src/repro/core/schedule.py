"""Feedback-directed knob scheduling for the campaign generator.

The static steering table (:data:`MATRIX_STEERING`) maps a seeded defect's
trigger features to generator knob overrides.  It is a good prior but a blind
one: it never learns which knob vectors actually light the coverage cells a
campaign has not seen yet.  This module closes that loop.

Three pieces:

* :class:`KnobArm` — a named, frozen knob-override vector.  The catalog
  (:data:`ARM_CATALOG`) mirrors the unions the static steering table can
  produce, so a scheduled campaign explores the same knob space the static
  baseline occupies (plus the un-steered baseline arm).
* :class:`BanditScheduler` — a seeded epsilon-greedy multi-armed bandit.
  The reward for pulling an arm is the number of *previously uncovered*
  coverage cells the resulting programs lit, so the bandit drifts toward
  arms that still produce novelty and away from saturated ones.  Every
  random draw is seeded through :func:`derive_child_seed`, making the arm
  sequence a pure function of the campaign seed — jobs=1, jobs=4 and
  distributed runs schedule identically.
* :func:`train_profiles` / :func:`choose_arm_for_defect` — a compile-only
  calibration pass for the detection matrix.  Each arm generates a handful
  of unseeded programs; the per-cell hit rates become an
  :class:`ArmProfile`.  ``choose_arm_for_defect`` scores arms by the
  product of the defect's trigger-feature hit rates and only displaces the
  static-steering arm when a challenger beats it by a clear margin, so the
  scheduled matrix never spends more tries than the static baseline unless
  the profiles show a genuinely better arm.

Determinism contract: nothing in this module reads wall-clock time, process
identity, or unseeded randomness.  Same seed, same catalog, same observed
coverage => same decisions, on any executor.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.compiler import CompilerOptions, compile_prefix
from repro.compiler.bugs import SeededBug
from repro.compiler.coverage import CoverageMap, feature_cell, program_features
from repro.core.generator import (
    GeneratorConfig,
    RandomProgramGenerator,
    derive_child_seed,
)
from repro.p4 import emit_program

__all__ = [
    "ARM_CATALOG",
    "ArmProfile",
    "BanditScheduler",
    "KnobArm",
    "MATRIX_STEERING",
    "choose_arm_for_defect",
    "static_arm_for_bug",
    "train_profiles",
]


# ----------------------------------------------------------------------
# Static steering table (canonical home; the engine imports it from here)
# ----------------------------------------------------------------------

#: Per-trigger-feature generator overrides used by the static detection
#: matrix.  Kept here (not in the engine) so the arm catalog below can be
#: checked against it without an import cycle.
MATRIX_STEERING: Mapping[str, Mapping[str, object]] = {
    "header_stack": {"p_header_stack": 0.8},
    "function": {"p_function": 1.0},
    "inout_param": {"p_local_arg_idiom": 0.8},
    "shift": {"p_idiom": 0.9},
    "multiple_keys": {"p_table": 1.0, "max_tables": 3},
    "table": {"p_table": 1.0},
    "cast": {"p_idiom": 0.9, "p_narrowing_cast": 0.9},
    "parser_cycle": {"p_parser": 0.8, "p_parser_cycle": 0.6},
    "register": {"p_register": 0.9},
    "counter": {"p_register": 0.9},
}


# ----------------------------------------------------------------------
# Knob arms
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class KnobArm:
    """A named generator knob vector the scheduler can pull.

    ``overrides`` is a tuple of ``(knob, value)`` pairs so the arm is
    hashable and survives the pickled work-unit wire format unchanged.
    """

    name: str
    overrides: Tuple[Tuple[str, object], ...] = ()

    def apply(self, generator: GeneratorConfig) -> GeneratorConfig:
        """Overlay this arm on ``generator``, touching only default knobs.

        Same discipline as the static steering path: a knob the caller set
        explicitly (anything not at its dataclass default) wins over the
        arm, so user configuration is never silently overridden.
        """

        defaults = GeneratorConfig.__dataclass_fields__
        applicable = {
            knob: value
            for knob, value in self.overrides
            if getattr(generator, knob) == defaults[knob].default
        }
        if not applicable:
            return generator
        return replace(generator, **applicable)

    def overrides_dict(self) -> Dict[str, object]:
        return dict(self.overrides)


def _arm(name: str, **overrides: object) -> KnobArm:
    return KnobArm(name=name, overrides=tuple(sorted(overrides.items())))


#: The arm catalog.  Every union of :data:`MATRIX_STEERING` rows that a
#: catalog defect can produce appears here, plus the un-steered baseline,
#: so the bandit explores a superset of what static steering exploits.
ARM_CATALOG: Tuple[KnobArm, ...] = (
    _arm("baseline"),
    _arm("functions", p_function=1.0),
    _arm("local-args", p_function=1.0, p_local_arg_idiom=0.8),
    _arm("idioms", p_idiom=0.9),
    _arm("casts", p_idiom=0.9, p_narrowing_cast=0.9),
    _arm("parsers", p_parser=0.8, p_parser_cycle=0.6),
    _arm("stacks", p_header_stack=0.8),
    _arm("registers", p_register=0.9),
    _arm("tables", p_table=1.0),
    _arm("wide-tables", p_table=1.0, max_tables=3),
)


def static_overrides_for_bug(bug: SeededBug) -> Dict[str, object]:
    """The override union static steering would apply for ``bug``."""

    merged: Dict[str, object] = {}
    for feature in bug.trigger_features:
        merged.update(MATRIX_STEERING.get(feature, {}))
    return merged


def static_arm_for_bug(
    bug: SeededBug, arms: Sequence[KnobArm] = ARM_CATALOG
) -> Optional[KnobArm]:
    """The catalog arm equivalent to static steering for ``bug``.

    Returns ``None`` when the steering union has no exact catalog
    counterpart; callers should fall back to static steering then.
    """

    union = static_overrides_for_bug(bug)
    for arm in arms:
        if arm.overrides_dict() == union:
            return arm
    return None


# ----------------------------------------------------------------------
# Bandit scheduler (full-campaign feedback loop)
# ----------------------------------------------------------------------


@dataclass
class BanditScheduler:
    """Seeded epsilon-greedy bandit over :class:`KnobArm` vectors.

    Rewards are *novel coverage cells*: :meth:`update` counts how many of
    the observed cells had never been seen by this scheduler before.  Once
    the space saturates every reward is zero and the scheduler degrades
    gracefully to the lowest-index arm (the baseline) on exploit draws.
    """

    seed: int
    arms: Tuple[KnobArm, ...] = ARM_CATALOG
    epsilon: float = 0.2

    _pulls: List[int] = field(default_factory=list, repr=False)
    _rewards: List[float] = field(default_factory=list, repr=False)
    _covered: Set[str] = field(default_factory=set, repr=False)
    _draws: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not self.arms:
            raise ValueError("BanditScheduler needs at least one arm")
        self._pulls = [0] * len(self.arms)
        self._rewards = [0.0] * len(self.arms)

    @property
    def covered_cells(self) -> Set[str]:
        return set(self._covered)

    def next_arm(self) -> KnobArm:
        """Pick the next arm; the draw index seeds the RNG deterministically."""

        rng = random.Random(derive_child_seed(self.seed, self._draws))
        self._draws += 1
        for index, pulls in enumerate(self._pulls):
            if pulls == 0:
                # Optimistic initialisation: visit every arm once, in
                # catalog order, before trusting any mean-reward estimate.
                return self.arms[index]
        if rng.random() < self.epsilon:
            return self.arms[rng.randrange(len(self.arms))]
        best_index = 0
        best_mean = -1.0
        for index, pulls in enumerate(self._pulls):
            mean = self._rewards[index] / pulls
            if mean > best_mean:
                best_index = index
                best_mean = mean
        return self.arms[best_index]

    def update(self, arm: KnobArm, cells: Mapping[str, int]) -> int:
        """Record the coverage produced by pulling ``arm``.

        Returns the reward (number of cells not covered before this pull).
        """

        try:
            index = self.arms.index(arm)
        except ValueError:
            raise ValueError(f"unknown arm {arm.name!r}") from None
        novel = [cell for cell in cells if cell not in self._covered]
        self._covered.update(cells)
        self._pulls[index] += 1
        self._rewards[index] += len(novel)
        return len(novel)


# ----------------------------------------------------------------------
# Compile-only arm profiling (detection-matrix feedback loop)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ArmProfile:
    """Per-cell hit rates for one arm, estimated from unseeded programs.

    ``cells`` maps a coverage cell to the number of training programs that
    lit it at least once; ``tries`` is the number of training programs.
    """

    arm: KnobArm
    tries: int
    cells: Mapping[str, int]

    def rate(self, cell: str) -> float:
        if self.tries <= 0:
            return 0.0
        return self.cells.get(cell, 0) / self.tries


def train_profiles(
    generator: GeneratorConfig,
    programs_per_arm: int = 12,
    arms: Sequence[KnobArm] = ARM_CATALOG,
) -> Dict[str, ArmProfile]:
    """Estimate per-arm coverage rates from short unseeded compile runs.

    Deliberately cheap: no seeded bugs, no oracles, no test generation —
    just generate, compile through the bug-free pipeline (a shared-prefix
    memo hit when the campaign later compiles the same source), and fold
    the program-feature + pass/rule coverage into presence counts.
    """

    options = CompilerOptions()
    profiles: Dict[str, ArmProfile] = {}
    for arm_index, arm in enumerate(arms):
        steered = arm.apply(
            replace(generator, seed=derive_child_seed(generator.seed, arm_index))
        )
        program_generator = RandomProgramGenerator(steered)
        cells: Dict[str, int] = {}
        for index in range(programs_per_arm):
            program = program_generator.generate_indexed(index)
            coverage = program_features(program)
            try:
                result = compile_prefix(program, emit_program(program), options)
                coverage.update(result.coverage.to_dict())
            except Exception:  # noqa: BLE001 - profiling must never abort
                pass
            for cell in coverage.cells:
                cells[cell] = cells.get(cell, 0) + 1
        profiles[arm.name] = ArmProfile(
            arm=arm, tries=programs_per_arm, cells=dict(sorted(cells.items()))
        )
    return profiles


def _score(bug: SeededBug, profile: ArmProfile) -> float:
    """Probability-style score: product of trigger-feature hit rates."""

    score = 1.0
    for feature in bug.trigger_features:
        score *= profile.rate(feature_cell(feature))
    return score


def choose_arm_for_defect(
    bug: SeededBug,
    profiles: Mapping[str, ArmProfile],
    margin: float = 0.25,
) -> Optional[KnobArm]:
    """Pick the calibrated arm for ``bug``, guarded against regressions.

    Returns ``None`` when plain static steering should be used: the
    steering union has no exact catalog counterpart, or no profile was
    trained for it.  Otherwise the static-equivalent arm is kept unless
    the calibration shows it *cannot* light one of the defect's trigger
    features at all (product score zero) while some challenger lights all
    of them — feature-rate products are a good blindness detector but a
    poor detectability ranking, so a static arm that works is never
    displaced on score alone.  Among qualifying challengers the best
    score wins; a later-catalog arm must beat the incumbent by ``margin``
    (relative), keeping the choice stable under profile noise.
    """

    static_arm = static_arm_for_bug(bug)
    if static_arm is None or static_arm.name not in profiles:
        return None
    static_score = _score(bug, profiles[static_arm.name])
    if static_score > 0.0:
        return static_arm
    best_arm: Optional[KnobArm] = None
    best_score = 0.0
    for arm in ARM_CATALOG:
        profile = profiles.get(arm.name)
        if profile is None:
            continue
        score = _score(bug, profile)
        if score <= 0.0:
            continue
        if best_arm is None or score > best_score * (1.0 + margin):
            best_arm = arm
            best_score = score
    if best_arm is None:
        return static_arm
    return best_arm
