"""Unit tests for individual compiler passes (correct behaviour)."""

import pytest

from repro.compiler import CompilerOptions, compile_front_midend
from repro.compiler.errors import CompilerCrash, CompilerError
from repro.p4 import ast, emit_program, parse_program


PRELUDE = """
header Hdr_t {
    bit<8> a;
    bit<8> b;
}

struct Headers {
    Hdr_t h;
}
"""


def control_program(body: str, locals_: str = "", extra: str = "") -> str:
    return (
        PRELUDE
        + extra
        + "control ingress(inout Headers hdr) {\n"
        + locals_
        + "\n    apply {\n"
        + body
        + "\n    }\n}\n"
    )


def compile_ok(source: str, **options):
    result = compile_front_midend(source, CompilerOptions(**options))
    assert result.succeeded, f"unexpected failure: {result.crash or result.error}"
    return result


class TestPipelineBasics:
    def test_correct_compiler_accepts_simple_program(self):
        result = compile_ok(control_program("hdr.h.a = 8w1;"))
        assert result.snapshots[0].pass_name == "input"
        assert result.final_program is not None

    def test_snapshots_cover_every_pass(self):
        result = compile_ok(control_program("hdr.h.a = 8w1;"))
        names = [snapshot.pass_name for snapshot in result.snapshots]
        assert "TypeChecking" in names
        assert "ConstantFolding" in names
        assert "SimplifyControlFlow" in names

    def test_type_error_is_graceful_rejection(self):
        result = compile_front_midend(control_program("hdr.h.a = 16w1;"), CompilerOptions())
        assert result.rejected
        assert not result.crashed

    def test_skip_passes_option(self):
        result = compile_ok(control_program("hdr.h.a = 8w1;"), skip_passes={"ConstantFolding"})
        names = [snapshot.pass_name for snapshot in result.snapshots]
        assert "ConstantFolding" not in names

    def test_every_snapshot_reparses(self):
        source = control_program(
            "hdr.h.a = 8w3 * 8w2; if (hdr.h.b == 8w0) { hdr.h.b = 8w1; }",
        )
        result = compile_ok(source)
        for snapshot in result.snapshots:
            parse_program(snapshot.source)

    def test_changed_snapshots_subset(self):
        result = compile_ok(control_program("hdr.h.a = 8w1;"))
        changed = result.changed_snapshots()
        assert changed[0].pass_name == "input"
        assert all(snapshot.changed for snapshot in changed)


class TestConstantFolding:
    def _final_assignment_rhs(self, source: str, **options):
        result = compile_ok(source, **options)
        control = result.final_program.controls()[0]
        assignments = [
            statement
            for statement in ast.walk(control)
            if isinstance(statement, ast.AssignmentStatement)
        ]
        return assignments[-1].rhs

    def test_folds_addition(self):
        rhs = self._final_assignment_rhs(control_program("hdr.h.a = 8w3 + 8w4;"))
        assert isinstance(rhs, ast.Constant)
        assert rhs.value == 7

    def test_folds_with_wraparound(self):
        rhs = self._final_assignment_rhs(control_program("hdr.h.a = 8w200 + 8w100;"))
        assert isinstance(rhs, ast.Constant)
        assert rhs.value == 44

    def test_folds_subtraction_underflow(self):
        rhs = self._final_assignment_rhs(control_program("hdr.h.a = 8w1 - 8w2;"))
        assert isinstance(rhs, ast.Constant)
        assert rhs.value == 255

    def test_folds_comparison_to_bool(self):
        source = control_program("if (8w1 == 8w1) { hdr.h.a = 8w5; }")
        result = compile_ok(source)
        control = result.final_program.controls()[0]
        # The branch is constant-true, so dead-code elimination flattens it.
        assert not any(isinstance(node, ast.IfStatement) for node in ast.walk(control))

    def test_removes_constant_false_branch(self):
        source = control_program("if (8w1 == 8w2) { hdr.h.a = 8w5; }")
        result = compile_ok(source)
        control = result.final_program.controls()[0]
        assignments = [
            node for node in ast.walk(control) if isinstance(node, ast.AssignmentStatement)
        ]
        assert assignments == []


class TestStrengthReduction:
    def test_multiplication_by_power_of_two_becomes_shift(self):
        source = control_program("hdr.h.a = hdr.h.b * 8w4;")
        result = compile_ok(source)
        control = result.final_program.controls()[0]
        shifts = [
            node
            for node in ast.walk(control)
            if isinstance(node, ast.BinaryOp) and node.op == "<<"
        ]
        assert len(shifts) == 1
        assert shifts[0].right.value == 2

    def test_add_zero_removed(self):
        source = control_program("hdr.h.a = hdr.h.b + 8w0;")
        result = compile_ok(source)
        control = result.final_program.controls()[0]
        assignment = [
            node for node in ast.walk(control) if isinstance(node, ast.AssignmentStatement)
        ][-1]
        assert isinstance(assignment.rhs, ast.Member)

    def test_oversized_shift_not_a_crash_when_bug_disabled(self):
        source = control_program("hdr.h.a = hdr.h.b << 8w9;")
        compile_ok(source)

    def test_zero_fold_takes_width_from_typed_operand(self):
        """Regression: ``slice * 0`` used to fold to a *width-less* zero.

        The width came from the zero literal alone, so a width-less zero
        next to a typed operand produced a constant downstream consumers
        re-infer as bit<32>, changing enclosing concatenation widths.
        """

        from repro.compiler.midend import _StrengthReducer

        reducer = _StrengthReducer(off_by_one=False, negative_slice=False)
        base = ast.Member(ast.Member(ast.PathExpression("hdr"), "h"), "a")
        folded = reducer.visit_BinaryOp(
            ast.BinaryOp("*", ast.Slice(base, 3, 0), ast.Constant(0))
        )
        assert isinstance(folded, ast.Constant)
        assert (folded.value, folded.width) == (0, 4)

        folded = reducer.visit_BinaryOp(
            ast.BinaryOp("&", ast.Constant(0), ast.Slice(base, 7, 2))
        )
        assert isinstance(folded, ast.Constant)
        assert (folded.value, folded.width) == (0, 6)

        # A typed zero keeps its own width.
        folded = reducer.visit_BinaryOp(
            ast.BinaryOp("&", ast.Slice(base, 3, 0), ast.Constant(0, 4))
        )
        assert (folded.value, folded.width) == (0, 4)

    def test_zero_fold_width_preserves_concat_semantics(self):
        """End to end: the fold must not change a concatenation's width."""

        from repro.core.validation import TranslationValidator, ValidationOutcome

        source = control_program(
            "hdr.h.b = (bit<8>) (hdr.h.a[3:0] ++ (hdr.h.a[3:0] & 0));"
        )
        result = compile_ok(source)
        report = TranslationValidator().validate_compilation(result)
        assert report.outcome == ValidationOutcome.EQUIVALENT, report.divergences
        assert "4w0" in result.snapshots[-1].source or "++" not in result.snapshots[-1].source

    def test_zero_fold_resolves_header_field_widths(self):
        """A width-less zero next to a *header field* must fold typed too.

        Field widths are not structurally visible, so the fold consults the
        declaration-derived name-width map; without it, ``hdr.h.a & 0``
        folded to a width-less zero that re-infers as bit<32> and changed
        the width of the enclosing concatenation (a false divergence).
        """

        from repro.core.validation import TranslationValidator, ValidationOutcome

        source = control_program(
            "bit<16> t = (bit<16>) (hdr.h.a[3:0] ++ (hdr.h.a & 0)); hdr.h.b = t[7:0];"
        )
        result = compile_ok(source)
        report = TranslationValidator().validate_compilation(result)
        assert report.outcome == ValidationOutcome.EQUIVALENT, report.divergences


class TestInlineFunctions:
    FUNCTION = """
bit<8> bump(inout bit<8> x) {
    x = x + 8w1;
    return x;
}
"""

    def test_function_calls_are_inlined(self):
        source = control_program("hdr.h.a = bump(hdr.h.b);", extra=self.FUNCTION)
        result = compile_ok(source)
        final = result.final_program
        assert final.functions() == []
        emitted = emit_program(final)
        assert "bump(" not in emitted

    def test_copy_out_updates_argument(self):
        source = control_program("hdr.h.a = bump(hdr.h.b);", extra=self.FUNCTION)
        result = compile_ok(source)
        control = result.final_program.controls()[0]
        targets = [
            str(node.lhs)
            for node in ast.walk(control)
            if isinstance(node, ast.AssignmentStatement)
        ]
        assert any(target == "hdr.h.b" for target in targets)

    def test_nested_call_inlined(self):
        source = control_program("hdr.h.a = bump(hdr.h.b) + 8w1;", extra=self.FUNCTION)
        result = compile_ok(source)
        emitted = emit_program(result.final_program)
        assert "bump(" not in emitted

    def test_void_function_statement(self):
        extra = """
void clear(out bit<8> x) {
    x = 8w0;
}
"""
        source = control_program("clear(hdr.h.a);", extra=extra)
        result = compile_ok(source)
        emitted = emit_program(result.final_program)
        assert "clear(" not in emitted


class TestRemoveActionParameters:
    def test_direct_action_call_expanded(self):
        locals_ = """
    action set_val(inout bit<8> val) {
        val = 8w3;
    }
"""
        source = control_program("set_val(hdr.h.a);", locals_=locals_)
        result = compile_ok(source)
        control = result.final_program.controls()[0]
        apply_calls = [
            node
            for node in ast.walk(control.apply)
            if isinstance(node, ast.MethodCallStatement)
        ]
        assert apply_calls == []
        assignments = [
            str(node.lhs)
            for node in ast.walk(control.apply)
            if isinstance(node, ast.AssignmentStatement)
        ]
        assert "hdr.h.a" in assignments

    def test_exit_still_copies_out(self):
        locals_ = """
    action set_val(inout bit<8> val) {
        val = 8w3;
        exit;
    }
"""
        source = control_program("set_val(hdr.h.a);", locals_=locals_)
        result = compile_ok(source)
        control = result.final_program.controls()[0]
        statements = control.apply.statements
        exit_index = next(
            index
            for index, statement in enumerate(statements)
            if isinstance(statement, ast.ExitStatement)
        )
        copy_outs = [
            index
            for index, statement in enumerate(statements)
            if isinstance(statement, ast.AssignmentStatement)
            and str(statement.lhs) == "hdr.h.a"
        ]
        assert any(index < exit_index for index in copy_outs)


class TestPredication:
    def test_if_in_action_becomes_ternary(self):
        locals_ = """
    action cond_set() {
        if (hdr.h.a == 8w1) {
            hdr.h.b = 8w2;
        }
    }
    table t {
        key = { hdr.h.a : exact; }
        actions = { cond_set(); NoAction(); }
        default_action = NoAction();
    }
"""
        source = control_program("t.apply();", locals_=locals_)
        result = compile_ok(source)
        control = result.final_program.controls()[0]
        action = next(
            local for local in control.locals if isinstance(local, ast.ActionDeclaration)
            and local.name == "cond_set"
        )
        assert not any(isinstance(node, ast.IfStatement) for node in ast.walk(action))
        assert any(isinstance(node, ast.Ternary) for node in ast.walk(action))

    def test_apply_block_ifs_left_alone(self):
        source = control_program("if (hdr.h.a == 8w1) { hdr.h.b = 8w2; }")
        result = compile_ok(source)
        control = result.final_program.controls()[0]
        assert any(isinstance(node, ast.IfStatement) for node in ast.walk(control.apply))


class TestDeadCodeAndControlFlow:
    def test_statements_after_exit_removed(self):
        source = control_program("exit; hdr.h.a = 8w1;")
        result = compile_ok(source)
        control = result.final_program.controls()[0]
        assignments = [
            node for node in ast.walk(control) if isinstance(node, ast.AssignmentStatement)
        ]
        assert assignments == []

    def test_empty_if_removed(self):
        source = control_program("if (hdr.h.a == 8w1) { }")
        result = compile_ok(source)
        control = result.final_program.controls()[0]
        assert not any(isinstance(node, ast.IfStatement) for node in ast.walk(control))

    def test_constant_true_if_ending_in_exit_truncates_trailing_code(self):
        """Regression: a collapsed constant-``true`` if ending in ``exit``
        terminates the enclosing block, so trailing statements are dead and
        must not survive into the back ends."""

        source = control_program(
            "if (true) { hdr.h.a = 8w1; exit; } hdr.h.b = 8w2;"
        )
        result = compile_ok(source)
        control = result.final_program.controls()[0]
        assignments = [
            node for node in ast.walk(control) if isinstance(node, ast.AssignmentStatement)
        ]
        assert len(assignments) == 1
        assert emit_program(result.final_program).count("hdr.h.b") == 0

    def test_constant_true_if_with_return_truncates_in_functions(self):
        source = (
            PRELUDE
            + """
void helper(inout bit<8> x) {
    if (true) {
        x = 8w1;
        return;
    }
    x = 8w2;
}

control ingress(inout Headers hdr) {
    apply {
        helper(hdr.h.a);
    }
}
"""
        )
        from repro.compiler.midend import DeadCodeElimination
        from repro.compiler.passes import PassContext

        program = parse_program(source)
        eliminated = DeadCodeElimination().run(
            program, PassContext(options=CompilerOptions())
        )
        function = eliminated.functions()[0]
        assignments = [
            node
            for node in ast.walk(function)
            if isinstance(node, ast.AssignmentStatement)
        ]
        assert len(assignments) == 1

    def test_empty_then_with_else_inverted(self):
        source = control_program("if (hdr.h.a == 8w1) { } else { hdr.h.b = 8w9; }")
        result = compile_ok(source)
        control = result.final_program.controls()[0]
        assignments = [
            node for node in ast.walk(control) if isinstance(node, ast.AssignmentStatement)
        ]
        assert len(assignments) == 1


class TestParserHandling:
    PARSER = """
parser prs(inout Headers hdr) {
    state start {
        transition select (hdr.h.a) {
            8w1 : middle;
            default : accept;
        }
    }
    state middle {
        hdr.h.b = 8w7;
        transition accept;
    }
}
"""

    def test_parser_program_compiles(self):
        source = PRELUDE + self.PARSER + """
control ingress(inout Headers hdr) {
    apply {
        hdr.h.a = 8w1;
    }
}
"""
        compile_ok(source)

    def test_unknown_transition_rejected(self):
        source = PRELUDE + """
parser prs(inout Headers hdr) {
    state start {
        transition nowhere;
    }
}
""" + """
control ingress(inout Headers hdr) {
    apply { }
}
"""
        result = compile_front_midend(source, CompilerOptions())
        assert result.rejected
