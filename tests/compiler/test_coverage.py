"""Coverage instrumentation: exact per-pass bits, wire round-trip, merge laws.

The per-pass tests assert *exact* coverage dicts for crafted programs —
both that the expected rule cells fired with the expected counts and,
through dict equality, that nothing else did.  That precision is the
point: the scheduler's rewards are computed from these cells, so a pass
that silently starts (or stops) recording would skew arm selection
without failing any behavioural test.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import (
    CompilerOptions,
    CoverageMap,
    compile_front_midend,
    merge_coverage_dicts,
    program_features,
)
from repro.compiler.coverage import (
    feature_cell,
    pass_cell,
    rule_cell,
)
from repro.p4 import parse_program


PRELUDE = """
header Hdr_t {
    bit<8> a;
    bit<8> b;
}

struct Headers {
    Hdr_t h;
}
"""

STACK_PROGRAM = """
header Hdr_t {
    bit<8> a;
    bit<8> b;
}

struct Headers {
    Hdr_t h;
    Hdr_t hs[3];
}

parser prs(inout Headers hdr) {
    state start {
        pkt.extract(hdr.hs.next);
        transition select (hdr.hs.last.a) {
            8w1 : start;
            default : accept;
        }
    }
}

control ingress(inout Headers hdr) {
    apply {
        hdr.hs.push_front(1);
        hdr.hs.pop_front(1);
        hdr.h.a = hdr.hs[0].a;
    }
}
"""


def control_program(body: str, locals_: str = "") -> str:
    return (
        PRELUDE
        + "control ingress(inout Headers hdr) {\n"
        + locals_
        + "\n    apply {\n"
        + body
        + "\n    }\n}\n"
    )


def coverage_of(source: str, **options) -> CoverageMap:
    result = compile_front_midend(source, CompilerOptions(**options))
    assert result.succeeded, f"unexpected failure: {result.crash or result.error}"
    return result.coverage


class TestPerPassCoverage:
    """Each midend pass records exactly its own cells — no more, no less."""

    def test_untouched_program_records_nothing(self):
        coverage = coverage_of(control_program("hdr.h.a = hdr.h.b;"))
        assert coverage.cells == {}
        assert not coverage

    def test_constant_folding_binop(self):
        coverage = coverage_of(control_program("hdr.h.a = (8w2 + 8w3);"))
        assert coverage.cells == {
            rule_cell("ConstantFolding", "fold_binop"): 1,
            pass_cell("ConstantFolding"): 1,
        }

    def test_strength_reduction_mul_to_shift(self):
        coverage = coverage_of(control_program("hdr.h.a = (hdr.h.b * 8w4);"))
        assert coverage.cells == {
            rule_cell("StrengthReduction", "mul_to_shift"): 1,
            pass_cell("StrengthReduction"): 1,
        }
        # the fired bit belongs to StrengthReduction alone
        assert pass_cell("ConstantFolding") not in coverage.cells
        assert pass_cell("Predication") not in coverage.cells

    def test_predication_rules(self):
        action = """
    action do_thing() {
        if (hdr.h.a == 8w1) {
            hdr.h.b = 8w2;
        }
    }
"""
        coverage = coverage_of(control_program("do_thing();", locals_=action))
        assert coverage.cells == {
            rule_cell("Predication", "predicate_if"): 1,
            rule_cell("Predication", "predicated_assign"): 1,
            pass_cell("Predication"): 1,
        }

    def test_copy_propagation_learn_and_substitute(self):
        coverage = coverage_of(
            control_program("bit<8> t = 8w5;\nhdr.h.b = t;")
        )
        assert coverage.cells == {
            rule_cell("LocalCopyPropagation", "learn_fact"): 1,
            rule_cell("LocalCopyPropagation", "substitute_local"): 1,
            pass_cell("LocalCopyPropagation"): 1,
        }

    def test_dead_code_elimination_dead_tail(self):
        coverage = coverage_of(control_program("exit;\nhdr.h.a = 8w1;"))
        assert coverage.cells == {
            rule_cell("DeadCodeElimination", "dead_tail"): 1,
            pass_cell("DeadCodeElimination"): 1,
        }

    def test_empty_if_is_dropped_by_dce(self):
        coverage = coverage_of(
            control_program("if (hdr.h.a == hdr.h.b) { }")
        )
        assert coverage.cells == {
            rule_cell("DeadCodeElimination", "drop_empty_if"): 1,
            pass_cell("DeadCodeElimination"): 1,
        }

    def test_stateful_lowering_counts_each_rmw(self):
        coverage = coverage_of(
            control_program(
                "c.count(32w1);\nc.count(32w1);",
                locals_="\n        counter(4) c;\n",
            )
        )
        assert coverage.cells == {
            rule_cell("StatefulLowering", "counter_to_register"): 1,
            rule_cell("StatefulLowering", "count_rmw"): 2,
            pass_cell("StatefulLowering"): 1,
        }

    def test_header_stack_flattening_rules(self):
        coverage = coverage_of(STACK_PROGRAM)
        assert coverage.cells == {
            rule_cell("HeaderStackFlattening", "extract_next"): 1,
            rule_cell("HeaderStackFlattening", "last_field"): 1,
            rule_cell("HeaderStackFlattening", "push_front"): 1,
            rule_cell("HeaderStackFlattening", "pop_front"): 1,
            pass_cell("HeaderStackFlattening"): 1,
        }


class TestProgramFeatures:
    def test_stack_program_features(self):
        features = program_features(parse_program(STACK_PROGRAM))
        assert sorted(features.cells) == [
            feature_cell("constants"),
            feature_cell("header_stack"),
            feature_cell("parser"),
            feature_cell("parser_cycle"),
            feature_cell("pop_front"),
            feature_cell("push_front"),
            feature_cell("widthless_literal"),
        ]

    def test_plain_program_has_no_structural_features(self):
        features = program_features(
            parse_program(control_program("hdr.h.a = hdr.h.b;"))
        )
        assert feature_cell("header_stack") not in features.cells
        assert feature_cell("parser") not in features.cells
        assert feature_cell("table") not in features.cells
        assert feature_cell("register") not in features.cells


# -- wire format and merge algebra --------------------------------------------

cell_names = st.text(
    alphabet=st.characters(whitelist_categories=("L", "N"), whitelist_characters=":._-"),
    min_size=1,
    max_size=24,
)
coverage_dicts = st.dictionaries(
    cell_names, st.integers(min_value=1, max_value=2**31), max_size=8
)


class TestWireFormat:
    @settings(max_examples=100, deadline=None)
    @given(cells=coverage_dicts)
    def test_round_trip_is_lossless(self, cells):
        original = CoverageMap(cells=dict(cells))
        assert CoverageMap.from_dict(original.to_dict()) == original

    @settings(max_examples=100, deadline=None)
    @given(cells=coverage_dicts)
    def test_to_dict_is_a_copy(self, cells):
        coverage = CoverageMap(cells=dict(cells))
        payload = coverage.to_dict()
        payload["injected"] = 1
        assert "injected" not in coverage.cells


class TestMergeAlgebra:
    @settings(max_examples=100, deadline=None)
    @given(a=coverage_dicts, b=coverage_dicts)
    def test_merge_is_commutative(self, a, b):
        left = CoverageMap(cells=dict(a)).merge(CoverageMap(cells=dict(b)))
        right = CoverageMap(cells=dict(b)).merge(CoverageMap(cells=dict(a)))
        assert left == right

    @settings(max_examples=100, deadline=None)
    @given(a=coverage_dicts, b=coverage_dicts, c=coverage_dicts)
    def test_merge_is_associative(self, a, b, c):
        maps = [CoverageMap(cells=dict(d)) for d in (a, b, c)]
        left = maps[0].merge(maps[1]).merge(maps[2])
        right = maps[0].merge(maps[1].merge(maps[2]))
        assert left == right

    @settings(max_examples=100, deadline=None)
    @given(a=coverage_dicts, b=coverage_dicts)
    def test_merge_matches_dict_fold(self, a, b):
        merged = CoverageMap(cells=dict(a)).merge(CoverageMap(cells=dict(b)))
        assert merged.cells == merge_coverage_dicts([a, b])

    @settings(max_examples=100, deadline=None)
    @given(a=coverage_dicts, b=coverage_dicts)
    def test_update_folds_in_place_like_merge(self, a, b):
        coverage = CoverageMap(cells=dict(a))
        coverage.update(b)
        assert coverage == CoverageMap(cells=dict(a)).merge(
            CoverageMap(cells=dict(b))
        )

    def test_merge_does_not_mutate_operands(self):
        a = CoverageMap(cells={"x": 1})
        b = CoverageMap(cells={"x": 2, "y": 3})
        merged = a.merge(b)
        assert merged.cells == {"x": 3, "y": 3}
        assert a.cells == {"x": 1}
        assert b.cells == {"x": 2, "y": 3}
