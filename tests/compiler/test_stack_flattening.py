"""HeaderStackFlattening: lowering shape, equivalence, seeded defects.

The central invariant: the native stack semantics both interpreters apply
and the statement sequences the correct pass splices in are the *same*
recipes (:mod:`repro.p4.stacks`), so translation validation across the pass
must report EQUIVALENT for every well-formed stack program -- and must
attribute a divergence to ``HeaderStackFlattening`` the moment one of the
two seeded lowering defects is switched on.
"""

import pytest

from repro.compiler import CompilerOptions, compile_front_midend
from repro.core.generator import GeneratorConfig, RandomProgramGenerator
from repro.core.reduce.oracles import packet_mismatch
from repro.core.validation import TranslationValidator, ValidationOutcome
from repro.p4 import ast, emit_program, parse_program
from repro.targets import BACKEND_REGISTRY
from repro.targets.execution import ConcreteInterpreter
from repro.targets.state import build_packet_state


STACK_PROGRAM = """
header Hdr_t {
    bit<8> a;
    bit<8> b;
}

struct Headers {
    Hdr_t h;
    Hdr_t hs[3];
}

parser prs(inout Headers hdr) {
    state start {
        pkt.extract(hdr.hs.next);
        transition select (hdr.hs.last.a) {
            8w1 : start;
            default : accept;
        }
    }
}

control ingress(inout Headers hdr) {
    apply {
        hdr.hs.push_front(1);
        if (hdr.h.a == 8w3) {
            hdr.hs[2].a = hdr.hs[1].b;
        }
        hdr.hs.pop_front(1);
        hdr.h.a = hdr.hs[0].a;
    }
}
"""

STACK_DEFECTS = (
    "stack_flatten_next_index_off_by_one",
    "stack_flatten_pop_validity_drop",
)


def _stack_ops(program: ast.Program):
    """All dynamic stack operations left in a program."""

    ops = []
    for node in ast.walk(program):
        if isinstance(node, ast.Member) and node.member in ("next", "last"):
            ops.append(node.member)
        if (
            isinstance(node, ast.MethodCallExpression)
            and isinstance(node.target, ast.Member)
            and node.target.member in ("push_front", "pop_front")
        ):
            ops.append(node.target.member)
    return ops


class TestLoweringShape:
    def test_no_dynamic_stack_operation_survives(self):
        result = compile_front_midend(STACK_PROGRAM, CompilerOptions())
        assert result.succeeded
        assert _stack_ops(result.final_program) == []

    def test_counter_scalar_field_added_and_initialised_once(self):
        result = compile_front_midend(STACK_PROGRAM, CompilerOptions())
        final = result.final_program
        struct = final.structs()[0]
        names = [name for name, _ in struct.fields]
        assert "hs_nextIndex" in names
        parser = final.parsers()[0]
        start = parser.state("start")
        first = start.statements[0]
        assert isinstance(first, ast.AssignmentStatement)
        assert "hs_nextIndex" in str(first.lhs)
        # The loop target is a duplicated start body, so the init runs once.
        loop_targets = {case.next_state for case in start.cases if case.value is not None}
        assert "start" not in loop_targets

    def test_pass_is_noop_without_stacks(self):
        source = STACK_PROGRAM.replace("    Hdr_t hs[3];\n", "").replace(
            """parser prs(inout Headers hdr) {
    state start {
        pkt.extract(hdr.hs.next);
        transition select (hdr.hs.last.a) {
            8w1 : start;
            default : accept;
        }
    }
}

""",
            "",
        )
        source = (
            source.replace("hdr.hs.push_front(1);", "")
            .replace("hdr.hs.pop_front(1);", "")
            .replace("hdr.hs[2].a = hdr.hs[1].b;", "hdr.h.b = 8w1;")
            .replace("hdr.h.a = hdr.hs[0].a;", "hdr.h.a = hdr.h.b;")
        )
        result = compile_front_midend(source, CompilerOptions())
        assert result.succeeded
        names = [snapshot.pass_name for snapshot in result.changed_snapshots()]
        assert "HeaderStackFlattening" not in names


class TestFlatteningEquivalence:
    def test_correct_pass_is_equivalent_on_the_reference_program(self):
        result = compile_front_midend(STACK_PROGRAM, CompilerOptions())
        report = TranslationValidator().validate_compilation(result)
        assert report.outcome == ValidationOutcome.EQUIVALENT, report.divergences

    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_correct_pass_is_equivalent_on_generated_stack_programs(self, seed):
        generator = RandomProgramGenerator(
            GeneratorConfig(seed=seed, p_header_stack=1.0)
        )
        validator = TranslationValidator()
        for index in range(8):
            program = generator.generate_indexed(index)
            result = compile_front_midend(
                parse_program(emit_program(program)), CompilerOptions()
            )
            assert result.succeeded, (seed, index, result.crash or result.error)
            report = validator.validate_compilation(result)
            assert report.outcome == ValidationOutcome.EQUIVALENT, (
                seed,
                index,
                report.outcome,
                [d.pass_name for d in report.divergences],
            )

    @pytest.mark.parametrize("platform", ["bmv2", "tofino"])
    def test_backends_agree_with_symbolic_oracle_on_stack_programs(self, platform):
        spec = BACKEND_REGISTRY[platform]
        generator = RandomProgramGenerator(GeneratorConfig(seed=9, p_header_stack=1.0))
        for index in range(4):
            program = generator.generate_indexed(index)
            source = emit_program(program)
            target = spec.target_cls(CompilerOptions(target=platform))
            executable = target.compile(program.clone())
            mismatch = packet_mismatch(program, source, executable, spec, 6)
            assert mismatch is None, (index, mismatch)


class TestSeededStackDefects:
    @pytest.mark.parametrize("bug_id", STACK_DEFECTS)
    def test_defect_diverges_in_the_flattening_pass(self, bug_id):
        result = compile_front_midend(
            STACK_PROGRAM, CompilerOptions(enabled_bugs={bug_id})
        )
        report = TranslationValidator().validate_compilation(result)
        assert report.outcome == ValidationOutcome.SEMANTIC_BUG
        assert report.divergences[0].pass_name == "HeaderStackFlattening"

    def test_push_off_by_one_leaves_top_element_stale(self):
        source = """
header Hdr_t {
    bit<8> a;
}
struct Headers {
    Hdr_t hs[2];
}
control ingress(inout Headers hdr) {
    apply {
        hdr.hs.push_front(1);
    }
}
"""
        correct = compile_front_midend(source, CompilerOptions()).final_program
        buggy = compile_front_midend(
            source,
            CompilerOptions(enabled_bugs={"stack_flatten_next_index_off_by_one"}),
        ).final_program
        packet_values = {"hs[0].a": 7, "hs[1].a": 9}
        for program, expected_top in ((correct, 7), (buggy, 9)):
            packet = build_packet_state(program, "Headers", packet_values)
            out = ConcreteInterpreter(program).run(packet)
            assert out.headers["hs[1]"].get("a") == expected_top

    def test_pop_validity_drop_keeps_stale_validity(self):
        source = """
header Hdr_t {
    bit<8> a;
}
struct Headers {
    Hdr_t hs[2];
}
control ingress(inout Headers hdr) {
    apply {
        hdr.hs.pop_front(1);
    }
}
"""
        correct = compile_front_midend(source, CompilerOptions()).final_program
        buggy = compile_front_midend(
            source, CompilerOptions(enabled_bugs={"stack_flatten_pop_validity_drop"})
        ).final_program
        for program, expect_valid in ((correct, True), (buggy, False)):
            packet = build_packet_state(program, "Headers", {"hs[1].a": 5})
            packet.headers["hs[0]"].valid = False  # stale destination slot
            packet.headers["hs[1]"].valid = True
            out = ConcreteInterpreter(program).run(packet)
            assert out.headers["hs[0]"].valid is expect_valid


class TestNativeStackSemantics:
    """The native interpreters implement the documented P4-16 §8.17 moves."""

    def _run(self, body: str, values, validity):
        source = """
header Hdr_t {
    bit<8> a;
}
struct Headers {
    Hdr_t hs[3];
}
control ingress(inout Headers hdr) {
    apply {
        %s
    }
}
""" % body
        program = parse_program(source)
        packet = build_packet_state(program, "Headers", values)
        for name, valid in validity.items():
            packet.headers[name].valid = valid
        return ConcreteInterpreter(program).run(packet)

    def test_push_front_shifts_up_and_invalidates_front(self):
        out = self._run(
            "hdr.hs.push_front(1);",
            {"hs[0].a": 1, "hs[1].a": 2, "hs[2].a": 3},
            {"hs[0]": True, "hs[1]": True, "hs[2]": False},
        )
        assert out.headers["hs[0]"].valid is False
        assert out.headers["hs[1]"].valid is True
        assert out.headers["hs[1]"].get("a") == 1
        assert out.headers["hs[2]"].valid is True
        assert out.headers["hs[2]"].get("a") == 2

    def test_pop_front_shifts_down_and_invalidates_top(self):
        out = self._run(
            "hdr.hs.pop_front(2);",
            {"hs[0].a": 1, "hs[1].a": 2, "hs[2].a": 3},
            {"hs[0]": True, "hs[1]": False, "hs[2]": True},
        )
        assert out.headers["hs[0]"].valid is True
        assert out.headers["hs[0]"].get("a") == 3
        assert out.headers["hs[1]"].valid is False
        assert out.headers["hs[2]"].valid is False

    def test_same_named_stack_in_unused_struct_does_not_shadow(self):
        """Stack metadata comes from the *bound* parameter structs only.

        A same-named stack field in a struct no block binds must not
        override the real stack's size in the concrete interpreter.
        """

        source = """
header Hdr_t {
    bit<8> a;
}
struct Headers {
    Hdr_t hs[2];
}
struct Meta {
    Hdr_t hs[4];
}
control ingress(inout Headers hdr) {
    apply {
        hdr.hs.push_front(1);
    }
}
"""
        program = parse_program(source)
        interpreter = ConcreteInterpreter(program)
        assert interpreter.stacks["hs"][1] == 2
        packet = build_packet_state(program, "Headers", {"hs[0].a": 7})
        out = interpreter.run(packet)
        assert out.headers["hs[1]"].get("a") == 7

    def test_push_beyond_capacity_invalidates_everything(self):
        out = self._run(
            "hdr.hs.push_front(3);",
            {"hs[0].a": 1},
            {"hs[0]": True, "hs[1]": True, "hs[2]": True},
        )
        assert all(
            out.headers[f"hs[{i}]"].valid is False for i in range(3)
        )
