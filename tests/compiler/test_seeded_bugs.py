"""Tests for the seeded-bug catalog: each defect manifests when enabled.

These tests document the trigger program for every seeded defect and check
that (a) the defect changes compiler behaviour when enabled, and (b) the
compiler behaves correctly when it is disabled.
"""

import pytest

from repro.compiler import CompilerOptions, compile_front_midend
from repro.compiler.bugs import (
    BUG_CATALOG,
    KIND_CRASH,
    KIND_SEMANTIC,
    LOCATION_BACKEND,
    bugs_by_kind,
    bugs_by_location,
    bugs_by_platform,
)
from repro.p4 import ast, emit_program, parse_program
from repro.p4.parser import ParserError


PRELUDE = """
header Hdr_t {
    bit<8> a;
    bit<8> b;
}

struct Headers {
    Hdr_t h;
    Hdr_t eth;
}
"""


def control_program(body: str, locals_: str = "", extra: str = "") -> str:
    return (
        PRELUDE
        + extra
        + "control ingress(inout Headers hdr) {\n"
        + locals_
        + "\n    apply {\n"
        + body
        + "\n    }\n}\n"
    )


def compile_with(source: str, *bugs: str):
    return compile_front_midend(source, CompilerOptions(enabled_bugs=set(bugs)))


class TestCatalogStructure:
    def test_catalog_is_nonempty_and_consistent(self):
        assert len(BUG_CATALOG) >= 20
        for bug_id, bug in BUG_CATALOG.items():
            assert bug.bug_id == bug_id
            assert bug.kind in (KIND_CRASH, KIND_SEMANTIC)

    def test_kind_partition(self):
        crash = bugs_by_kind(KIND_CRASH)
        semantic = bugs_by_kind(KIND_SEMANTIC)
        assert len(crash) + len(semantic) == len(BUG_CATALOG)

    def test_location_partition(self):
        total = sum(
            len(bugs_by_location(location))
            for location in ("front_end", "mid_end", "back_end")
        )
        assert total == len(BUG_CATALOG)

    def test_every_platform_has_bugs(self):
        assert bugs_by_platform("p4c")
        assert bugs_by_platform("bmv2")
        assert bugs_by_platform("tofino")
        assert bugs_by_platform("ebpf")

    def test_backend_bugs_tagged_with_backend_platform(self):
        for bug in bugs_by_location(LOCATION_BACKEND):
            assert bug.platform in ("bmv2", "tofino", "ebpf")


class TestCrashBugs:
    def test_def_use_return_clears_scope(self):
        extra = """
bit<8> ret_it(inout bit<8> x) {
    return x;
}
"""
        source = control_program(
            "bit<8> tmp = hdr.h.a; hdr.h.b = ret_it(tmp); hdr.h.a = tmp;",
            extra=extra,
        )
        clean = compile_with(source)
        assert clean.succeeded
        buggy = compile_with(source, "def_use_return_clears_scope")
        assert buggy.crashed
        assert buggy.crash.signature == "post-typecheck-invariant"

    def test_typecheck_shift_width_crash(self):
        source = control_program("hdr.h.a = (bit<8>) ((1 << hdr.h.b) + 2);")
        clean = compile_with(source)
        assert clean.succeeded or clean.rejected  # never a crash
        buggy = compile_with(source, "typecheck_shift_width_crash")
        assert buggy.crashed
        assert buggy.crash.pass_name == "TypeChecking"

    def test_strength_reduction_negative_slice(self):
        source = control_program("hdr.h.a = hdr.h.b << 8w9;")
        clean = compile_with(source)
        assert clean.succeeded
        buggy = compile_with(source, "strength_reduction_negative_slice")
        assert buggy.crashed
        assert buggy.crash.signature == "negative-slice-index"

    def test_inline_missing_function_snowball(self):
        extra = """
bit<8> bump(inout bit<8> x) {
    x = x + 8w1;
    return x;
}
"""
        source = control_program("hdr.h.a = bump(hdr.h.b) + 8w1;", extra=extra)
        clean = compile_with(source)
        assert clean.succeeded
        buggy = compile_with(source, "inline_missing_function")
        assert buggy.crashed
        # The defective front-end pass leaves a call node behind; the crash
        # surfaces in whichever downstream pass first trips over it.
        assert buggy.crash.pass_name in ("TypeCheckingPost", "CheckNoFunctionCalls")

    def test_parser_loop_unroll_crash(self):
        source = PRELUDE + """
parser prs(inout Headers hdr) {
    state start {
        transition select (hdr.h.a) {
            8w1 : looper;
            default : accept;
        }
    }
    state looper {
        hdr.h.a = hdr.h.a + 8w1;
        transition select (hdr.h.a) {
            8w5 : accept;
            default : looper;
        }
    }
}

control ingress(inout Headers hdr) {
    apply {
        hdr.h.b = 8w1;
    }
}
"""
        clean = compile_with(source)
        assert clean.succeeded
        buggy = compile_with(source, "parser_loop_unroll_crash")
        assert buggy.crashed
        assert buggy.crash.signature == "parser-unroll-overflow"

    def test_crash_signatures_are_distinct(self):
        # Distinct seeded crashes produce distinct signatures, which is what
        # the crash deduplication in the campaign relies on.
        signatures = set()
        cases = [
            (
                control_program("hdr.h.a = hdr.h.b << 8w9;"),
                "strength_reduction_negative_slice",
            ),
            (
                control_program("hdr.h.a = (bit<8>) ((1 << hdr.h.b) + 2);"),
                "typecheck_shift_width_crash",
            ),
        ]
        for source, bug in cases:
            result = compile_with(source, bug)
            assert result.crashed
            signatures.add(result.crash.signature)
        assert len(signatures) == len(cases)


class TestSemanticBugs:
    """Semantic defects change the emitted program but never crash."""

    def _emitted(self, source: str, *bugs: str) -> str:
        result = compile_with(source, *bugs)
        assert result.succeeded, f"{result.crash or result.error}"
        return emit_program(result.final_program)

    def test_constant_folding_no_mask(self):
        source = control_program("hdr.h.a = 8w1 - 8w2;")
        assert "8w255" in self._emitted(source)
        assert "8w0" in self._emitted(source, "constant_folding_no_mask")

    def test_strength_reduction_shift_semantics(self):
        source = control_program("hdr.h.a = hdr.h.b * 8w4;")
        correct = self._emitted(source)
        buggy = self._emitted(source, "strength_reduction_shift_semantics")
        assert "<< 8w2" in correct
        assert "<< 8w3" in buggy

    def test_exit_ignores_copy_out(self):
        locals_ = """
    action set_val(inout bit<8> val) {
        val = 8w3;
        exit;
    }
"""
        source = control_program("set_val(hdr.h.a);", locals_=locals_)
        correct = compile_with(source)
        buggy = compile_with(source, "exit_ignores_copy_out")
        assert correct.succeeded and buggy.succeeded
        assert emit_program(correct.final_program) != emit_program(buggy.final_program)

    def test_action_param_slice_drop(self):
        locals_ = """
    action adjust(inout bit<7> val) {
        hdr.h.a[0:0] = 1w0;
        val = 7w1;
    }
"""
        source = control_program("adjust(hdr.h.a[7:1]);", locals_=locals_)
        correct = compile_with(source)
        buggy = compile_with(source, "action_param_slice_drop")
        assert correct.succeeded and buggy.succeeded
        correct_text = emit_program(correct.final_program)
        buggy_text = emit_program(buggy.final_program)
        assert "hdr.h.a[0:0]" in correct_text
        assert "hdr.h.a[0:0]" not in buggy_text

    def test_copy_prop_across_invalid(self):
        source = control_program(
            "hdr.h.setInvalid(); hdr.h.a = 8w1; hdr.eth.a = hdr.h.a;"
        )
        correct = self._emitted(source)
        buggy = self._emitted(source, "copy_prop_across_invalid")
        assert correct != buggy

    def test_dead_code_removes_validity_call(self):
        source = control_program(
            "if (hdr.h.a == 8w1) { hdr.h.setInvalid(); hdr.h.b = 8w2; }"
        )
        correct = self._emitted(source)
        buggy = self._emitted(source, "dead_code_removes_validity_call")
        assert "setInvalid" in correct
        assert "setInvalid" not in buggy

    def test_simplify_control_flow_empty_if(self):
        source = control_program("if (hdr.h.a == 8w1) { } else { hdr.h.b = 8w9; }")
        correct = self._emitted(source)
        buggy = self._emitted(source, "simplify_control_flow_empty_if")
        assert "hdr.h.b" in correct
        assert "hdr.h.b = 8w9" not in buggy

    def test_side_effect_argument_order(self):
        extra = """
void twice(inout bit<8> x, inout bit<8> y) {
    x = x + 8w1;
    y = y + 8w2;
}
"""
        source = control_program("twice(hdr.h.a, hdr.h.a);", extra=extra)
        correct = compile_with(source)
        buggy = compile_with(source, "side_effect_argument_order")
        assert correct.succeeded and buggy.succeeded
        assert emit_program(correct.final_program) != emit_program(buggy.final_program)

    def test_inline_alias_copy_out(self):
        extra = """
void shuffle(inout bit<8> x, in bit<8> y) {
    x = 8w5;
    x = x + y;
}
"""
        source = control_program("shuffle(hdr.h.a, hdr.h.a);", extra=extra)
        correct = compile_with(source)
        buggy = compile_with(source, "inline_alias_copy_out")
        assert correct.succeeded and buggy.succeeded
        assert emit_program(correct.final_program) != emit_program(buggy.final_program)

    def test_predication_nested_else_lost(self):
        locals_ = """
    action nest() {
        if (hdr.h.a == 8w1) {
            if (hdr.h.b == 8w2) {
                hdr.h.b = 8w3;
            } else {
                hdr.h.b = 8w4;
            }
        }
    }
    table t {
        key = { hdr.h.a : exact; }
        actions = { nest(); NoAction(); }
        default_action = NoAction();
    }
"""
        source = control_program("t.apply();", locals_=locals_)
        correct = self._emitted(source)
        buggy = self._emitted(source, "predication_nested_else_lost")
        assert "8w4" in correct
        assert "8w4" not in buggy


class TestInvalidTransformation:
    def test_emitted_program_fails_to_reparse(self):
        locals_ = """
    action cond_set() {
        if (hdr.h.a == 8w1) {
            hdr.h.b = 8w2;
        }
    }
    table t {
        key = { hdr.h.a : exact; }
        actions = { cond_set(); NoAction(); }
        default_action = NoAction();
    }
"""
        source = control_program("t.apply();", locals_=locals_)
        result = compile_with(source, "midend_emit_missing_parens")
        assert result.succeeded
        final_source = result.snapshots[-1].source
        with pytest.raises(ParserError):
            parse_program(final_source)
