"""Unit tests for the term simplifier."""

from repro import smt
from repro.smt.simplify import simplify


X = smt.BitVecSym("x", 8)
ZERO = smt.BitVecVal(0, 8)
ONE = smt.BitVecVal(1, 8)
ONES = smt.BitVecVal(0xFF, 8)


class TestConstantFolding:
    def test_add_constants(self):
        assert simplify(smt.Add(smt.BitVecVal(200, 8), smt.BitVecVal(100, 8))) == smt.BitVecVal(44, 8)

    def test_mul_constants(self):
        assert simplify(smt.Mul(smt.BitVecVal(7, 8), smt.BitVecVal(6, 8))) == smt.BitVecVal(42, 8)

    def test_udiv_by_zero_convention(self):
        assert simplify(smt.UDiv(ONE, ZERO)) == ONES

    def test_urem_by_zero_convention(self):
        assert simplify(smt.URem(smt.BitVecVal(9, 8), ZERO)) == smt.BitVecVal(9, 8)

    def test_concat_constants(self):
        folded = simplify(smt.Concat(smt.BitVecVal(0xAB, 8), smt.BitVecVal(0xCD, 8)))
        assert folded == smt.BitVecVal(0xABCD, 16)

    def test_extract_constant(self):
        assert simplify(smt.Extract(7, 4, smt.BitVecVal(0xAB, 8))) == smt.BitVecVal(0xA, 4)

    def test_shift_constants(self):
        assert simplify(smt.Shl(ONE, smt.BitVecVal(3, 8))) == smt.BitVecVal(8, 8)
        assert simplify(smt.LShr(smt.BitVecVal(128, 8), smt.BitVecVal(3, 8))) == smt.BitVecVal(16, 8)

    def test_comparison_constants(self):
        assert simplify(smt.Ult(ONE, smt.BitVecVal(2, 8))) == smt.BoolVal(True)
        assert simplify(smt.Eq(ONE, ZERO)) == smt.BoolVal(False)


class TestIdentities:
    def test_add_zero(self):
        assert simplify(smt.Add(X, ZERO)) == X
        assert simplify(smt.Add(ZERO, X)) == X

    def test_sub_self_is_zero(self):
        assert simplify(smt.Sub(X, X)) == ZERO

    def test_mul_by_zero_and_one(self):
        assert simplify(smt.Mul(X, ZERO)) == ZERO
        assert simplify(smt.Mul(ONE, X)) == X

    def test_and_identities(self):
        assert simplify(smt.BvAnd(X, ZERO)) == ZERO
        assert simplify(smt.BvAnd(X, ONES)) == X
        assert simplify(smt.BvAnd(X, X)) == X

    def test_or_identities(self):
        assert simplify(smt.BvOr(X, ZERO)) == X
        assert simplify(smt.BvOr(X, ONES)) == ONES

    def test_xor_self_is_zero(self):
        assert simplify(smt.BvXor(X, X)) == ZERO

    def test_double_not(self):
        assert simplify(smt.BvNot(smt.BvNot(X))) == X

    def test_full_extract_is_identity(self):
        assert simplify(smt.Extract(7, 0, X)) == X

    def test_eq_self_is_true(self):
        assert simplify(smt.Eq(X, X)) == smt.BoolVal(True)

    def test_ult_zero_is_false(self):
        assert simplify(smt.Ult(X, ZERO)) == smt.BoolVal(False)


class TestBooleanSimplification:
    def test_and_with_false(self):
        a = smt.BoolSym("a")
        assert simplify(smt.And(a, smt.BoolVal(False))) == smt.BoolVal(False)

    def test_and_with_true_dropped(self):
        a = smt.BoolSym("a")
        assert simplify(smt.And(a, smt.BoolVal(True))) == a

    def test_or_with_true(self):
        a = smt.BoolSym("a")
        assert simplify(smt.Or(a, smt.BoolVal(True))) == smt.BoolVal(True)

    def test_duplicate_conjuncts_removed(self):
        a, b = smt.BoolSym("a"), smt.BoolSym("b")
        simplified = simplify(smt.And(a, b, a))
        assert simplified == smt.And(a, b)

    def test_ite_constant_condition(self):
        a, b = smt.BitVecSym("a", 8), smt.BitVecSym("b", 8)
        assert simplify(smt.Ite(smt.BoolVal(True), a, b)) == a
        assert simplify(smt.Ite(smt.BoolVal(False), a, b)) == b

    def test_ite_same_branches(self):
        cond = smt.BoolSym("c")
        a = smt.BitVecSym("a", 8)
        assert simplify(smt.Ite(cond, a, a)) == a

    def test_bool_ite_collapses_to_condition(self):
        cond = smt.BoolSym("c")
        assert simplify(smt.Ite(cond, smt.BoolVal(True), smt.BoolVal(False))) == cond
        assert simplify(smt.Ite(cond, smt.BoolVal(False), smt.BoolVal(True))) == smt.Not(cond)

    def test_nested_folding(self):
        # (1 + 2) * 3 == 9 should fold completely even when nested under eq.
        nine = smt.Mul(smt.Add(ONE, smt.BitVecVal(2, 8)), smt.BitVecVal(3, 8))
        assert simplify(smt.Eq(nine, smt.BitVecVal(9, 8))) == smt.BoolVal(True)
