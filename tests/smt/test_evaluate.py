"""Unit tests for concrete term evaluation."""

import pytest

from repro import smt
from repro.smt.evaluate import EvaluationError, evaluate


X = smt.BitVecSym("x", 8)
Y = smt.BitVecSym("y", 8)


class TestArithmetic:
    def test_add_wraps(self):
        assert evaluate(smt.Add(X, Y), {"x": 200, "y": 100}) == 44

    def test_sub_wraps(self):
        assert evaluate(smt.Sub(X, Y), {"x": 1, "y": 2}) == 255

    def test_mul_wraps(self):
        assert evaluate(smt.Mul(X, Y), {"x": 16, "y": 32}) == 0

    def test_udiv(self):
        assert evaluate(smt.UDiv(X, Y), {"x": 7, "y": 2}) == 3

    def test_udiv_by_zero_is_all_ones(self):
        assert evaluate(smt.UDiv(X, Y), {"x": 7, "y": 0}) == 255

    def test_urem(self):
        assert evaluate(smt.URem(X, Y), {"x": 7, "y": 4}) == 3

    def test_urem_by_zero_is_dividend(self):
        assert evaluate(smt.URem(X, Y), {"x": 7, "y": 0}) == 7


class TestBitwiseAndShifts:
    def test_and_or_xor_not(self):
        env = {"x": 0b1100, "y": 0b1010}
        assert evaluate(smt.BvAnd(X, Y), env) == 0b1000
        assert evaluate(smt.BvOr(X, Y), env) == 0b1110
        assert evaluate(smt.BvXor(X, Y), env) == 0b0110
        assert evaluate(smt.BvNot(X), env) == 0b11110011

    def test_shifts(self):
        assert evaluate(smt.Shl(X, Y), {"x": 1, "y": 3}) == 8
        assert evaluate(smt.LShr(X, Y), {"x": 128, "y": 3}) == 16

    def test_oversized_shift_is_zero(self):
        assert evaluate(smt.Shl(X, Y), {"x": 1, "y": 8}) == 0
        assert evaluate(smt.LShr(X, Y), {"x": 255, "y": 200}) == 0


class TestStructuralOps:
    def test_concat(self):
        term = smt.Concat(X, Y)
        assert evaluate(term, {"x": 0xAB, "y": 0xCD}) == 0xABCD

    def test_extract(self):
        term = smt.Extract(7, 4, X)
        assert evaluate(term, {"x": 0xAB}) == 0xA

    def test_zero_ext(self):
        term = smt.ZeroExt(8, X)
        assert evaluate(term, {"x": 0xFF}) == 0xFF

    def test_ite(self):
        term = smt.Ite(smt.Eq(X, smt.BitVecVal(1, 8)), Y, smt.BitVecVal(0, 8))
        assert evaluate(term, {"x": 1, "y": 42}) == 42
        assert evaluate(term, {"x": 2, "y": 42}) == 0


class TestBooleans:
    def test_comparisons(self):
        assert evaluate(smt.Ult(X, Y), {"x": 1, "y": 2}) is True
        assert evaluate(smt.Ule(X, Y), {"x": 2, "y": 2}) is True
        assert evaluate(smt.Ugt(X, Y), {"x": 3, "y": 2}) is True
        assert evaluate(smt.Uge(X, Y), {"x": 1, "y": 2}) is False

    def test_bool_connectives(self):
        a, b = smt.BoolSym("a"), smt.BoolSym("b")
        env = {"a": True, "b": False}
        assert evaluate(smt.And(a, b), env) is False
        assert evaluate(smt.Or(a, b), env) is True
        assert evaluate(smt.Not(b), env) is True
        assert evaluate(smt.Implies(a, b), env) is False

    def test_default_for_unbound_symbols(self):
        assert evaluate(X, {}) == 0

    def test_missing_symbol_raises_when_no_default(self):
        with pytest.raises(EvaluationError):
            evaluate(X, {}, default=None)

    def test_values_are_masked_to_width(self):
        assert evaluate(X, {"x": 0x1FF}) == 0xFF
