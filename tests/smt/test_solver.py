"""Unit and property tests for the high-level SMT solver."""

from hypothesis import given, settings, strategies as st

from repro import smt
from repro.smt import CheckResult, Solver, equivalent, find_divergence
from repro.smt.evaluate import evaluate
from repro.smt.solver import enumerate_models


X = smt.BitVecSym("x", 8)
Y = smt.BitVecSym("y", 8)


class TestCheck:
    def test_trivially_sat(self):
        solver = Solver()
        assert solver.check() == CheckResult.SAT

    def test_simple_equation(self):
        solver = Solver()
        solver.add(smt.Eq(smt.Add(X, smt.BitVecVal(1, 8)), smt.BitVecVal(5, 8)))
        assert solver.check() == CheckResult.SAT
        assert solver.model()["x"] == 4

    def test_unsat_constraint(self):
        solver = Solver()
        solver.add(smt.Eq(X, smt.BitVecVal(1, 8)))
        solver.add(smt.Eq(X, smt.BitVecVal(2, 8)))
        assert solver.check() == CheckResult.UNSAT

    def test_model_satisfies_all_constraints(self):
        solver = Solver()
        constraints = [
            smt.Ult(X, smt.BitVecVal(100, 8)),
            smt.Ugt(X, smt.BitVecVal(50, 8)),
            smt.Eq(smt.BvAnd(X, smt.BitVecVal(1, 8)), smt.BitVecVal(1, 8)),
        ]
        solver.add(*constraints)
        assert solver.check() == CheckResult.SAT
        model = solver.model()
        for constraint in constraints:
            assert evaluate(constraint, model.values) is True

    def test_multiplication_inversion(self):
        solver = Solver()
        solver.add(smt.Eq(smt.Mul(X, smt.BitVecVal(3, 8)), smt.BitVecVal(30, 8)))
        solver.add(smt.Ult(X, smt.BitVecVal(16, 8)))
        assert solver.check() == CheckResult.SAT
        assert (solver.model()["x"] * 3) % 256 == 30

    def test_boolean_symbols(self):
        p = smt.BoolSym("p")
        q = smt.BoolSym("q")
        solver = Solver()
        solver.add(smt.Or(p, q))
        solver.add(smt.Not(p))
        assert solver.check() == CheckResult.SAT
        model = solver.model()
        assert model["q"] is True
        assert model["p"] is False

    def test_extra_constraints_do_not_persist(self):
        solver = Solver()
        solver.add(smt.Ult(X, smt.BitVecVal(10, 8)))
        assert solver.check(smt.Eq(X, smt.BitVecVal(200, 8))) == CheckResult.UNSAT
        assert solver.check() == CheckResult.SAT

    def test_reset(self):
        solver = Solver()
        solver.add(smt.Eq(X, smt.BitVecVal(1, 8)))
        solver.reset()
        assert solver.constraints == []

    def test_non_boolean_constraint_rejected(self):
        solver = Solver()
        try:
            solver.add(X)
        except TypeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected TypeError")

    def test_division_constraint(self):
        solver = Solver()
        solver.add(smt.Eq(smt.UDiv(X, smt.BitVecVal(4, 8)), smt.BitVecVal(5, 8)))
        assert solver.check() == CheckResult.SAT
        assert solver.model()["x"] // 4 == 5

    def test_shift_constraint(self):
        solver = Solver()
        solver.add(smt.Eq(smt.Shl(smt.BitVecVal(1, 8), X), smt.BitVecVal(16, 8)))
        assert solver.check() == CheckResult.SAT
        assert solver.model()["x"] == 4


class TestEquivalence:
    def test_equivalent_rewrites(self):
        left = smt.Add(X, X)
        right = smt.Mul(X, smt.BitVecVal(2, 8))
        assert equivalent(left, right)

    def test_inequivalent_terms_produce_witness(self):
        left = smt.Add(X, smt.BitVecVal(1, 8))
        right = smt.Add(X, smt.BitVecVal(2, 8))
        witness = find_divergence(left, right)
        assert witness is not None
        assert evaluate(left, witness.values) != evaluate(right, witness.values)

    def test_xor_swap_identity(self):
        # x ^ y ^ y == x
        left = smt.BvXor(smt.BvXor(X, Y), Y)
        assert equivalent(left, X)

    def test_demorgan(self):
        p, q = smt.BoolSym("p"), smt.BoolSym("q")
        assert equivalent(smt.Not(smt.And(p, q)), smt.Or(smt.Not(p), smt.Not(q)))

    def test_divergence_respects_extra_constraints(self):
        # Terms differ only when x >= 16; constraining x < 16 makes them equal.
        left = smt.BvAnd(X, smt.BitVecVal(0x0F, 8))
        right = X
        constraint = smt.Ult(X, smt.BitVecVal(16, 8))
        assert find_divergence(left, right, [constraint]) is None
        assert find_divergence(left, right) is not None

    def test_prefer_nonzero_witness(self):
        left = smt.BvOr(X, Y)
        right = smt.BvXor(X, Y)
        witness = find_divergence(left, right, prefer_nonzero=[X, Y])
        assert witness is not None
        # Both preferred symbols should be non-zero because a non-zero
        # witness exists for this pair.
        assert witness["x"] != 0
        assert witness["y"] != 0


class TestModelEnumeration:
    def test_enumerate_distinct_models(self):
        constraint = smt.Ult(X, smt.BitVecVal(4, 8))
        models = enumerate_models(constraint, [X], limit=10)
        values = sorted(model["x"] for model in models)
        assert values == [0, 1, 2, 3]

    def test_limit_respected(self):
        constraint = smt.Ult(X, smt.BitVecVal(100, 8))
        models = enumerate_models(constraint, [X], limit=5)
        assert len(models) == 5
        assert len({model["x"] for model in models}) == 5


@settings(max_examples=30, deadline=None)
@given(
    value=st.integers(min_value=0, max_value=255),
    offset=st.integers(min_value=0, max_value=255),
)
def test_solver_solves_linear_equations(value, offset):
    solver = Solver()
    target = smt.BitVecVal(value, 8)
    solver.add(smt.Eq(smt.Add(X, smt.BitVecVal(offset, 8)), target))
    assert solver.check() == CheckResult.SAT
    assert (solver.model()["x"] + offset) % 256 == value


@settings(max_examples=30, deadline=None)
@given(a=st.integers(min_value=0, max_value=255), b=st.integers(min_value=0, max_value=255))
def test_equivalence_of_commuted_addition(a, b):
    left = smt.Add(smt.Add(X, smt.BitVecVal(a, 8)), smt.BitVecVal(b, 8))
    right = smt.Add(smt.Add(X, smt.BitVecVal(b, 8)), smt.BitVecVal(a, 8))
    assert equivalent(left, right)
