"""Unit tests for the CDCL SAT solver."""

import random

import pytest

from repro.smt.sat import SatSolver, solve_cnf


def check_model(clauses, assignment):
    for clause in clauses:
        satisfied = any(
            (literal > 0) == assignment.get(abs(literal), False) for literal in clause
        )
        if not satisfied:
            return False
    return True


class TestBasicCases:
    def test_empty_formula_is_sat(self):
        assert solve_cnf(0, []).satisfiable

    def test_single_unit_clause(self):
        result = solve_cnf(1, [[1]])
        assert result.satisfiable
        assert result.assignment[1] is True

    def test_contradictory_units(self):
        assert not solve_cnf(1, [[1], [-1]]).satisfiable

    def test_empty_clause_is_unsat(self):
        assert not solve_cnf(1, [[1], []]).satisfiable

    def test_simple_implication_chain(self):
        # (x1) and (x1 -> x2) and (x2 -> x3)
        clauses = [[1], [-1, 2], [-2, 3]]
        result = solve_cnf(3, clauses)
        assert result.satisfiable
        assert result.assignment[3] is True

    def test_requires_backtracking(self):
        # Forces at least one decision to be revised.
        clauses = [[1, 2], [-1, 3], [-2, -3], [-1, -2], [1, -3]]
        result = solve_cnf(3, clauses)
        assert result.satisfiable
        assert check_model(clauses, result.assignment)

    def test_unsat_pigeonhole_2_into_1(self):
        # Two pigeons, one hole.
        clauses = [[1], [2], [-1, -2]]
        assert not solve_cnf(2, clauses).satisfiable

    def test_tautological_clause_ignored(self):
        result = solve_cnf(2, [[1, -1], [2]])
        assert result.satisfiable
        assert result.assignment[2] is True


class TestPigeonhole:
    def _pigeonhole(self, pigeons, holes):
        # var(p, h) = p * holes + h + 1
        def var(p, h):
            return p * holes + h + 1

        clauses = []
        for p in range(pigeons):
            clauses.append([var(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    clauses.append([-var(p1, h), -var(p2, h)])
        return pigeons * holes, clauses

    def test_php_3_into_3_sat(self):
        num_vars, clauses = self._pigeonhole(3, 3)
        result = solve_cnf(num_vars, clauses)
        assert result.satisfiable
        assert check_model(clauses, result.assignment)

    def test_php_4_into_3_unsat(self):
        num_vars, clauses = self._pigeonhole(4, 3)
        assert not solve_cnf(num_vars, clauses).satisfiable

    def test_php_5_into_4_unsat(self):
        num_vars, clauses = self._pigeonhole(5, 4)
        assert not solve_cnf(num_vars, clauses).satisfiable


class TestRandom3Sat:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_instances_agree_with_bruteforce(self, seed):
        rng = random.Random(seed)
        num_vars = 8
        num_clauses = 30
        clauses = []
        for _ in range(num_clauses):
            variables = rng.sample(range(1, num_vars + 1), 3)
            clauses.append([v if rng.random() < 0.5 else -v for v in variables])

        expected = self._bruteforce(num_vars, clauses)
        result = solve_cnf(num_vars, clauses)
        assert result.satisfiable == expected
        if result.satisfiable:
            assert check_model(clauses, result.assignment)

    @staticmethod
    def _bruteforce(num_vars, clauses):
        for mask in range(1 << num_vars):
            assignment = {v: bool((mask >> (v - 1)) & 1) for v in range(1, num_vars + 1)}
            if check_model(clauses, assignment):
                return True
        return False


class TestSolverReuse:
    def test_solver_object_usable_directly(self):
        solver = SatSolver(2, [[1, 2], [-1, 2]])
        result = solver.solve()
        assert result.satisfiable
        assert result.assignment[2] is True
