"""Property-based tests: the simplifier must preserve semantics.

We generate random terms over a fixed pool of symbols, simplify them, and
check that simplified and original terms evaluate identically under random
assignments.
"""

from hypothesis import given, settings, strategies as st

from repro import smt
from repro.smt.evaluate import evaluate
from repro.smt.simplify import simplify

WIDTH = 8
SYMBOL_NAMES = ["x", "y", "z"]
BOOL_NAMES = ["p", "q"]


def bv_leaves():
    constants = st.integers(min_value=0, max_value=(1 << WIDTH) - 1).map(
        lambda value: smt.BitVecVal(value, WIDTH)
    )
    symbols = st.sampled_from([smt.BitVecSym(name, WIDTH) for name in SYMBOL_NAMES])
    return st.one_of(constants, symbols)


def bool_leaves():
    return st.one_of(
        st.booleans().map(smt.BoolVal),
        st.sampled_from([smt.BoolSym(name) for name in BOOL_NAMES]),
    )


def bv_terms(depth=3):
    if depth == 0:
        return bv_leaves()
    sub = bv_terms(depth - 1)
    binary_ops = st.sampled_from(
        [smt.Add, smt.Sub, smt.Mul, smt.BvAnd, smt.BvOr, smt.BvXor, smt.Shl, smt.LShr,
         smt.UDiv, smt.URem]
    )
    return st.one_of(
        bv_leaves(),
        st.tuples(binary_ops, sub, sub).map(lambda t: t[0](t[1], t[2])),
        sub.map(smt.BvNot),
        st.tuples(bool_terms(depth - 1), sub, sub).map(lambda t: smt.Ite(t[0], t[1], t[2])),
    )


def bool_terms(depth=2):
    if depth == 0:
        return bool_leaves()
    sub_bv = bv_terms(depth - 1)
    sub_bool = bool_terms(depth - 1)
    return st.one_of(
        bool_leaves(),
        st.tuples(sub_bv, sub_bv).map(lambda t: smt.Eq(t[0], t[1])),
        st.tuples(sub_bv, sub_bv).map(lambda t: smt.Ult(t[0], t[1])),
        st.tuples(sub_bv, sub_bv).map(lambda t: smt.Ule(t[0], t[1])),
        st.tuples(sub_bool, sub_bool).map(lambda t: smt.And(t[0], t[1])),
        st.tuples(sub_bool, sub_bool).map(lambda t: smt.Or(t[0], t[1])),
        sub_bool.map(smt.Not),
    )


def assignments():
    return st.fixed_dictionaries(
        {
            **{name: st.integers(min_value=0, max_value=(1 << WIDTH) - 1) for name in SYMBOL_NAMES},
            **{name: st.booleans() for name in BOOL_NAMES},
        }
    )


@settings(max_examples=200, deadline=None)
@given(term=bv_terms(), env=assignments())
def test_simplify_preserves_bitvector_semantics(term, env):
    assert evaluate(simplify(term), env) == evaluate(term, env)


@settings(max_examples=200, deadline=None)
@given(term=bool_terms(), env=assignments())
def test_simplify_preserves_boolean_semantics(term, env):
    assert evaluate(simplify(term), env) == evaluate(term, env)


@settings(max_examples=100, deadline=None)
@given(term=bv_terms(), env=assignments())
def test_simplify_is_idempotent(term, env):
    once = simplify(term)
    twice = simplify(once)
    assert evaluate(once, env) == evaluate(twice, env)
    assert twice == simplify(twice)
