"""Invariants of term hash-consing and the persistent solver caches.

These pin down the contracts the validation hot path relies on:

* ``Term`` identity coincides with structural equality (hash-consing),
* ``simplify`` is idempotent and cache-consistent across calls,
* ``find_divergence`` answers syntactic equivalences with *zero* SAT
  solver invocations, and
* ``enumerate_models`` keeps producing distinct models while reusing one
  incremental SAT solver (learned clauses and watch lists carry over).
"""

import copy

from repro import smt
from repro.smt import terms as t
from repro.smt.sat import SatSolver
from repro.smt.simplify import simplify
from repro.smt.solver import STATS, CheckResult, Solver, enumerate_models, find_divergence


X = smt.BitVecSym("x", 8)
Y = smt.BitVecSym("y", 8)


class TestInterning:
    def test_identical_construction_returns_same_object(self):
        left = smt.Add(smt.BitVecSym("a", 8), smt.BitVecVal(1, 8))
        right = smt.Add(smt.BitVecSym("a", 8), smt.BitVecVal(1, 8))
        assert left is right

    def test_structural_equality_is_pointer_identity(self):
        first = smt.Ite(smt.BoolSym("c"), X, Y)
        second = smt.Ite(smt.BoolSym("c"), X, Y)
        assert first == second
        assert first is second

    def test_different_terms_are_different_objects(self):
        assert smt.Add(X, Y) is not smt.Add(Y, X)
        assert smt.BitVecVal(3, 8) is not smt.BitVecVal(3, 16)

    def test_direct_term_construction_interns(self):
        # The simplifier rebuilds nodes through the raw constructor.
        raw = t.Term("bvadd", t.BitVecSort(8), (X, Y))
        assert raw is smt.Add(X, Y)

    def test_copy_and_deepcopy_preserve_identity(self):
        term = smt.Mul(X, smt.BitVecVal(3, 8))
        assert copy.copy(term) is term
        assert copy.deepcopy(term) is term

    def test_symbols_with_same_name_are_shared(self):
        assert smt.BitVecSym("hdr.h.a", 8) is smt.BitVecSym("hdr.h.a", 8)
        assert smt.BoolSym("p") is smt.BoolSym("p")

    def test_intern_table_grows_and_reports_size(self):
        before = smt.intern_table_size()
        smt.BitVecSym("completely_fresh_symbol_for_size_test", 8)
        assert smt.intern_table_size() == before + 1

    def test_clear_term_caches_keeps_engine_functional(self):
        smt.simplify(smt.Add(X, smt.BitVecVal(0, 8)))
        smt.clear_term_caches()
        assert smt.simplify_cache_size() == 0
        # TRUE/FALSE singletons stay canonical and solving still works.
        assert smt.BoolVal(True) is t.TRUE
        assert smt.find_divergence(smt.Add(X, Y), smt.Add(X, Y)) is None
        solver = Solver()
        solver.add(smt.Eq(X, smt.BitVecVal(9, 8)))
        assert solver.check() == CheckResult.SAT
        assert solver.model()["x"] == 9


class TestSimplifyMemoisation:
    def test_simplify_idempotent(self):
        term = smt.Add(smt.Mul(X, smt.BitVecVal(1, 8)), smt.BitVecVal(0, 8))
        once = simplify(term)
        assert simplify(once) is once

    def test_simplify_cache_consistent_across_calls(self):
        term = smt.BvXor(smt.Add(X, Y), smt.Add(X, Y))
        assert simplify(term) is simplify(term)

    def test_shared_subdags_share_results(self):
        shared = smt.Add(X, smt.BitVecVal(0, 8))
        left = smt.Mul(shared, smt.BitVecVal(1, 8))
        right = smt.BvOr(shared, shared)
        # Both simplify through the shared child; results agree on it.
        assert simplify(left) is simplify(shared) is X
        assert simplify(right) is X

    def test_simplify_result_is_interned(self):
        folded = simplify(smt.Add(smt.BitVecVal(1, 8), smt.BitVecVal(2, 8)))
        assert folded is smt.BitVecVal(3, 8)


class TestSyntacticFastPath:
    def test_identical_terms_need_zero_sat_invocations(self):
        term = smt.Add(smt.Mul(X, Y), smt.BitVecVal(7, 8))
        STATS.reset()
        assert find_divergence(term, term) is None
        assert STATS.sat_invocations == 0
        assert STATS.syntactic_equivalences == 1

    def test_structurally_equal_terms_need_zero_sat_invocations(self):
        left = smt.Concat(X, smt.Extract(3, 0, Y))
        right = smt.Concat(
            smt.BitVecSym("x", 8), smt.Extract(3, 0, smt.BitVecSym("y", 8))
        )
        STATS.reset()
        assert find_divergence(left, right) is None
        assert STATS.sat_invocations == 0

    def test_equal_normal_forms_need_zero_sat_invocations(self):
        left = smt.Add(X, smt.BitVecVal(0, 8))
        right = smt.Mul(X, smt.BitVecVal(1, 8))
        STATS.reset()
        assert find_divergence(left, right) is None
        assert STATS.sat_invocations == 0

    def test_genuine_divergence_still_solved(self):
        STATS.reset()
        witness = find_divergence(X, smt.BvNot(X))
        assert witness is not None
        assert STATS.sat_invocations >= 1


class TestIncrementalSolver:
    def test_enumerate_models_distinct_after_clause_reuse(self):
        constraint = smt.Ult(X, smt.BitVecVal(6, 8))
        models = enumerate_models(constraint, [X], limit=10)
        values = sorted(model["x"] for model in models)
        assert values == [0, 1, 2, 3, 4, 5]

    def test_enumerate_models_uses_one_sat_solver(self):
        STATS.reset()
        constraint = smt.Ult(X, smt.BitVecVal(4, 8))
        models = enumerate_models(constraint, [X], limit=10)
        assert len(models) == 4
        # 4 SAT answers + 1 final UNSAT, all on the same incremental solver.
        assert STATS.sat_invocations == 5

    def test_incremental_adds_after_check(self):
        solver = Solver()
        solver.add(smt.Ult(X, smt.BitVecVal(10, 8)))
        assert solver.check() == CheckResult.SAT
        solver.add(smt.Ugt(X, smt.BitVecVal(3, 8)))
        assert solver.check() == CheckResult.SAT
        assert 3 < solver.model()["x"] < 10
        solver.add(smt.Eq(X, smt.BitVecVal(0, 8)))
        assert solver.check() == CheckResult.UNSAT

    def test_assumptions_do_not_persist_across_checks(self):
        solver = Solver()
        solver.add(smt.Ult(X, smt.BitVecVal(100, 8)))
        assert solver.check(smt.Eq(X, smt.BitVecVal(5, 8))) == CheckResult.SAT
        assert solver.model()["x"] == 5
        assert solver.check(smt.Eq(X, smt.BitVecVal(200, 8))) == CheckResult.UNSAT
        assert solver.check() == CheckResult.SAT

    def test_sat_solver_incremental_clauses(self):
        solver = SatSolver(2, [[1, 2]])
        assert solver.solve().satisfiable
        solver.add_clause([-1])
        result = solver.solve()
        assert result.satisfiable
        assert result.assignment[2] is True
        solver.add_clause([-2])
        assert not solver.solve().satisfiable

    def test_sat_solver_assumptions_reusable(self):
        solver = SatSolver(2, [[1, 2]])
        assert not solver.solve(assumptions=[-1, -2]).satisfiable
        # The instance stays usable after an assumption failure.
        assert solver.solve(assumptions=[-1]).satisfiable
        assert solver.solve().satisfiable

    def test_sat_solver_grows_variables(self):
        solver = SatSolver(1, [[1]])
        assert solver.solve().satisfiable
        solver.ensure_num_vars(3)
        solver.add_clauses([[-1, 3], [-3, 2]])
        result = solver.solve()
        assert result.satisfiable
        assert result.assignment[2] is True


class TestCloneFreeSnapshots:
    def test_ast_clone_detached_and_equal(self):
        from repro.core.generator import GeneratorConfig, RandomProgramGenerator
        from repro.p4 import emit_program

        program = RandomProgramGenerator(GeneratorConfig(seed=5)).generate()
        snapshot = program.clone()
        assert emit_program(snapshot) == emit_program(program)
        snapshot.controls()[0].apply.statements.clear()
        assert emit_program(snapshot) != emit_program(program)

    def test_ast_clone_shares_immutable_types(self):
        from repro.p4 import ast
        from repro.p4.types import BitType

        declaration = ast.VariableDeclaration("v", BitType(8), ast.Constant(1, 8))
        cloned = declaration.clone()
        assert cloned is not declaration
        assert cloned.var_type is declaration.var_type  # frozen dataclass shared
        assert cloned.initializer is not declaration.initializer
