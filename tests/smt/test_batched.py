"""Differential tests: batched equivalence vs. the sequential oracle.

``smt.all_equivalent`` proves many (left, right) pairs on one incremental
solver with assumption literals.  Its *verdict* must always agree with the
sequential per-pair ``find_divergence`` walk, and batching must never
perturb the witnesses the sequential path reports — witness models are
solver-history-dependent, verdicts are not.
"""

import pytest

from repro import smt
from repro.smt import all_equivalent, clear_equivalence_cache, find_divergence
from repro.smt.solver import STATS


X = smt.BitVecSym("x", 8)
Y = smt.BitVecSym("y", 8)
ONE = smt.BitVecVal(1, 8)
TWO = smt.BitVecVal(2, 8)


def fresh_state():
    STATS.reset()
    clear_equivalence_cache()


EQUIVALENT_PAIRS = [
    # Syntactically identical (hash-consed to the same object).
    (smt.Add(X, ONE), smt.Add(X, ONE)),
    # Equal after simplification.
    (smt.Add(X, smt.BitVecVal(0, 8)), X),
    # Semantically equal, but only the solver can tell.
    (smt.Add(X, X), smt.Mul(X, TWO)),
    (smt.BvXor(X, Y), smt.BvXor(Y, X)),
]

INEQUIVALENT_PAIRS = [
    (smt.Add(X, ONE), smt.Add(X, TWO)),
    (smt.BvAnd(X, Y), smt.BvOr(X, Y)),
]


class TestVerdictsMatchSequential:
    def test_all_equivalent_on_equivalent_pairs(self):
        fresh_state()
        assert all_equivalent(EQUIVALENT_PAIRS) is True
        for left, right in EQUIVALENT_PAIRS:
            assert find_divergence(left, right) is None

    @pytest.mark.parametrize("bad", INEQUIVALENT_PAIRS)
    def test_one_bad_pair_flips_the_batch(self, bad):
        fresh_state()
        assert all_equivalent(EQUIVALENT_PAIRS + [bad]) is False
        assert find_divergence(*bad) is not None

    def test_empty_batch_is_equivalent_without_solving(self):
        fresh_state()
        assert all_equivalent([]) is True
        assert STATS.batched_checks == 0
        assert STATS.sat_invocations == 0

    def test_syntactic_pairs_skip_the_solver(self):
        fresh_state()
        pairs = [(smt.Add(X, ONE), smt.Add(X, ONE)), (smt.Add(X, smt.BitVecVal(0, 8)), X)]
        assert all_equivalent(pairs) is True
        assert STATS.batched_checks == 0
        assert STATS.sat_invocations == 0

    def test_sort_mismatch_raises_like_find_divergence(self):
        fresh_state()
        p = smt.BoolSym("p")
        with pytest.raises(TypeError):
            all_equivalent([(X, p)])
        with pytest.raises(TypeError):
            find_divergence(X, p)


class TestBatchingEconomics:
    def test_semantic_batch_is_one_batch_on_one_solver(self):
        fresh_state()
        semantic = [(smt.Add(X, X), smt.Mul(X, TWO)), (smt.BvXor(X, Y), smt.BvXor(Y, X))]
        assert all_equivalent(semantic) is True
        # One batch; each surviving pair is a focused per-field query on
        # the shared batch solver (never a ganged disjunction).
        assert STATS.batched_checks == 1
        assert STATS.sat_invocations == len(semantic)

    def test_pairs_proven_before_a_divergence_stay_memoised(self):
        fresh_state()
        good = (smt.Add(X, X), smt.Mul(X, TWO))
        bad = (smt.Add(X, ONE), smt.Add(X, TWO))
        assert all_equivalent([good, bad]) is False
        # The batch failed, but the pair proven before the divergence fed
        # the memo: re-checking it alone costs zero SAT invocations.
        invocations = STATS.sat_invocations
        assert all_equivalent([good]) is True
        assert STATS.sat_invocations == invocations
        assert STATS.equivalence_cache_hits >= 1

    def test_proven_pairs_are_memoised_for_the_campaign(self):
        fresh_state()
        semantic = [(smt.Add(X, X), smt.Mul(X, TWO))]
        assert all_equivalent(semantic) is True
        before = STATS.sat_invocations
        # Second look at the same pair: served by the equivalence memo.
        assert all_equivalent(semantic) is True
        assert STATS.sat_invocations == before
        assert STATS.equivalence_cache_hits >= 1
        # ... and the sequential oracle reads the same memo.
        assert find_divergence(*semantic[0]) is None
        assert STATS.sat_invocations == before

    def test_sat_batches_are_never_memoised(self):
        fresh_state()
        bad = (smt.Add(X, ONE), smt.Add(X, TWO))
        assert all_equivalent([bad]) is False
        hits_before = STATS.equivalence_cache_hits
        assert all_equivalent([bad]) is False
        assert STATS.equivalence_cache_hits == hits_before


class TestWitnessDeterminism:
    def test_sequential_witness_unchanged_by_prior_batches(self):
        # The witness the sequential path reports must be a function of the
        # pair alone, not of whatever the shared batch solver learned.
        fresh_state()
        bad = (smt.BvAnd(X, Y), smt.BvOr(X, Y))
        baseline = find_divergence(*bad)
        assert baseline is not None
        fresh_state()
        all_equivalent(EQUIVALENT_PAIRS + [bad])
        again = find_divergence(*bad)
        assert again is not None
        assert dict(again.items()) == dict(baseline.items())
