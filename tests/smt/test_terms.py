"""Unit tests for the SMT term language."""

import pytest

from repro import smt
from repro.smt import terms as t


class TestSorts:
    def test_bitvec_sort_width(self):
        assert t.BitVecSort(8).width == 8

    def test_bitvec_sort_cached(self):
        assert t.BitVecSort(16) is t.BitVecSort(16)

    def test_bool_sort_is_bool(self):
        assert t.BoolSort().is_bool()
        assert not t.BoolSort().is_bv()

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            t.BitVecSort(0)


class TestLiteralsAndSymbols:
    def test_bitvec_val_masks_value(self):
        assert smt.BitVecVal(256, 8).value == 0
        assert smt.BitVecVal(-1, 8).value == 255

    def test_bitvec_sym_name(self):
        sym = smt.BitVecSym("hdr.a", 8)
        assert sym.name == "hdr.a"
        assert sym.width == 8
        assert sym.is_symbol()

    def test_bool_val(self):
        assert smt.BoolVal(True).value is True
        assert smt.BoolVal(False).value is False

    def test_constants_equal_structurally(self):
        assert smt.BitVecVal(3, 8) == smt.BitVecVal(3, 8)
        assert smt.BitVecVal(3, 8) != smt.BitVecVal(3, 16)

    def test_value_on_non_constant_raises(self):
        with pytest.raises(TypeError):
            _ = smt.BitVecSym("x", 8).value

    def test_name_on_non_symbol_raises(self):
        with pytest.raises(TypeError):
            _ = smt.BitVecVal(1, 8).name


class TestConstruction:
    def test_add_requires_same_width(self):
        with pytest.raises(TypeError):
            smt.Add(smt.BitVecVal(1, 8), smt.BitVecVal(1, 16))

    def test_add_requires_bitvectors(self):
        with pytest.raises(TypeError):
            smt.Add(smt.BoolVal(True), smt.BoolVal(False))

    def test_eq_requires_same_sort(self):
        with pytest.raises(TypeError):
            smt.Eq(smt.BitVecVal(1, 8), smt.BoolVal(True))

    def test_concat_width_is_sum(self):
        term = smt.Concat(smt.BitVecVal(1, 8), smt.BitVecVal(2, 4))
        assert term.width == 12

    def test_extract_bounds_checked(self):
        with pytest.raises(ValueError):
            smt.Extract(8, 0, smt.BitVecVal(0, 8))
        with pytest.raises(ValueError):
            smt.Extract(3, 5, smt.BitVecVal(0, 8))

    def test_extract_width(self):
        assert smt.Extract(7, 4, smt.BitVecSym("x", 8)).width == 4

    def test_zero_ext_width(self):
        assert smt.ZeroExt(8, smt.BitVecSym("x", 8)).width == 16

    def test_zero_ext_zero_is_identity(self):
        sym = smt.BitVecSym("x", 8)
        assert smt.ZeroExt(0, sym) is sym

    def test_ite_branch_sorts_must_match(self):
        with pytest.raises(TypeError):
            smt.Ite(smt.BoolVal(True), smt.BitVecVal(1, 8), smt.BoolVal(False))

    def test_ite_condition_must_be_bool(self):
        with pytest.raises(TypeError):
            smt.Ite(smt.BitVecVal(1, 1), smt.BitVecVal(1, 8), smt.BitVecVal(2, 8))

    def test_not_not_collapses(self):
        cond = smt.BoolSym("c")
        assert smt.Not(smt.Not(cond)) == cond

    def test_and_flattens(self):
        a, b, c = smt.BoolSym("a"), smt.BoolSym("b"), smt.BoolSym("c")
        term = smt.And(smt.And(a, b), c)
        assert term.op == "and"
        assert len(term.children) == 3

    def test_empty_and_is_true(self):
        assert smt.And() == smt.BoolVal(True)

    def test_empty_or_is_false(self):
        assert smt.Or() == smt.BoolVal(False)

    def test_ugt_uge_are_swapped_comparisons(self):
        x, y = smt.BitVecSym("x", 8), smt.BitVecSym("y", 8)
        assert smt.Ugt(x, y) == smt.Ult(y, x)
        assert smt.Uge(x, y) == smt.Ule(y, x)


class TestTermUtilities:
    def test_symbols_collects_free_variables(self):
        x = smt.BitVecSym("x", 8)
        y = smt.BitVecSym("y", 8)
        term = smt.Add(x, smt.Mul(y, smt.BitVecVal(2, 8)))
        assert term.symbols() == {x, y}

    def test_sexpr_rendering(self):
        term = smt.Add(smt.BitVecSym("x", 8), smt.BitVecVal(1, 8))
        assert term.to_sexpr() == "(bvadd x #x01)"

    def test_width_of_bool_raises(self):
        with pytest.raises(TypeError):
            _ = smt.BoolVal(True).width
