"""Type checker tests."""

import pytest

from repro.p4 import parse_program
from repro.p4.typecheck import TypeCheckError, check_program


def check_source(source: str):
    return check_program(parse_program(source))


PRELUDE = """
header Hdr_t {
    bit<8> a;
    bit<8> b;
}

struct Headers {
    Hdr_t h;
}
"""


def control_with(body: str, locals_: str = "") -> str:
    return (
        PRELUDE
        + "control ingress(inout Headers hdr) {\n"
        + locals_
        + "\n    apply {\n"
        + body
        + "\n    }\n}\n"
    )


class TestAcceptedPrograms:
    def test_simple_assignment(self):
        check_source(control_with("hdr.h.a = 8w1;"))

    def test_widthless_literal_adapts(self):
        check_source(control_with("hdr.h.a = 1;"))

    def test_arithmetic_on_matching_widths(self):
        check_source(control_with("hdr.h.a = hdr.h.a + hdr.h.b;"))

    def test_comparison_with_literal(self):
        check_source(control_with("if (hdr.h.a == 1) { hdr.h.b = 8w2; }"))

    def test_slice_assignment(self):
        check_source(control_with("hdr.h.a[3:0] = 4w7;"))

    def test_local_variable(self):
        check_source(control_with("bit<8> tmp = hdr.h.a; hdr.h.b = tmp;"))

    def test_action_and_table(self):
        source = control_with(
            "t.apply();",
            locals_="""
    action assign() { hdr.h.a = 8w1; }
    table t {
        key = { hdr.h.a : exact; }
        actions = { assign(); NoAction(); }
        default_action = NoAction();
    }
""",
        )
        check_source(source)

    def test_function_with_inout_parameter(self):
        source = PRELUDE + """
bit<8> bump(inout bit<8> x) {
    x = x + 8w1;
    return x;
}

control ingress(inout Headers hdr) {
    apply {
        hdr.h.a = bump(hdr.h.b);
    }
}
"""
        check_source(source)

    def test_header_validity_methods(self):
        check_source(
            control_with("hdr.h.setInvalid(); if (hdr.h.isValid()) { hdr.h.setValid(); }")
        )

    def test_parser_accepts_valid_states(self):
        source = PRELUDE + """
parser p(inout Headers hdr) {
    state start {
        transition select (hdr.h.a) {
            8w1 : other;
            default : accept;
        }
    }
    state other {
        transition accept;
    }
}
"""
        check_source(source)

    def test_cast_between_widths(self):
        check_source(control_with("hdr.h.a = (bit<8>) (hdr.h.a ++ hdr.h.b)[11:4];"))

    def test_ternary_with_literal_branch(self):
        check_source(control_with("hdr.h.a = (hdr.h.b == 8w0) ? 1 : hdr.h.b;"))


class TestRejectedPrograms:
    def test_undeclared_variable(self):
        with pytest.raises(TypeCheckError):
            check_source(control_with("hdr.h.a = missing;"))

    def test_unknown_field(self):
        with pytest.raises(TypeCheckError):
            check_source(control_with("hdr.h.zz = 8w1;"))

    def test_width_mismatch_assignment(self):
        with pytest.raises(TypeCheckError):
            check_source(control_with("hdr.h.a = 16w1;"))

    def test_width_mismatch_arithmetic(self):
        with pytest.raises(TypeCheckError):
            check_source(control_with("hdr.h.a = hdr.h.a + 16w1;"))

    def test_bool_condition_required(self):
        with pytest.raises(TypeCheckError):
            check_source(control_with("if (hdr.h.a) { hdr.h.b = 8w1; }"))

    def test_assign_to_in_parameter(self):
        source = PRELUDE + """
control ingress(in Headers hdr) {
    apply {
        hdr.h.a = 8w1;
    }
}
"""
        with pytest.raises(TypeCheckError):
            check_source(source)

    def test_slice_out_of_range(self):
        with pytest.raises(TypeCheckError):
            check_source(control_with("hdr.h.a[8:0] = 8w1;"))

    def test_duplicate_variable(self):
        with pytest.raises(TypeCheckError):
            check_source(control_with("bit<8> x = 8w1; bit<8> x = 8w2;"))

    def test_unknown_action_in_table(self):
        source = control_with(
            "t.apply();",
            locals_="""
    table t {
        key = { hdr.h.a : exact; }
        actions = { does_not_exist(); }
        default_action = NoAction();
    }
""",
        )
        with pytest.raises(TypeCheckError):
            check_source(source)

    def test_out_argument_must_be_lvalue(self):
        source = PRELUDE + """
void produce(out bit<8> x) {
    x = 8w1;
}

control ingress(inout Headers hdr) {
    apply {
        produce(8w3);
    }
}
"""
        with pytest.raises(TypeCheckError):
            check_source(source)

    def test_out_argument_must_be_writable(self):
        source = PRELUDE + """
void produce(out bit<8> x) {
    x = 8w1;
}

control ingress(in Headers hdr) {
    apply {
        produce(hdr.h.a);
    }
}
"""
        with pytest.raises(TypeCheckError):
            check_source(source)

    def test_parser_unknown_state(self):
        source = PRELUDE + """
parser p(inout Headers hdr) {
    state start {
        transition nowhere;
    }
}
"""
        with pytest.raises(TypeCheckError):
            check_source(source)

    def test_parser_missing_start_state(self):
        source = PRELUDE + """
parser p(inout Headers hdr) {
    state not_start {
        transition accept;
    }
}
"""
        with pytest.raises(TypeCheckError):
            check_source(source)

    def test_logical_and_requires_bools(self):
        with pytest.raises(TypeCheckError):
            check_source(control_with("if (hdr.h.a && hdr.h.b) { hdr.h.a = 8w1; }"))

    def test_isvalid_on_non_header(self):
        with pytest.raises(TypeCheckError):
            check_source(control_with("bit<8> x = 8w0; if (x.isValid()) { hdr.h.a = 8w1; }"))

    def test_unknown_type_name(self):
        source = """
struct Headers {
    Missing_t h;
}
control ingress(inout Headers hdr) {
    apply { }
}
"""
        with pytest.raises(TypeCheckError):
            check_source(source)

    def test_apply_on_non_table(self):
        with pytest.raises(TypeCheckError):
            check_source(control_with("hdr.apply();"))
