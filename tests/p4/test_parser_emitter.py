"""Parser and emitter tests, including emit/reparse round trips."""

import pytest

from repro.p4 import ast, emit_program, parse_program
from repro.p4.parser import ParserError


SIMPLE_PROGRAM = """
header Hdr_t {
    bit<8> a;
    bit<8> b;
}

struct Headers {
    Hdr_t h;
}

control ingress(inout Headers hdr) {
    action assign() {
        hdr.h.a = 8w1;
    }
    table t {
        key = {
            hdr.h.a : exact;
        }
        actions = {
            assign();
            NoAction();
        }
        default_action = NoAction();
    }
    apply {
        t.apply();
    }
}
"""


PARSER_PROGRAM = """
header Hdr_t {
    bit<8> a;
}

struct Headers {
    Hdr_t h;
}

parser MyParser(inout Headers hdr) {
    state start {
        hdr.h.setValid();
        transition select (hdr.h.a) {
            8w1 : next;
            default : accept;
        }
    }
    state next {
        hdr.h.a = 8w2;
        transition accept;
    }
}
"""


class TestParsingDeclarations:
    def test_header_declaration(self):
        program = parse_program(SIMPLE_PROGRAM)
        headers = program.headers()
        assert len(headers) == 1
        assert headers[0].name == "Hdr_t"
        assert [name for name, _ in headers[0].fields] == ["a", "b"]

    def test_struct_declaration(self):
        program = parse_program(SIMPLE_PROGRAM)
        structs = program.structs()
        assert structs[0].name == "Headers"

    def test_control_structure(self):
        program = parse_program(SIMPLE_PROGRAM)
        control = program.controls()[0]
        assert control.name == "ingress"
        assert control.params[0].direction == "inout"
        action_names = [
            local.name for local in control.locals if isinstance(local, ast.ActionDeclaration)
        ]
        assert action_names == ["assign"]

    def test_table_properties(self):
        program = parse_program(SIMPLE_PROGRAM)
        control = program.controls()[0]
        table = next(l for l in control.locals if isinstance(l, ast.TableDeclaration))
        assert table.name == "t"
        assert len(table.keys) == 1
        assert table.keys[0].match_kind == "exact"
        assert [ref.name for ref in table.actions] == ["assign", "NoAction"]
        assert table.default_action.name == "NoAction"

    def test_apply_block(self):
        program = parse_program(SIMPLE_PROGRAM)
        control = program.controls()[0]
        assert len(control.apply.statements) == 1
        statement = control.apply.statements[0]
        assert isinstance(statement, ast.MethodCallStatement)

    def test_parser_states(self):
        program = parse_program(PARSER_PROGRAM)
        parser = program.parsers()[0]
        assert [state.name for state in parser.states] == ["start", "next"]
        start = parser.state("start")
        assert start.select_expr is not None
        assert len(start.cases) == 2
        assert start.cases[1].value is None  # default case
        assert parser.state("next").next_state == "accept"

    def test_function_declaration(self):
        source = """
        bit<8> double_it(inout bit<8> x) {
            x = x + x;
            return x;
        }
        """
        program = parse_program(source)
        function = program.functions()[0]
        assert function.name == "double_it"
        assert function.params[0].direction == "inout"


class TestParsingStatementsAndExpressions:
    def _statements(self, body: str):
        source = SIMPLE_PROGRAM.replace("t.apply();", body)
        program = parse_program(source)
        return program.controls()[0].apply.statements

    def test_if_else(self):
        statements = self._statements(
            "if (hdr.h.a == 8w1) { hdr.h.b = 8w2; } else { hdr.h.b = 8w3; }"
        )
        statement = statements[0]
        assert isinstance(statement, ast.IfStatement)
        assert statement.else_branch is not None

    def test_if_without_braces_normalised_to_block(self):
        statements = self._statements("if (hdr.h.a == 8w1) hdr.h.b = 8w2;")
        assert isinstance(statements[0].then_branch, ast.BlockStatement)

    def test_variable_declaration_with_initializer(self):
        statements = self._statements("bit<8> tmp = hdr.h.a + 8w1;")
        declaration = statements[0]
        assert isinstance(declaration, ast.VariableDeclaration)
        assert declaration.initializer is not None

    def test_slice_expression(self):
        statements = self._statements("hdr.h.a[3:0] = 4w5;")
        assignment = statements[0]
        assert isinstance(assignment.lhs, ast.Slice)
        assert assignment.lhs.high == 3
        assert assignment.lhs.low == 0

    def test_ternary_expression(self):
        statements = self._statements("hdr.h.a = (hdr.h.b == 8w0) ? 8w1 : 8w2;")
        assert isinstance(statements[0].rhs, ast.Ternary)

    def test_cast_expression(self):
        statements = self._statements("hdr.h.a = (bit<8>) hdr.h.b;")
        assert isinstance(statements[0].rhs, ast.Cast)

    def test_exit_statement(self):
        statements = self._statements("exit;")
        assert isinstance(statements[0], ast.ExitStatement)

    def test_operator_precedence(self):
        statements = self._statements("hdr.h.a = hdr.h.a + hdr.h.b * 8w2;")
        rhs = statements[0].rhs
        assert rhs.op == "+"
        assert rhs.right.op == "*"

    def test_concat_operator(self):
        statements = self._statements("hdr.h.a = (hdr.h.a[3:0] ++ hdr.h.b[3:0]);")
        assert statements[0].rhs.op == "++"

    def test_header_validity_calls(self):
        statements = self._statements("hdr.h.setInvalid(); hdr.h.setValid();")
        assert all(isinstance(statement, ast.MethodCallStatement) for statement in statements)


class TestParserErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParserError):
            parse_program("header H { bit<8> a }")

    def test_control_without_apply(self):
        with pytest.raises(ParserError):
            parse_program("control c(inout bit<8> x) { }")

    def test_assignment_to_non_lvalue(self):
        with pytest.raises(ParserError):
            parse_program(
                "control c(inout bit<8> x) { apply { 8w1 = x; } }"
            )

    def test_bare_expression_statement_rejected(self):
        with pytest.raises(ParserError):
            parse_program("control c(inout bit<8> x) { apply { x + 8w1; } }")

    def test_header_with_bool_field_rejected(self):
        with pytest.raises(ParserError):
            parse_program("header H { bool flag; }")


class TestRoundTrip:
    @pytest.mark.parametrize("source", [SIMPLE_PROGRAM, PARSER_PROGRAM])
    def test_emit_then_reparse_is_stable(self, source):
        first = parse_program(source)
        emitted = emit_program(first)
        second = parse_program(emitted)
        assert emit_program(second) == emitted

    def test_round_trip_preserves_structure(self):
        program = parse_program(SIMPLE_PROGRAM)
        reparsed = parse_program(emit_program(program))
        assert len(reparsed.declarations) == len(program.declarations)
        assert [type(d) for d in reparsed.declarations] == [
            type(d) for d in program.declarations
        ]

    def test_round_trip_complex_expressions(self):
        source = SIMPLE_PROGRAM.replace(
            "t.apply();",
            "hdr.h.a = ((hdr.h.b + 8w3) * 8w2) ^ (hdr.h.a >> 8w1); "
            "if (!(hdr.h.a == 8w0) && hdr.h.isValid()) { hdr.h.b = (bit<8>) hdr.h.a[7:4]; }",
        )
        program = parse_program(source)
        emitted = emit_program(program)
        assert emit_program(parse_program(emitted)) == emitted
