"""Unit tests for the P4 lexer."""

import pytest

from repro.p4.lexer import Lexer, LexerError, TokenKind, tokenize


class TestBasicTokens:
    def test_identifiers_and_keywords(self):
        tokens = tokenize("control my_ctrl apply")
        assert tokens[0].kind == TokenKind.KEYWORD
        assert tokens[1].kind == TokenKind.IDENTIFIER
        assert tokens[1].text == "my_ctrl"
        assert tokens[2].kind == TokenKind.KEYWORD
        assert tokens[3].kind == TokenKind.END

    def test_symbols(self):
        tokens = tokenize("{ } ( ) ; = ==")
        texts = [token.text for token in tokens[:-1]]
        assert texts == ["{", "}", "(", ")", ";", "=", "=="]

    def test_multichar_symbols_preferred(self):
        tokens = tokenize("<< >> <= >= != && || ++")
        texts = [token.text for token in tokens[:-1]]
        assert texts == ["<<", ">>", "<=", ">=", "!=", "&&", "||", "++"]

    def test_end_token_always_present(self):
        assert tokenize("")[-1].kind == TokenKind.END


class TestNumbers:
    def test_plain_decimal(self):
        token = tokenize("42")[0]
        assert token.kind == TokenKind.NUMBER
        assert token.value == 42
        assert token.width is None

    def test_width_annotated(self):
        token = tokenize("8w255")[0]
        assert token.value == 255
        assert token.width == 8

    def test_width_annotated_hex(self):
        token = tokenize("16w0xBEEF")[0]
        assert token.value == 0xBEEF
        assert token.width == 16

    def test_hex_literal(self):
        token = tokenize("0xFF")[0]
        assert token.value == 255

    def test_binary_literal(self):
        token = tokenize("0b1010")[0]
        assert token.value == 10

    def test_bad_literal_raises(self):
        with pytest.raises(LexerError):
            tokenize("0xZZ")


class TestCommentsAndPositions:
    def test_line_comments_skipped(self):
        tokens = tokenize("a // comment\n b")
        assert [token.text for token in tokens[:-1]] == ["a", "b"]

    def test_block_comments_skipped(self):
        tokens = tokenize("a /* multi\n line */ b")
        assert [token.text for token in tokens[:-1]] == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexerError):
            tokenize("a /* never closed")

    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[1].column == 3

    def test_unexpected_character(self):
        with pytest.raises(LexerError):
            tokenize("a $ b")


class TestRealisticSnippet:
    def test_action_snippet(self):
        source = "action assign() { hdr.a = 8w1; }"
        kinds = [token.kind for token in Lexer(source).tokenize()]
        assert TokenKind.NUMBER in kinds
        assert kinds[-1] == TokenKind.END

    def test_token_helpers(self):
        token = tokenize("apply")[0]
        assert token.is_keyword("apply")
        assert not token.is_symbol("apply")
